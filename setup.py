"""Setuptools entry point.

A plain ``setup.py`` (no ``pyproject.toml``) so that ``pip install -e .``
works in fully offline environments that lack the ``wheel`` package (the
legacy ``setup.py develop`` code path needs neither network access nor wheel
building).  After an editable install the ``PYTHONPATH=src`` workaround is
unnecessary and the scenario runner is available as ``repro-run``.
"""

import os
import re

from setuptools import find_packages, setup


def _version() -> str:
    """Read ``repro.__version__`` without importing the package."""
    init_path = os.path.join(os.path.dirname(__file__), "src", "repro", "__init__.py")
    with open(init_path, encoding="utf-8") as handle:
        match = re.search(r'^__version__\s*=\s*"([^"]+)"', handle.read(), re.MULTILINE)
    if not match:
        raise RuntimeError("repro.__version__ not found in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro",
    version=_version(),
    description=(
        "Simulation and analysis library reproducing 'Please, do not Decentralize "
        "the Internet with (Permissionless) Blockchains!' (ICDCS 2019)"
    ),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={
        "console_scripts": [
            "repro-run = repro.run:main",
            "repro-lint = repro.analysis.lint.cli:main",
            "repro-broker = repro.distributed.broker:main",
            "repro-worker = repro.distributed.worker:main",
            "repro-serve = repro.distributed.service:main",
        ],
    },
)
