"""Setuptools entry point.

A ``setup.py`` is kept alongside ``pyproject.toml`` so that ``pip install -e .``
works in fully offline environments that lack the ``wheel`` package (the legacy
``setup.py develop`` code path needs neither network access nor wheel building).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Simulation and analysis library reproducing 'Please, do not Decentralize "
        "the Internet with (Permissionless) Blockchains!' (ICDCS 2019)"
    ),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
)
