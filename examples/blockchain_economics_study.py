#!/usr/bin/env python
"""Reproduce the permissionless-blockchain analysis of Section III.

Runs the proof-of-work network at Bitcoin and Ethereum parameters, sweeps the
selfish-mining attack, estimates energy consumption, and contrasts the
volatile token pricing with stable cloud pricing — the four quantitative
pillars of the paper's "permissionless blockchains are not the right way"
argument.

Run with::

    python examples/blockchain_economics_study.py
"""

from repro.analysis.tables import ResultTable
from repro.blockchain.energy import EnergyModel
from repro.blockchain.network import (
    BITCOIN_PROTOCOL,
    ETHEREUM_PROTOCOL,
    PoWNetwork,
    PoWNetworkConfig,
)
from repro.blockchain.selfish import revenue_curve
from repro.economics.pricing import compare_cost_stability


def main() -> None:
    print("Simulating Bitcoin-like and Ethereum-like networks at saturation...")
    table = ResultTable(
        ["network", "throughput_tps", "block_interval_s", "stale_rate", "mean_confirmation_s"],
        title="Proof-of-work networks (paper: 3.3-7 tps and ~15 tps)",
    )
    for protocol, rate, blocks in ((BITCOIN_PROTOCOL, 12.0, 60), (ETHEREUM_PROTOCOL, 40.0, 250)):
        result = PoWNetwork(
            PoWNetworkConfig(protocol=protocol, miner_count=10, tx_arrival_rate=rate,
                             duration_blocks=blocks, seed=31)
        ).run()
        table.add_row(protocol.name, result.throughput_tps, result.mean_block_interval,
                      result.stale_rate, result.mean_confirmation_latency)
    table.print()

    print("\nSelfish mining revenue (gamma = 0):")
    selfish_table = ResultTable(["alpha", "honest share", "selfish share", "advantage"],
                                title="Eyal-Sirer selfish mining")
    for row in revenue_curve([0.25, 0.33, 0.4, 0.45], gamma=0.0, blocks=80_000, seed=5):
        selfish_table.add_row(row["alpha"], row["honest_revenue"], row["simulated_revenue"],
                              row["advantage"])
    selfish_table.print()

    print("\nEnergy model (2018-era parameters):")
    energy = EnergyModel().report()
    energy_table = ResultTable(["quantity", "value"], title="Proof-of-work energy")
    energy_table.add_row("annual energy (TWh/yr)", energy["annual_energy_twh"])
    energy_table.add_row("energy per transaction (kWh)", energy["energy_per_tx_kwh"])
    energy_table.add_row("PoW tx / cloud tx energy ratio", energy["per_tx_ratio"])
    energy_table.print()

    print("\nPricing stability (service operator's view):")
    pricing = compare_cost_stability(periods=730, seed=9)
    pricing_table = ResultTable(["payment rail", "annualized volatility", "max drawdown"],
                                title="Token-denominated vs cloud list pricing")
    pricing_table.add_row("cryptocurrency token", pricing["token"]["annualized_volatility"],
                          pricing["token"]["max_drawdown"])
    pricing_table.add_row("cloud list price", pricing["cloud"]["annualized_volatility"],
                          pricing["cloud"]["max_drawdown"])
    pricing_table.print()
    print(
        "\nToken-denominated costs are {:.0f}x more volatile than cloud pricing — the "
        "paper's 'great pricing instability and uncertainty'.".format(
            pricing["comparison"]["volatility_ratio"]
        )
    )


if __name__ == "__main__":
    main()
