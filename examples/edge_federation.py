#!/usr/bin/env python
"""Edge-centric federation with blockchain islands (Section V, Figure 1).

Places a latency-sensitive service under three strategies (central cloud,
regional cloud, edge-centric federation) and measures the cross-island
interoperability overhead between two vertical-domain blockchain islands.
Both runs are declared as an *ad-hoc study* — a :class:`StudySpec` built
inline from the stock ``edge-placement`` and ``edge-federation`` registry
entries with this example's overrides — and executed by ``run_study`` into
one queryable ResultSet, exactly like the registered studies.

Run with::

    python examples/edge_federation.py
"""

from repro.analysis.tables import ResultTable
from repro.scenarios import StudyMember, StudySpec, run_study


def main() -> None:
    topology = {"regions": 4, "organizations_per_region": 3,
                "devices_per_organization": 40, "seed": 13}
    devices = topology["regions"] * topology["organizations_per_region"] \
        * topology["devices_per_organization"]
    print(f"Topology: {devices} devices, "
          f"{topology['regions'] * topology['organizations_per_region']} edge sites, "
          f"{topology['regions']} regional DCs, 1 central cloud")

    study = StudySpec(
        name="edge-federation-example",
        description="service placement plus island interoperability on one topology",
        members=[
            StudyMember("placement", "edge-placement",
                        {"topology": topology, "workload.requests": 2000,
                         "seed": 13}),
            StudyMember("islands", "edge-federation",
                        {
                            "architecture.islands": [
                                {"name": "supply-chain", "domain": "supply-chain",
                                 "seed_offset": 1},
                                {"name": "healthcare", "domain": "healthcare",
                                 "seed_offset": 2},
                            ],
                            "architecture.connections": [["supply-chain", "healthcare"]],
                            "workload.rate_tps": 200.0,
                            "duration": 4.0,
                            "seed": 17,
                        }),
        ],
    )
    results = run_study(study)

    metrics = results.only(label="placement").metrics
    table = ResultTable(
        ["placement", "p50_ms", "p99_ms", "trust_nakamoto", "data stays local"],
        title="Service placement (Figure 1, measured)",
    )
    for name in ("cloud-only", "regional-cloud", "edge-centric"):
        table.add_row(name, metrics[f"{name}.p50_latency_ms"],
                      metrics[f"{name}.p99_latency_ms"],
                      metrics[f"{name}.trust_nakamoto"],
                      metrics[f"{name}.control_locality"])
    table.print()
    print(f"\nEdge-centric placement is {metrics['speedup_cloud_to_edge']:.1f}x faster at "
          "the median than the centralized cloud, while spreading trust over the federation.")

    print("\nBuilding two blockchain islands and a gateway between them...")
    interop = results.only(label="islands").metrics
    interop_table = ResultTable(["quantity", "value"], title="Blockchain-island interoperability")
    interop_table.add_row("intra-island latency (s)", interop["intra_island_latency_s"])
    interop_table.add_row("cross-island latency (s)", interop["cross_island_latency_s"])
    interop_table.add_row("overhead factor", interop["overhead_factor"])
    interop_table.add_row("island throughput (tps)", interop["source_throughput_tps"])
    interop_table.print()

    print(f"\nTrust is spread over {interop['trust_entities']:.0f} organizations across the "
          "two islands (Nakamoto coefficient "
          f"{interop['trust_nakamoto']:.0f}); no single provider controls the federation.")


if __name__ == "__main__":
    main()
