#!/usr/bin/env python
"""Edge-centric federation with blockchain islands (Section V, Figure 1).

Places a latency-sensitive service under three strategies (central cloud,
regional cloud, edge-centric federation), then builds two vertical-domain
blockchain islands (supply chain and healthcare), connects them through an
interoperability gateway and reports the cross-island overhead.

Run with::

    python examples/edge_federation.py
"""

from repro.analysis.tables import ResultTable
from repro.edge.islands import BlockchainIsland, IslandFederation
from repro.edge.placement import compare_placements
from repro.edge.topology import EdgeTopology, EdgeTopologyConfig


def main() -> None:
    topology = EdgeTopology(EdgeTopologyConfig(regions=4, organizations_per_region=3,
                                               devices_per_organization=40, seed=13))
    print(f"Topology: {topology.device_count()} devices, {len(topology.edge_sites)} edge sites, "
          f"{len(topology.regional_sites)} regional DCs, 1 central cloud")

    comparison = compare_placements(topology=topology, requests=2000, seed=13)
    table = ResultTable(
        ["placement", "p50_ms", "p99_ms", "trust_nakamoto", "data stays local"],
        title="Service placement (Figure 1, measured)",
    )
    for name, result in comparison.results.items():
        summary = result.summary()
        table.add_row(name, summary["p50_latency_ms"], summary["p99_latency_ms"],
                      summary["trust_nakamoto"], summary["control_locality"])
    table.print()
    print(f"\nEdge-centric placement is {comparison.speedup():.1f}x faster at the median "
          "than the centralized cloud, while spreading trust over the federation.")

    print("\nBuilding two blockchain islands and a gateway between them...")
    federation = IslandFederation(seed=17)
    federation.add_island(BlockchainIsland(name="supply-chain", domain="supply-chain", seed=18))
    federation.add_island(BlockchainIsland(name="healthcare", domain="healthcare", seed=19))
    federation.connect("supply-chain", "healthcare", relay_latency=0.05)
    interop = federation.interoperability_overhead("supply-chain", "healthcare",
                                                   request_rate=200, duration=4)
    interop_table = ResultTable(["quantity", "value"], title="Blockchain-island interoperability")
    interop_table.add_row("intra-island latency (s)", interop["intra_island_latency_s"])
    interop_table.add_row("cross-island latency (s)", interop["cross_island_latency_s"])
    interop_table.add_row("overhead factor", interop["overhead_factor"])
    interop_table.add_row("island throughput (tps)", interop["source_throughput_tps"])
    interop_table.print()

    entities = federation.federation_trust_entities()
    print(f"\nTrust is spread over {len(entities)} organizations across the two islands; "
          "no single provider controls the federation.")


if __name__ == "__main__":
    main()
