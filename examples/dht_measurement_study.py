#!/usr/bin/env python
"""Reproduce the DHT measurement study behind Section II (Problems 1-3).

Builds Kademlia overlays under different client behaviours and churn levels,
measures lookup latency (the Kad-vs-Mainline gap of Jiménez et al.), then
mounts a Sybil attack against a targeted key and reports how cheaply the
lookups for that key can be hijacked.

Run with::

    python examples/dht_measurement_study.py
"""

from repro.analysis.tables import ResultTable
from repro.p2p.identifiers import key_for
from repro.p2p.lookup import LookupExperiment, LookupExperimentConfig
from repro.p2p.sybil import SybilAttackConfig, run_sybil_attack
from repro.sim.churn import ChurnModel


def main() -> None:
    print("Measuring lookup latency (this runs a few hundred simulated lookups)...")
    scenarios = {
        "kad-like client, kad-like churn": LookupExperimentConfig.kad_scenario(
            network_size=400, lookups=120, seed=21
        ),
        "mainline-like client, bittorrent churn": LookupExperimentConfig.mainline_scenario(
            network_size=400, lookups=120, seed=21
        ),
        "kad-like client, extreme churn": LookupExperimentConfig(
            network_size=400, lookups=120, churn=ChurnModel.aggressive(), seed=21
        ),
    }
    table = ResultTable(
        ["scenario", "median_s", "p90_s", "within_5s", "failure_rate"],
        title="DHT lookup performance (paper: Kad p90 < 5 s, Mainline median ~ 1 min)",
    )
    for label, config in scenarios.items():
        summary = LookupExperiment(config).run().summary()
        table.add_row(label, summary["median_latency_s"], summary["p90_latency_s"],
                      summary["fraction_within_5s"], summary["failure_rate"])
    table.print()

    print("\nMounting a targeted Sybil attack against one key...")
    attack = run_sybil_attack(
        SybilAttackConfig(
            honest_nodes=300,
            attacker_machines=2,
            identities_per_machine=20,
            lookups=50,
            targeted_key=key_for("popular-torrent-infohash"),
            seed=22,
        )
    )
    attack_table = ResultTable(["quantity", "value"], title="Targeted Sybil attack")
    attack_table.add_row("attacker machines", attack.attacker_machines)
    attack_table.add_row("sybil identities", attack.sybil_identities)
    attack_table.add_row("share of physical nodes", attack.physical_share)
    attack_table.add_row("lookups hijacked", attack.hijack_rate)
    attack_table.print()
    print(
        "\nWith self-assigned identifiers, ~{:.0%} of physical nodes suffice to "
        "intercept {:.0%} of lookups for the victim key — the paper's Problem 3.".format(
            attack.physical_share, attack.hijack_rate
        )
    )


if __name__ == "__main__":
    main()
