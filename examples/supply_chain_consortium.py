#!/usr/bin/env python
"""Supply-chain consortium on a permissioned blockchain (Section V-A use case).

Four organizations (a producer, a carrier, a customs broker and a retailer)
share a channel that tracks the custody of goods with the ``provenance``
chaincode, while a separate finance channel settles payments between the
producer and the retailer.  The example shows:

* channels restricting replication to the organizations that need the data;
* endorsement policies requiring two distinct organizations per transaction;
* MVCC conflicts appearing when the same item is updated concurrently;
* throughput and latency that a real consortium would actually get.

Run with::

    python examples/supply_chain_consortium.py
"""

from repro.analysis.tables import ResultTable
from repro.permissioned.chaincode import asset_transfer_chaincode, provenance_chaincode
from repro.permissioned.fabric import (
    ChannelConfig,
    EndorsementPolicy,
    FabricNetwork,
    FabricNetworkConfig,
    OrderingConfig,
)
from repro.sim.rng import SeededRNG


def main() -> None:
    channels = [
        ChannelConfig(
            name="logistics",
            organizations=["org0", "org1", "org2", "org3"],
            endorsement_policy=EndorsementPolicy(required_organizations=2),
            ordering=OrderingConfig(mode="raft", batch_size=100),
        ),
        ChannelConfig(
            name="settlement",
            organizations=["org0", "org3"],          # producer and retailer only
            endorsement_policy=EndorsementPolicy(required_organizations=2),
            ordering=OrderingConfig(mode="bft", batch_size=50),
        ),
    ]
    network = FabricNetwork(
        FabricNetworkConfig(organizations=4, peers_per_org=2, channels=channels, seed=11)
    )
    network.install_chaincode("logistics", provenance_chaincode())
    network.install_chaincode("settlement", asset_transfer_chaincode())

    print("Consortium members:", ", ".join(network.msp.organization_names()))
    print("Channels:", ", ".join(network.channels.keys()))

    rng = SeededRNG(3)

    def logistics_args(workload_rng: SeededRNG):
        return {
            "item": f"pallet-{workload_rng.randint(0, 400)}",
            "actor": workload_rng.choice(["producer", "carrier", "customs", "retailer"]),
            "step": workload_rng.choice(["produced", "loaded", "shipped", "cleared", "delivered"]),
        }

    logistics = network.run_workload(
        "logistics", "provenance", request_rate=600, duration=5, args_factory=logistics_args
    )
    settlement = network.run_workload(
        "settlement", "asset-transfer", request_rate=150, duration=5, key_space=200
    )

    table = ResultTable(
        ["channel", "throughput_tps", "mean_latency_s", "p99_latency_s", "validity_rate"],
        title="Supply-chain consortium performance",
    )
    for metrics in (logistics, settlement):
        summary = metrics.summary()
        table.add_row(summary["channel"], summary["throughput_tps"], summary["mean_latency_s"],
                      summary["p99_latency_s"], summary["validity_rate"])
    table.print()

    # Inspect one peer's ledger to show the custody trail that the consortium shares.
    peer = network.channel_peers("logistics")[0]
    ledger = peer.ledgers["logistics"]
    sample_keys = [key for key in ledger.world_state.keys() if key.startswith("custody:")][:3]
    print("\nSample custody trails (from", peer.node_id, "):")
    for key in sample_keys:
        value, version = ledger.world_state.get(key)
        print(f"  {key} (version {version}): {value}")
    print(f"\nMVCC conflicts on the logistics channel: {ledger.invalid_count} "
          f"of {ledger.invalid_count + ledger.valid_count} transactions "
          "(concurrent updates to the same pallet)")


if __name__ == "__main__":
    main()
