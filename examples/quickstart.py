#!/usr/bin/env python
"""Quickstart: compare the architectures the paper argues about.

Runs the registered ``figure1`` study — the same payment workload offered
to every architecture family, the measured version of the paper's Figure 1
— plus one overlay and one edge-placement scenario for the families whose
story is latency rather than throughput.  Everything lands in
``ResultSet`` objects, so the comparison is a query, not a hand-written
loop; the script finishes in a few seconds.

Run with::

    python examples/quickstart.py

The same study is available from the command line::

    python -m repro.run study figure1
"""

from repro.analysis.tables import ResultTable
from repro.core import DecisionInput, recommend_architecture
from repro.scenarios import run_scenario, run_study


def main() -> None:
    print("Running the figure1 study (one payment workload, every family)...")
    figure1 = run_study("figure1", member_overrides={
        "bitcoin": {"architecture.duration_blocks": 30},
        "ethereum": {"architecture.duration_blocks": 120},
        "pbft": {"duration": 3.0},
        "fabric": {"duration": 3.0},
        "edge": {"duration": 2.0},
    })
    figure1.to_table(
        metrics=["throughput_tps", "trust_nakamoto", "energy_per_tx_kwh"],
        title="Architecture comparison (the paper's Figure 1, measured)",
    ).print()

    fabric_tps = figure1.only(label="fabric").metric("throughput_tps")
    pow_tps = figure1.only(label="bitcoin").metric("throughput_tps")
    print(f"\nPermissioned consortium vs Bitcoin-like PoW throughput gap at the "
          f"same offered load: {fabric_tps / pow_tps:,.0f}x")

    print("\nRunning the latency-side scenarios (overlay lookup, edge placement)...")
    lookup = run_scenario("kad-lookup", overrides={"workload.lookups": 60})
    placement = run_scenario("edge-placement", overrides={"workload.requests": 1000})
    latency = ResultTable(["scenario", "family", "median_latency_s"],
                          title="Latency-centric families")
    latency.add_row("kad-lookup", lookup.family, lookup.metric("median_latency_s"))
    latency.add_row("edge-placement", placement.family,
                    placement.metric("edge-centric.p50_latency_ms") / 1000.0)
    latency.print()
    speedup = placement.metric("speedup_cloud_to_edge")
    print(f"\nEdge-centric placement vs central cloud median latency: {speedup:.1f}x faster")

    print("\nDecision framework (Section V use cases):")
    applications = {
        "supply-chain consortium": DecisionInput(participants_known=True,
                                                 participants_mutually_trusting=False),
        "latency-sensitive smart grid": DecisionInput(participants_known=True,
                                                      participants_mutually_trusting=False,
                                                      latency_sensitive=True,
                                                      data_locality_required=True),
        "consumer web application": DecisionInput(single_trusted_operator_acceptable=True,
                                                  latency_sensitive=True),
        "censorship-resistant currency": DecisionInput(participants_known=False,
                                                       open_anonymous_participation_required=True,
                                                       audit_trail_required=False),
    }
    for name, application in applications.items():
        recommendation = recommend_architecture(application)
        print(f"  - {name}: {recommendation.architecture}")
        for reason in recommendation.reasons:
            print(f"      because {reason}")
        for warning in recommendation.warnings:
            print(f"      warning: {warning}")


if __name__ == "__main__":
    main()
