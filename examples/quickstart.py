#!/usr/bin/env python
"""Quickstart: compare the architectures the paper argues about.

Runs the same payment-style workload on a permissionless proof-of-work
network, a permissioned Fabric-like consortium, a centralized cloud model
and an edge-centric federation, then prints the comparison table (the
measured version of the paper's Figure 1) and the decision framework's
recommendation for a few example applications.

Run with::

    python examples/quickstart.py
"""

from repro.analysis.tables import ResultTable
from repro.core import DecisionInput, compare_architectures, recommend_architecture


def main() -> None:
    print("Running the architecture comparison (this takes a few seconds)...")
    comparison = compare_architectures(seed=7, pow_blocks=30, fabric_rate=1000, fabric_duration=4)

    table = ResultTable(
        ["architecture", "throughput_tps", "finality_s", "energy_per_tx_kwh",
         "trust_nakamoto", "open_membership"],
        title="Architecture comparison (the paper's Figure 1, measured)",
    )
    for row in comparison.rows():
        table.add_row(row["architecture"], row["throughput_tps"], row["finality_latency_s"],
                      row["energy_per_tx_kwh"], row["trust_nakamoto"], row["open_membership"])
    table.print()

    gap = comparison.throughput_gap("permissioned-fabric", "bitcoin-pow")
    print(f"\nPermissioned consortium vs Bitcoin-like PoW throughput gap: {gap:,.0f}x")

    print("\nDecision framework (Section V use cases):")
    applications = {
        "supply-chain consortium": DecisionInput(participants_known=True,
                                                 participants_mutually_trusting=False),
        "latency-sensitive smart grid": DecisionInput(participants_known=True,
                                                      participants_mutually_trusting=False,
                                                      latency_sensitive=True,
                                                      data_locality_required=True),
        "consumer web application": DecisionInput(single_trusted_operator_acceptable=True,
                                                  latency_sensitive=True),
        "censorship-resistant currency": DecisionInput(participants_known=False,
                                                       open_anonymous_participation_required=True,
                                                       audit_trail_required=False),
    }
    for name, application in applications.items():
        recommendation = recommend_architecture(application)
        print(f"  - {name}: {recommendation.architecture}")
        for reason in recommendation.reasons:
            print(f"      because {reason}")
        for warning in recommendation.warnings:
            print(f"      warning: {warning}")


if __name__ == "__main__":
    main()
