#!/usr/bin/env python
"""Quickstart: compare the architectures the paper argues about.

Drives one registered scenario from each of the five architecture families
through the ``repro.scenarios`` framework — the same specs the benchmarks
and the ``repro-run`` CLI use, trimmed with dotted-path overrides so the
whole script finishes in a few seconds — then prints the cross-family
comparison (the measured version of the paper's Figure 1) and the decision
framework's recommendation for a few example applications.

Run with::

    python examples/quickstart.py
"""

from repro.analysis.tables import ResultTable
from repro.core import DecisionInput, recommend_architecture
from repro.scenarios import run_scenario


def main() -> None:
    print("Running one scenario per architecture family (a few seconds)...")
    runs = [
        ("pow-baseline", {"architecture.duration_blocks": 30}),
        ("pbft-consortium", {"duration": 3.0}),
        ("fabric-consortium", {"duration": 3.0}),
        ("kad-lookup", {"workload.lookups": 60}),
        ("edge-placement", {"workload.requests": 1000}),
    ]
    results = {name: run_scenario(name, overrides=overrides) for name, overrides in runs}

    table = ResultTable(
        ["scenario", "family", "throughput_tps", "latency_s", "messages"],
        title="Architecture comparison (the paper's Figure 1, measured)",
    )
    for name, result in results.items():
        metrics = result.metrics
        if result.family == "overlay":
            throughput, latency = "-", metrics["median_latency_s"]
        elif result.family == "edge":
            throughput, latency = "-", metrics["edge-centric.p50_latency_ms"] / 1000.0
        else:
            throughput = metrics["throughput_tps"]
            latency = metrics.get("mean_latency_s", metrics.get("latency_mean_s", 0.0))
        table.add_row(name, result.family, throughput, latency,
                      metrics.get("messages_sent", "-"))
    table.print()

    fabric_tps = results["fabric-consortium"].metric("throughput_tps")
    pow_tps = results["pow-baseline"].metric("throughput_tps")
    print(f"\nPermissioned consortium vs Bitcoin-like PoW throughput gap: "
          f"{fabric_tps / pow_tps:,.0f}x")
    speedup = results["edge-placement"].metric("speedup_cloud_to_edge")
    print(f"Edge-centric placement vs central cloud median latency: {speedup:.1f}x faster")

    print("\nDecision framework (Section V use cases):")
    applications = {
        "supply-chain consortium": DecisionInput(participants_known=True,
                                                 participants_mutually_trusting=False),
        "latency-sensitive smart grid": DecisionInput(participants_known=True,
                                                      participants_mutually_trusting=False,
                                                      latency_sensitive=True,
                                                      data_locality_required=True),
        "consumer web application": DecisionInput(single_trusted_operator_acceptable=True,
                                                  latency_sensitive=True),
        "censorship-resistant currency": DecisionInput(participants_known=False,
                                                       open_anonymous_participation_required=True,
                                                       audit_trail_required=False),
    }
    for name, application in applications.items():
        recommendation = recommend_architecture(application)
        print(f"  - {name}: {recommendation.architecture}")
        for reason in recommendation.reasons:
            print(f"      because {reason}")
        for warning in recommendation.warnings:
            print(f"      warning: {warning}")


if __name__ == "__main__":
    main()
