PY := python

.PHONY: test bench bench-update

test:
	PYTHONPATH=src $(PY) -m pytest -x -q

# Run the core perf suite (<60 s) and fail if engine events/sec regresses
# more than 20% from the committed BENCH_core.json baseline.
bench:
	PYTHONPATH=src $(PY) -m benchmarks.perf_report

# Refresh the results section of BENCH_core.json (seed_baseline is kept).
bench-update:
	PYTHONPATH=src $(PY) -m benchmarks.perf_report --update
