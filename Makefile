PY := python

.PHONY: test bench bench-update experiments goldens smoke chaos distributed lint typecheck

# Correctness gates, quickest first:
#   make lint       reprolint determinism/purity contract (RL001-RL006);
#                   zero unsuppressed findings or exit 1
#   make typecheck  mypy targeted-strict over the determinism-critical core
#                   (skips with a notice when mypy is not installed)
#   make test       full tier-1 suite including the golden corpus
#   make chaos      fault-injection suite + figure1 under worker kills

# Tier-1 gate.  Includes the golden-corpus test (tests/test_goldens.py):
# every registered scenario and study re-runs trimmed at its fixed seed and
# must diff clean (zero tolerance) against tests/goldens/.
test:
	PYTHONPATH=src $(PY) -m pytest -x -q

# Enforce the determinism contract (see `repro-lint --list-rules` and the
# "Determinism contract" section of ROADMAP.md).  Exit 1 on any
# unsuppressed finding; suppressions require an inline reason.
lint:
	PYTHONPATH=src $(PY) -m repro.analysis.lint

# Targeted-strict mypy over the determinism-critical core (config and the
# checked file list live in mypy.ini).  mypy is not vendored: when it is
# missing locally the target reports a skip and exits 0; CI installs it.
typecheck:
	@if PYTHONPATH=src $(PY) -c "import mypy" >/dev/null 2>&1; then \
		PYTHONPATH=src $(PY) -m mypy --config-file mypy.ini; \
	else \
		echo "typecheck: mypy not installed - skipping (pip install mypy to enable)"; \
	fi

# Run the core perf suite (<60 s) and fail if engine events/sec regresses
# more than 20% from the committed BENCH_core.json baseline.  Kept out of CI:
# the baselines are host-dependent (run manually / nightly).
bench:
	PYTHONPATH=src $(PY) -m benchmarks.perf_report

# Refresh the results section of BENCH_core.json (seed_baseline is kept).
bench-update:
	PYTHONPATH=src $(PY) -m benchmarks.perf_report --update

# Regenerate EXPERIMENTS.md from the repro.core.claims registry.
experiments:
	PYTHONPATH=src $(PY) -m repro.analysis.experiments

# Regenerate the golden corpus (tests/goldens/) after an INTENTIONAL change
# to simulation numbers; commit the diff.  The tier-1 golden test fails with
# a rendered drift table until this is done.
goldens:
	PYTHONPATH=src $(PY) -m repro.scenarios.goldens

# Fault-tolerance gate: the scripted crash/retry/degrade suite, then the
# trimmed figure1 study on the --jobs 2 pool with every unit job's worker
# killed on its first attempt — supervision must retry, complete, and save
# a run whose failure manifest is empty (byte-identical to the fault-free
# golden by construction; asserted by the CI chaos job).
chaos:
	PYTHONPATH=src $(PY) -m pytest tests/test_fault_tolerance.py -q
	REPRO_FAULT_PLAN='{"faults": [{"match": "", "attempts": [1], "action": "kill"}]}' \
	PYTHONPATH=src $(PY) -m repro.run study figure1 --quiet --jobs 2 \
	  --retries 2 --keep-going --save chaos-fig1 \
	  --set bitcoin.architecture.duration_blocks=15 \
	  --set ethereum.architecture.duration_blocks=45 \
	  --set pbft.duration=1.0 --set fabric.duration=1.0 --set edge.duration=1.0

# Distributed-execution gate, two chaos stages (repro.distributed.smoke):
#   worker kill   broker + two worker subprocesses (one with a scripted
#                 first-attempt kill in its fault plan) run the trimmed
#                 figure1 study through DistributedBackend; the saved run
#                 must have an empty failure manifest and be byte-identical
#                 to the committed study golden despite the mid-run death.
#   broker kill   a journaled broker is SIGKILLed mid-run and restarted on
#                 the same journal; the client re-attaches, the run
#                 completes byte-identical with an empty manifest, and the
#                 retired run's journal file is garbage-collected.
distributed:
	PYTHONPATH=src $(PY) -m repro.distributed.smoke

# Fast end-to-end smoke of the scenario runner: one trimmed scenario per
# architecture family plus the trimmed figure1 cross-family study — once
# serially and once on the --jobs 2 process-pool backend (the two JSON
# documents are byte-identical by construction; CI sees both paths).
smoke:
	PYTHONPATH=src $(PY) -m repro.run pow-baseline --set architecture.duration_blocks=20 --quiet --json -
	PYTHONPATH=src $(PY) -m repro.run pbft-consortium --set duration=1.0 --quiet --json -
	PYTHONPATH=src $(PY) -m repro.run fabric-consortium --set duration=1.0 --quiet --json -
	PYTHONPATH=src $(PY) -m repro.run kad-lookup --set workload.lookups=20 --set topology.size=150 --quiet --json -
	PYTHONPATH=src $(PY) -m repro.run kademlia-churn-100k --set topology.size=5000 --set workload.lookups=200 --quiet --json -
	PYTHONPATH=src $(PY) -m repro.run edge-placement --set workload.requests=200 --quiet --json -
	PYTHONPATH=src $(PY) -m repro.run study figure1 --quiet --json - \
	  --set bitcoin.architecture.duration_blocks=20 \
	  --set ethereum.architecture.duration_blocks=60 \
	  --set pbft.duration=1.0 --set fabric.duration=1.0 --set edge.duration=1.0
	PYTHONPATH=src $(PY) -m repro.run study figure1 --quiet --json - --jobs 2 \
	  --set bitcoin.architecture.duration_blocks=20 \
	  --set ethereum.architecture.duration_blocks=60 \
	  --set pbft.duration=1.0 --set fabric.duration=1.0 --set edge.duration=1.0
