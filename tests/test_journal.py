"""The broker's write-ahead journal: parsing, replay, prefix consistency.

The durability argument rests on one property: appends are fsynced, so a
crash leaves a *prefix* of the acknowledged history (possibly with a torn
last line), and **any prefix of a valid journal replays to a consistent
queue**.  The property-style tests here record a real queue journey —
submit, lease, charge, complete, fail — then check every prefix of the
resulting journal file: it folds to an internally consistent state, and a
fresh :class:`BrokerQueue` recovered from it can be driven to completion
and retired (which garbage-collects the journal file).
"""

import json

import pytest

from repro.distributed import BrokerQueue, JournalDir
from repro.distributed.journal import (
    SCHEMA_VERSION,
    RunJournal,
    parse_lines,
    replay_records,
    run_file_name,
)
from repro.scenarios import JobPolicy


def _job(key, seed=1, scenario="s"):
    return {"key": key, "spec": {"name": scenario}, "seed": seed,
            "scenario": scenario}


def _submit_record(run_id, keys, order=0):
    return {"v": SCHEMA_VERSION, "type": "submit", "run": run_id,
            "order": order, "policy": {},
            "jobs": [_job(key) for key in keys]}


# ----------------------------------------------------------------------
# File naming
# ----------------------------------------------------------------------
class TestRunFileName:
    def test_hostile_run_ids_are_filesystem_safe(self):
        for run_id in ("../../etc/passwd", "a/b/c", "run id with spaces",
                       "ünïcode", "", "." * 10):
            name = run_file_name(run_id)
            assert name.endswith(".jsonl")
            assert "/" not in name and "\\" not in name
            stem = name[:-len(".jsonl")]
            assert stem == stem.strip("._-")
            assert all(c.isalnum() or c in "._-" for c in stem)

    def test_colliding_sanitised_prefixes_stay_distinct(self):
        # Both sanitise to the prefix "run_a"; the digest disambiguates.
        assert run_file_name("run/a") != run_file_name("run_a")

    def test_stable_and_greppable(self):
        assert run_file_name("study-figure1-1") == run_file_name(
            "study-figure1-1")
        assert run_file_name("study-figure1-1").startswith("study-figure1-1-")


# ----------------------------------------------------------------------
# Append / parse
# ----------------------------------------------------------------------
class TestRunJournal:
    def test_append_close_reopen_appends(self, tmp_path):
        journal_dir = JournalDir(tmp_path / "journal")
        journal = journal_dir.open_run("r")
        journal.append(_submit_record("r", ["a"]))
        journal.append({"type": "done", "key": "a", "metrics": {"m": 1.0}})
        journal.close()
        reopened = journal_dir.open_run("r")
        reopened.append({"type": "cancel"})
        reopened.close()
        records = parse_lines(
            journal_dir.path_for("r").read_text(encoding="utf-8"))
        assert [r["type"] for r in records] == ["submit", "done", "cancel"]
        assert records[1]["metrics"] == {"m": 1.0}

    def test_append_after_close_raises(self, tmp_path):
        journal = RunJournal(tmp_path / "r.jsonl")
        journal.close()
        with pytest.raises(ValueError):
            journal.append({"type": "cancel"})

    def test_discard_missing_file_is_fine(self, tmp_path):
        JournalDir(tmp_path / "journal").discard("never-existed")


class TestParseLines:
    def test_torn_tail_keeps_the_prefix(self):
        good = [json.dumps({"type": "submit", "run": "r"}),
                json.dumps({"type": "done", "key": "a"})]
        text = "\n".join(good) + "\n" + '{"type": "done", "key": "b", "met'
        records = parse_lines(text)
        assert [r["type"] for r in records] == ["submit", "done"]

    def test_non_dict_line_stops_parsing(self):
        text = json.dumps({"type": "submit", "run": "r"}) + "\n[1, 2, 3]\n" \
            + json.dumps({"type": "done", "key": "a"})
        assert len(parse_lines(text)) == 1

    def test_blank_lines_are_skipped(self):
        text = "\n" + json.dumps({"type": "submit", "run": "r"}) + "\n\n"
        assert len(parse_lines(text)) == 1


# ----------------------------------------------------------------------
# Folding records into run state
# ----------------------------------------------------------------------
class TestReplayRecords:
    def test_full_history_folds(self):
        state = replay_records([
            _submit_record("r", ["a", "b"], order=3),
            {"type": "lease", "key": "a", "worker": "w", "attempt": 1},
            {"type": "charge", "key": "a", "attempts": 1},
            {"type": "done", "key": "a", "metrics": {"m": 0.5},
             "cached": True},
            {"type": "failed", "key": "b",
             "failure": {"key": "b", "kind": "exception"}},
        ])
        assert state.run_id == "r" and state.order == 3
        assert state.results == {"a": {"m": 0.5}}
        assert state.cached == {"a"}
        assert state.charges == {"a": 1}
        assert state.failures["b"]["kind"] == "exception"
        assert state.leases == 1
        assert not state.cancelled

    def test_without_a_submit_there_is_no_state(self):
        assert replay_records([]) is None
        assert replay_records([{"type": "done", "key": "a"}]) is None

    def test_second_submit_stops_the_fold(self):
        state = replay_records([
            _submit_record("r", ["a"]),
            {"type": "done", "key": "a", "metrics": {}},
            _submit_record("r", ["b"]),
            {"type": "done", "key": "b", "metrics": {}},
        ])
        assert set(state.results) == {"a"}

    def test_charges_only_grow(self):
        state = replay_records([
            _submit_record("r", ["a"]),
            {"type": "charge", "key": "a", "attempts": 2},
            {"type": "charge", "key": "a", "attempts": 1},
        ])
        assert state.charges == {"a": 2}

    def test_cancel_flag(self):
        state = replay_records([_submit_record("r", ["a"]),
                                {"type": "cancel"}])
        assert state.cancelled


class TestJournalDir:
    def test_replay_orders_runs_by_submission(self, tmp_path):
        journal_dir = JournalDir(tmp_path / "journal")
        for run_id, order in (("zz", 0), ("aa", 2), ("mm", 1)):
            journal = journal_dir.open_run(run_id)
            journal.append(_submit_record(run_id, ["a"], order=order))
            journal.close()
        assert [s.run_id for s in journal_dir.replay()] == ["zz", "mm", "aa"]

    def test_empty_directory_replays_to_nothing(self, tmp_path):
        assert JournalDir(tmp_path / "missing").replay() == []


# ----------------------------------------------------------------------
# The prefix-consistency property
# ----------------------------------------------------------------------
def _record_history(tmp_path):
    """Drive a real journaled queue through every record type.

    a fails once then completes, b completes (cached), c exhausts its
    retry budget — the journal ends up with submit, lease, charge, done
    and failed records in genuine interleaving.
    """
    journal_dir = JournalDir(tmp_path / "journal")
    queue = BrokerQueue(journal=journal_dir)
    policy = JobPolicy(max_retries=2, backoff_base_s=0.0)
    queue.submit("history", [_job("a"), _job("b"), _job("c")], policy)
    fail_budget = {"a": 1, "c": 3}  # scripted failures per key
    while True:
        grant = queue.lease("w", wait_s=2.0)
        if grant["type"] != "job":
            break
        key = grant["key"]
        if fail_budget.get(key, 0) > 0:
            fail_budget[key] -= 1
            queue.fail(grant["lease"], "exception", "boom")
        else:
            queue.complete(grant["lease"], {"m": 0.5},
                           cached=(key == "b"))
    # a retried once then completed, b completed from cache, c exhausted
    # its three attempts into the manifest.
    stats = queue.stats()["runs"]["history"]
    assert stats["completed"] == 2 and stats["failed"] == 1
    return journal_dir.path_for("history").read_text(encoding="utf-8")


class TestPrefixReplayProperty:
    def test_every_prefix_folds_to_a_consistent_state(self, tmp_path):
        lines = _record_history(tmp_path).splitlines()
        assert len(lines) >= 10  # all record types are actually present
        for cut in range(len(lines) + 1):
            state = replay_records(parse_lines("\n".join(lines[:cut])))
            if cut == 0:
                assert state is None
                continue
            submitted = {str(job["key"]) for job in state.jobs}
            assert submitted == {"a", "b", "c"}
            # Settled keys are submitted keys, exactly once each.
            assert set(state.results) <= submitted
            assert set(state.failures) <= submitted
            assert not set(state.results) & set(state.failures)
            assert set(state.charges) <= submitted
            assert all(n >= 1 for n in state.charges.values())

    def test_every_prefix_recovers_to_a_workable_queue(self, tmp_path):
        lines = _record_history(tmp_path).splitlines()
        for cut in range(1, len(lines) + 1):
            root = tmp_path / f"cut-{cut}"
            journal_dir = JournalDir(root)
            root.mkdir()
            (root / run_file_name("history")).write_text(
                "\n".join(lines[:cut]) + "\n", encoding="utf-8")
            queue = BrokerQueue(journal=journal_dir)
            assert queue.recover() == ["history"]
            stats = queue.stats()["runs"]["history"]
            assert (stats["open"] + stats["completed"]
                    + stats["failed"]) == 3
            # Whatever was in flight at the cut can be driven home...
            while True:
                grant = queue.lease("w", wait_s=0.0)
                if grant["type"] != "job":
                    break
                queue.complete(grant["lease"], {"m": 1.0})
            # ...and the finished run retires, GC-ing its journal file.
            assert queue.retire("history") is True
            assert not queue.has_run("history")
            assert not journal_dir.path_for("history").exists()

    def test_torn_tail_still_recovers(self, tmp_path):
        text = _record_history(tmp_path)
        root = tmp_path / "torn"
        root.mkdir()
        (root / run_file_name("history")).write_text(
            text + '{"type": "done", "key": "c", "met',
            encoding="utf-8")
        queue = BrokerQueue(journal=JournalDir(root))
        assert queue.recover() == ["history"]
        stats = queue.stats()["runs"]["history"]
        # The torn record is ignored: c keeps its journaled failure.
        assert stats["completed"] == 2 and stats["failed"] == 1
        assert stats["open"] == 0 and stats["done"]
