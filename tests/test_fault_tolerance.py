"""Fault tolerance: supervision, retry/timeout, degradation, fault harness.

Every failure here is *scripted* through :mod:`repro.scenarios.faults` —
a deterministic (job key, attempt) → action table — so crash/retry/
degrade scenarios replay identically on every run and both backends.
The invariant under test throughout: retried jobs re-run the same
seed-pinned unit, so any run that completes is byte-identical to the
fault-free golden.
"""

import json
import os

import pytest

from repro.analysis.runstore import RunStore
from repro.run import EXIT_OK, EXIT_PARTIAL, main as run_main
from repro.scenarios import (
    FaultInjectingBackend,
    FaultPlan,
    FaultSpec,
    IncompletePlanError,
    InjectedFault,
    JobExecutionError,
    JobPolicy,
    JobTimeoutError,
    ProcessPoolBackend,
    SerialBackend,
    TornWriteStore,
    compile_scenario,
    compile_study,
    compile_sweep,
    execute_plan,
    run_scenario,
    run_sweep,
)
from repro.scenarios import execution as execution_module

from test_execution import FIGURE1_TRIMS, FIGURE1_TRIM_ARGS

SWEEP_OVERRIDES = {"architecture.steps": 20, "architecture.arrivals_per_step": 20}


def sweep_plan():
    return compile_sweep("market-concentration", overrides=SWEEP_OVERRIDES)


def raise_on(match, *attempts):
    return FaultPlan([FaultSpec(match=match, action="raise",
                                attempts=tuple(attempts))])


@pytest.fixture(autouse=True)
def _no_ambient_fault_plan(monkeypatch):
    monkeypatch.delenv(execution_module.FAULT_PLAN_ENV, raising=False)


class TestJobPolicy:
    def test_defaults_are_inactive(self):
        assert not JobPolicy().active
        assert JobPolicy(max_retries=1).active
        assert JobPolicy(timeout_s=5.0).active
        assert JobPolicy(keep_going=True).active

    def test_validation(self):
        with pytest.raises(ValueError):
            JobPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            JobPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            JobPolicy(backoff_factor=0.5)

    def test_backoff_is_deterministic_and_bounded(self):
        policy = JobPolicy(max_retries=5, backoff_base_s=0.05,
                           backoff_factor=2.0, backoff_max_s=0.4,
                           backoff_jitter=0.1)
        delays = [policy.backoff_delay("abc-s1", attempt)
                  for attempt in (1, 2, 3, 4, 5)]
        assert delays == [policy.backoff_delay("abc-s1", attempt)
                          for attempt in (1, 2, 3, 4, 5)]
        # exponential up to the cap, jitter only ever adds
        assert delays[0] >= 0.05 and delays[1] >= 0.1
        assert all(delay <= 0.4 * 1.1 for delay in delays)
        # jitter is per-(key, attempt): another key lands elsewhere
        assert policy.backoff_delay("xyz-s1", 1) != delays[0]


class TestFaultPlan:
    def test_round_trip_and_matching(self):
        plan = FaultPlan([FaultSpec(match="-s2", action="hang",
                                    attempts=(1, 3), seconds=9.0),
                          FaultSpec(match="", action="raise")])
        again = FaultPlan.from_json(plan.to_json())
        assert again.to_json() == plan.to_json()
        assert again.find("abc-s2", 1).action == "hang"
        assert again.find("abc-s2", 2).action == "raise"  # second spec
        assert again.find("abc-s1", 7).action == "raise"  # catch-all

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec(match="", action="explode")

    def test_installed_sets_and_restores_env(self):
        plan = raise_on("abc")
        env = execution_module.FAULT_PLAN_ENV
        assert os.environ.get(env) is None
        with plan.installed():
            assert FaultPlan.from_env().find("abc-s1", 1) is not None
        assert os.environ.get(env) is None
        assert FaultPlan.from_env() is None


class TestSerialSupervision:
    def test_retry_recovers_byte_identical(self):
        plan = sweep_plan()
        golden = execute_plan(plan).to_json()
        backend = FaultInjectingBackend(
            SerialBackend(), raise_on(plan.jobs[1].key, 1, 2))
        results = execute_plan(plan, backend=backend,
                               policy=JobPolicy(max_retries=2,
                                                backoff_base_s=0.0))
        assert results.to_json() == golden
        assert results.failures == []

    def test_fail_fast_raises_after_retries(self):
        plan = sweep_plan()
        backend = FaultInjectingBackend(
            SerialBackend(), raise_on(plan.jobs[0].key))
        with pytest.raises(JobExecutionError, match="failed after 3 attempt"):
            execute_plan(plan, backend=backend,
                         policy=JobPolicy(max_retries=2, backoff_base_s=0.0))

    def test_no_policy_keeps_original_exception(self):
        plan = sweep_plan()
        backend = FaultInjectingBackend(
            SerialBackend(), raise_on(plan.jobs[0].key))
        with pytest.raises(InjectedFault):
            execute_plan(plan, backend=backend)

    def test_keep_going_names_exactly_the_failed_keys(self):
        plan = sweep_plan()
        golden = execute_plan(plan)
        victim = plan.jobs[2].key
        backend = FaultInjectingBackend(SerialBackend(), raise_on(victim))
        results = execute_plan(plan, backend=backend,
                               policy=JobPolicy(max_retries=1, keep_going=True,
                                                backoff_base_s=0.0))
        assert [entry["key"] for entry in results.failures] == [victim]
        (entry,) = results.failures
        assert entry["kind"] == "exception" and entry["attempts"] == 2
        assert "InjectedFault" in entry["error"]
        assert entry["label"] == plan.slots[2].label
        # the failed slot is omitted entirely; the survivors are unchanged
        assert results.labels() == golden.labels()[:2]
        assert [r.to_json() for r in results] == [
            r.to_json() for r in list(golden)[:2]]

    def test_timeout_kind_and_retry_recovery(self):
        plan = compile_scenario("market-concentration",
                                overrides=SWEEP_OVERRIDES)
        golden = execute_plan(plan).to_json()
        backend = FaultInjectingBackend(
            SerialBackend(),
            FaultPlan([FaultSpec(match=plan.jobs[0].key, action="hang",
                                 attempts=(1,), seconds=30.0)]))
        results = execute_plan(plan, backend=backend,
                               policy=JobPolicy(max_retries=1, timeout_s=0.5,
                                                backoff_base_s=0.0))
        assert results.to_json() == golden

    def test_timeout_exhausted_reports_timeout_kind(self):
        plan = compile_scenario("market-concentration",
                                overrides=SWEEP_OVERRIDES)
        backend = FaultInjectingBackend(
            SerialBackend(),
            FaultPlan([FaultSpec(match="", action="hang", seconds=30.0)]))
        with pytest.raises(JobExecutionError) as excinfo:
            execute_plan(plan, backend=backend,
                         policy=JobPolicy(timeout_s=0.3))
        assert excinfo.value.failure.kind == "timeout"
        assert "wall-clock budget" in excinfo.value.failure.error

    def test_run_scenario_raises_even_under_keep_going(self):
        backend = FaultInjectingBackend(SerialBackend(), raise_on(""))
        with pytest.raises(JobExecutionError):
            run_scenario("market-concentration", overrides=SWEEP_OVERRIDES,
                         backend=backend,
                         policy=JobPolicy(keep_going=True))


class TestPoolSupervision:
    def test_worker_kill_respawns_and_recovers(self):
        plan = sweep_plan()
        golden = execute_plan(plan).to_json()
        backend = FaultInjectingBackend(
            ProcessPoolBackend(2),
            FaultPlan([FaultSpec(match=plan.jobs[1].key, action="kill",
                                 attempts=(1,))]))
        results = execute_plan(plan, backend=backend,
                               policy=JobPolicy(max_retries=2,
                                                backoff_base_s=0.0))
        assert results.to_json() == golden
        assert results.failures == []

    def test_hung_worker_killed_and_job_retried(self):
        plan = sweep_plan()
        golden = execute_plan(plan).to_json()
        backend = FaultInjectingBackend(
            ProcessPoolBackend(2),
            FaultPlan([FaultSpec(match=plan.jobs[0].key, action="hang",
                                 attempts=(1,), seconds=60.0)]))
        results = execute_plan(plan, backend=backend,
                               policy=JobPolicy(max_retries=1, timeout_s=1.5,
                                                backoff_base_s=0.0))
        assert results.to_json() == golden

    def test_pool_raise_manifest_names_exact_keys(self):
        # `raise` faults attribute precisely even on a pool (the worker
        # survives, unlike `kill`, which charges every in-flight job).
        plan = sweep_plan()
        victim = plan.jobs[2].key
        backend = FaultInjectingBackend(ProcessPoolBackend(2),
                                        raise_on(victim))
        results = execute_plan(plan, backend=backend,
                               policy=JobPolicy(max_retries=1, keep_going=True,
                                                backoff_base_s=0.0))
        assert [entry["key"] for entry in results.failures] == [victim]
        assert len(results) == 2

    def test_pool_fail_fast_raises(self):
        plan = sweep_plan()
        backend = FaultInjectingBackend(ProcessPoolBackend(2),
                                        raise_on(plan.jobs[0].key))
        with pytest.raises(JobExecutionError):
            execute_plan(plan, backend=backend,
                         policy=JobPolicy(max_retries=1, backoff_base_s=0.0))

    def test_figure1_with_kill_matches_no_fault_golden(self):
        plan = compile_study("figure1", member_overrides=FIGURE1_TRIMS)
        golden = execute_plan(plan).to_json()
        backend = FaultInjectingBackend(
            ProcessPoolBackend(2),
            FaultPlan([FaultSpec(match="", action="kill", attempts=(1,))]))
        results = execute_plan(plan, backend=backend,
                               policy=JobPolicy(max_retries=2,
                                                backoff_base_s=0.0))
        assert results.to_json() == golden
        assert results.failures == []


class TestGracefulDegradationWithStore:
    def test_failed_jobs_stay_out_of_cache_and_rerun_executes_only_them(
            self, tmp_path):
        store = RunStore(tmp_path / "runs")
        plan = sweep_plan()
        victim = plan.jobs[1].key
        backend = FaultInjectingBackend(SerialBackend(), raise_on(victim))
        partial = execute_plan(plan, backend=backend, store=store,
                               policy=JobPolicy(max_retries=1, keep_going=True,
                                                backoff_base_s=0.0))
        assert [entry["key"] for entry in partial.failures] == [victim]
        assert store.get_unit(victim) is None  # failures are never cached
        cached = store.completed_units(plan.job_keys())
        assert set(cached) == set(plan.job_keys()) - {victim}

        record = store.save(partial, "partial")
        assert record.failures == 1
        reloaded = store.load("partial")
        assert reloaded.failures == partial.failures
        assert reloaded.to_json() == partial.to_json()

        # Fault cleared: the rerun resumes the cached units and executes
        # only the one that failed.
        executed = []
        real = execution_module.execute_unit

        def counting(job, attempt=1):
            executed.append(job.key)
            return real(job, attempt)

        execution_module.execute_unit, saved = counting, real
        try:
            complete = execute_plan(plan, store=store)
        finally:
            execution_module.execute_unit = saved
        assert executed == [victim]
        assert complete.to_json() == execute_plan(plan).to_json()
        assert store.save(complete, "partial").failures == 0


class TestTornWrites:
    def test_torn_tmp_swept_on_open_and_cache_intact(self, tmp_path):
        import time

        store = TornWriteStore(tmp_path / "runs", match="")
        plan = sweep_plan()
        with pytest.raises(InjectedFault, match="torn write"):
            execute_plan(plan, store=store)  # dies mid first unit write
        (tmp,) = store.units_dir.glob("*.tmp")
        # the torn temp never reached the cache: no unit is resumable
        assert RunStore(tmp_path / "runs").completed_units(
            plan.job_keys()) == {}
        # a fresh .tmp survives store open (could be a live run's write)
        assert tmp.exists()
        # ...but once stale it is swept on open, not only by gc
        old = time.time() - 7200
        os.utime(tmp, (old, old))
        RunStore(tmp_path / "runs")
        assert not tmp.exists()

    def test_rerun_after_torn_write_repairs_the_cache(self, tmp_path):
        plan = sweep_plan()
        store = TornWriteStore(tmp_path / "runs", match=plan.jobs[0].key)
        with pytest.raises(InjectedFault):
            execute_plan(plan, store=store)
        # TornWriteStore tears each key once; the rerun's writes land.
        clean = RunStore(tmp_path / "runs")
        results = execute_plan(plan, store=store)
        assert results.to_json() == execute_plan(plan).to_json()
        assert set(clean.completed_units(plan.job_keys())) == set(
            plan.job_keys())


class TestIncompletePlan:
    def test_names_the_missing_keys(self):
        plan = sweep_plan()
        have = {job.key: {"x": 1.0} for job in plan.jobs[:1]}
        with pytest.raises(IncompletePlanError) as excinfo:
            plan.assemble(have)
        missing = [job.key for job in plan.jobs[1:]]
        assert excinfo.value.missing == missing
        for key in missing:
            assert key in str(excinfo.value)
        assert isinstance(excinfo.value, KeyError)  # compat: old contract

    def test_failed_keys_do_not_count_as_missing(self):
        plan = sweep_plan()
        backend = FaultInjectingBackend(SerialBackend(),
                                        raise_on(plan.jobs[0].key))
        results = execute_plan(plan, backend=backend,
                               policy=JobPolicy(keep_going=True))
        assert len(results) == 2 and len(results.failures) == 1


class TestCliFaultTolerance:
    BASE = ["sweep", "market-concentration", "--quiet", "--json", "-",
            "--set", "architecture.steps=20",
            "--set", "architecture.arrivals_per_step=20"]

    def test_retries_recover_and_match_unsupervised_output(
            self, monkeypatch, capsys):
        assert run_main(self.BASE) == EXIT_OK
        golden = capsys.readouterr().out
        monkeypatch.setenv(execution_module.FAULT_PLAN_ENV,
                           raise_on("", 1).to_json())
        assert run_main(self.BASE + ["--retries", "2"]) == EXIT_OK
        assert capsys.readouterr().out == golden

    def test_keep_going_partial_exits_3_with_failure_table(
            self, monkeypatch, capsys):
        monkeypatch.setenv(execution_module.FAULT_PLAN_ENV,
                           raise_on("").to_json())
        assert run_main(self.BASE + ["--retries", "1",
                                     "--keep-going"]) == EXIT_PARTIAL
        captured = capsys.readouterr()
        assert json.loads(captured.out) == []  # every point failed
        assert "unit job(s) failed after retries" in captured.err
        assert "InjectedFault" in captured.err

    def test_fail_fast_exits_3_with_one_line(self, monkeypatch, capsys):
        monkeypatch.setenv(execution_module.FAULT_PLAN_ENV,
                           raise_on("").to_json())
        assert run_main(self.BASE + ["--retries", "1"]) == EXIT_PARTIAL
        err = capsys.readouterr().err
        assert "failed after 2 attempt(s)" in err

    def test_study_json_carries_the_manifest(self, monkeypatch, capsys,
                                             tmp_path):
        monkeypatch.setenv(execution_module.FAULT_PLAN_ENV,
                           raise_on("").to_json())
        argv = (["study", "figure1", "--quiet", "--json", "-", "--keep-going",
                 "--save", "partial-fig1", "--runs-dir", str(tmp_path),
                 "--members", "pbft,fabric"] + FIGURE1_TRIM_ARGS)
        assert run_main(argv) == EXIT_PARTIAL
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["failures"]) == 2
        assert {entry["label"] for entry in payload["failures"]} == {
            "pbft", "fabric"}
        assert RunStore(tmp_path).record("partial-fig1").failures == 2

    def test_bad_flag_values_are_usage_errors(self):
        with pytest.raises(SystemExit, match="--retries"):
            run_main(self.BASE + ["--retries", "-1"])
        with pytest.raises(SystemExit, match="--job-timeout"):
            run_main(self.BASE + ["--job-timeout", "0"])

    def test_help_documents_fault_flags(self, capsys):
        with pytest.raises(SystemExit):
            run_main(["--help"])
        out = capsys.readouterr().out
        assert "--retries" in out and "--job-timeout" in out
        assert "--keep-going" in out

    def test_cli_jobs_with_kill_matches_serial_golden(self, monkeypatch,
                                                      capsys):
        argv = (["study", "figure1", "--quiet", "--json", "-"]
                + FIGURE1_TRIM_ARGS)
        assert run_main(argv) == EXIT_OK
        golden = capsys.readouterr().out
        monkeypatch.setenv(
            execution_module.FAULT_PLAN_ENV,
            FaultPlan([FaultSpec(match="", action="kill", attempts=(1,))
                       ]).to_json())
        assert run_main(argv + ["--jobs", "2", "--retries", "2"]) == EXIT_OK
        assert capsys.readouterr().out == golden


class TestSupervisedEqualsFastPath:
    def test_sweep_output_identical_under_inactive_and_active_policy(self):
        plan = sweep_plan()
        fast = execute_plan(plan).to_json()
        assert execute_plan(
            plan, policy=JobPolicy()).to_json() == fast  # inactive
        assert execute_plan(
            plan, policy=JobPolicy(max_retries=3, timeout_s=300.0,
                                   keep_going=True)).to_json() == fast

    def test_run_sweep_threads_policy(self):
        golden = run_sweep("market-concentration",
                           overrides=SWEEP_OVERRIDES).to_json()
        supervised = run_sweep("market-concentration",
                               overrides=SWEEP_OVERRIDES,
                               policy=JobPolicy(max_retries=1)).to_json()
        assert supervised == golden
