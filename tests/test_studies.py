"""The Study API: registry, runner, CLI subcommand, and the comparison shim."""

import json

import pytest

from repro.core.comparison import (
    compare_architectures,
    comparison_from_resultset,
    figure1_overrides,
)
from repro.run import main as run_main
from repro.scenarios import (
    STUDIES,
    ResultSet,
    StudyMember,
    StudySpec,
    get_study,
    run_study,
    study_names,
)

#: Dotted-path trims that make the figure1 study run in well under a second.
FIGURE1_TRIMS = {
    "bitcoin": {"architecture.duration_blocks": 15},
    "ethereum": {"architecture.duration_blocks": 45},
    "pbft": {"duration": 1.0},
    "fabric": {"duration": 1.0},
    "edge": {"duration": 1.0},
}

FIGURE1_TRIM_ARGS = [
    "--set", "bitcoin.architecture.duration_blocks=15",
    "--set", "ethereum.architecture.duration_blocks=45",
    "--set", "pbft.duration=1.0",
    "--set", "fabric.duration=1.0",
    "--set", "edge.duration=1.0",
]


class TestStudyRegistry:
    def test_required_studies_are_registered(self):
        assert {"figure1", "trilemma", "churn-resilience"} <= set(study_names())

    def test_get_study_returns_copies(self):
        first = get_study("figure1")
        first.members[0].overrides["workload.rate_tps"] = 1.0
        assert get_study("figure1").members[0].overrides["workload.rate_tps"] == 25.0

    def test_unknown_study_message_lists_names(self):
        with pytest.raises(KeyError, match="known studies"):
            get_study("warp-drive")

    def test_members_reference_registered_scenarios(self):
        from repro.scenarios import SCENARIOS

        for name in study_names():
            for member in STUDIES[name].members:
                assert member.scenario in SCENARIOS, (name, member.label)

    def test_figure1_pins_one_matched_workload(self):
        study = STUDIES["figure1"]
        rates = {member.overrides.get("workload.rate_tps")
                 for member in study.members}
        assert len(rates) == 1

    def test_duplicate_member_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate member labels"):
            StudySpec(name="x", members=[
                StudyMember("a", "pow-baseline"),
                StudyMember("a", "pow-ethereum"),
            ])

    def test_spec_dict_round_trip(self):
        spec = get_study("figure1")
        assert StudySpec.from_dict(spec.to_dict()) == spec


class TestRunStudy:
    def test_member_subset_and_labels(self):
        results = run_study("figure1", members=["pbft", "fabric"],
                            member_overrides={"*": {"duration": 0.5}})
        assert isinstance(results, ResultSet)
        assert results.labels() == ["pbft", "fabric"]
        assert results.name == "figure1"
        # Both consortium members saw the study's matched offered load.
        assert results.axis_values("workload.rate_tps") == [25.0]

    def test_unknown_member_and_override_labels(self):
        with pytest.raises(KeyError, match="no members"):
            run_study("figure1", members=["warp"])
        with pytest.raises(KeyError, match="unknown members"):
            run_study("figure1", member_overrides={"warp": {"seed": 1}})

    def test_deterministic_json(self):
        first = run_study("churn-resilience", member_overrides={
            "*": {"topology.size": 80, "workload.lookups": 10}})
        second = run_study("churn-resilience", member_overrides={
            "*": {"topology.size": 80, "workload.lookups": 10}})
        assert first.to_json() == second.to_json()
        assert first.labels() == ["kademlia", "one-hop", "unstructured"]
        # All three overlay substrates report the comparable latency metrics.
        for metric in ("median_latency_s", "failure_rate"):
            assert metric in first.metric_names(common=True)

    def test_sweep_member_expands_with_prefixed_labels(self):
        spec = StudySpec(name="adhoc", members=[
            StudyMember("market", "market-concentration",
                        {"architecture.steps": 30,
                         "architecture.arrivals_per_step": 40},
                        sweep=True),
        ])
        results = run_study(spec)
        assert len(results) == 3
        assert all(label.startswith("market: preferential_exponent=")
                   for label in results.labels())

    def test_replicates_fan_out(self):
        results = run_study("concentration", members=["mining-pools"],
                            replicates=2,
                            member_overrides={"mining-pools": {
                                "architecture.miners": 150,
                                "architecture.rounds": 15}})
        (pools,) = list(results)
        assert [replicate.seed for replicate in pools.replicates] == [3, 4]
        low, high = pools.ci95("top1")
        assert low <= pools.metric("top1") <= high


class TestComparisonShim:
    def test_shim_equals_study_backed_path(self):
        shim = compare_architectures(seed=2, pow_blocks=10, fabric_rate=400,
                                     fabric_duration=1.0)
        results = run_study(
            "figure1",
            seed=2,
            members=["bitcoin", "ethereum", "fabric", "edge"],
            member_overrides=figure1_overrides(pow_blocks=10, fabric_rate=400,
                                               fabric_duration=1.0),
        )
        assert comparison_from_resultset(results) == shim

    def test_shim_keeps_the_historical_shape(self):
        shim = compare_architectures(seed=2, pow_blocks=10, fabric_rate=400,
                                     fabric_duration=1.0)
        names = [row["architecture"] for row in shim.rows()]
        assert names == ["bitcoin-pow", "ethereum-pow", "permissioned-fabric",
                         "centralized-cloud", "edge-federation"]
        for row in shim.rows():
            assert set(row) == {"architecture", "throughput_tps",
                                "finality_latency_s", "energy_per_tx_kwh",
                                "trust_nakamoto", "open_membership"}
        assert shim.throughput_gap() > 20


class TestStudyCli:
    def test_list_studies(self, capsys):
        assert run_main(["--list-studies"]) == 0
        out = capsys.readouterr().out
        for name in study_names():
            assert name in out

    def test_study_without_name_lists_and_fails(self, capsys):
        assert run_main(["study"]) == 2
        assert "figure1" in capsys.readouterr().out

    def test_unknown_study_fails(self, capsys):
        assert run_main(["study", "warp-drive"]) == 2
        assert "unknown study" in capsys.readouterr().err

    def test_unknown_member_in_set_fails(self, capsys):
        assert run_main(["study", "figure1", "--set", "warp.duration=1"]) == 2
        assert "unknown member" in capsys.readouterr().err

    def test_figure1_json_is_byte_identical_across_runs(self, capsys):
        argv = (["study", "figure1", "--quiet", "--json", "-"]
                + FIGURE1_TRIM_ARGS)
        assert run_main(argv) == 0
        first = capsys.readouterr().out
        assert run_main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["name"] == "figure1"
        labels = [entry["label"] for entry in payload["results"]]
        assert labels == ["bitcoin", "ethereum", "pbft", "fabric", "edge"]
        # The CLI --set reached its member: the trim is recorded in the spec.
        bitcoin = payload["results"][0]
        assert bitcoin["spec"]["architecture"]["duration_blocks"] == 15

    def test_members_flag(self, capsys):
        argv = ["study", "figure1", "--members", "pbft,fabric", "--quiet",
                "--json", "-", "--set", "pbft.duration=0.5",
                "--set", "fabric.duration=0.5"]
        assert run_main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["label"] for entry in payload["results"]] == ["pbft", "fabric"]

    def test_replicates_prints_ci_column(self, capsys):
        argv = ["pos-slashing", "--set", "architecture.rounds=150",
                "--replicates", "3"]
        assert run_main(argv) == 0
        out = capsys.readouterr().out
        assert "ci95" in out
