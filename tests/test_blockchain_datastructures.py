"""Tests for transactions, blocks, the block tree, mempool and mining primitives."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockchain.chain import BlockTree
from repro.blockchain.mempool import Mempool
from repro.blockchain.mining import DifficultyAdjuster, MinerSpec, MiningProcess
from repro.blockchain.primitives import Block, Transaction, block_hash
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRNG


def make_tx(index, fee=1.0, size=400):
    return Transaction(
        tx_id=f"tx-{index}", payer=f"p{index}", payee=f"q{index}", amount=1.0,
        fee=fee, size_bytes=size,
    )


class TestPrimitives:
    def test_transaction_validation(self):
        with pytest.raises(ValueError):
            Transaction("t", "a", "b", amount=-1.0)
        with pytest.raises(ValueError):
            Transaction("t", "a", "b", amount=1.0, fee=-0.1)
        with pytest.raises(ValueError):
            Transaction("t", "a", "b", amount=1.0, size_bytes=0)

    def test_genesis_block(self):
        genesis = Block.genesis()
        assert genesis.height == 0
        assert genesis.tx_count == 0

    def test_block_hash_changes_with_content(self):
        genesis = Block.genesis()
        child_a = Block.create(genesis, miner="a", timestamp=1.0)
        child_b = Block.create(genesis, miner="b", timestamp=1.0)
        assert child_a.hash != child_b.hash
        assert child_a.parent_hash == genesis.hash

    def test_block_hash_deterministic(self):
        genesis = Block.genesis()
        child = Block.create(genesis, miner="a", timestamp=2.0)
        assert child.hash == block_hash(child.header)

    def test_block_size_and_fees(self):
        genesis = Block.genesis()
        txs = [make_tx(i, fee=0.5, size=300) for i in range(4)]
        block = Block.create(genesis, miner="m", timestamp=1.0, transactions=txs)
        assert block.size_bytes == block.header_bytes + 4 * 300
        assert block.total_fees() == pytest.approx(2.0)
        assert block.tx_count == 4


class TestBlockTree:
    def build_chain(self, length=5):
        tree = BlockTree()
        parent = tree.genesis
        for index in range(length):
            block = Block.create(parent, miner="m", timestamp=float(index + 1))
            tree.add(block)
            parent = block
        return tree

    def test_linear_chain_head(self):
        tree = self.build_chain(5)
        assert tree.head.height == 5
        assert len(tree.main_chain()) == 6
        assert tree.stats().stale_blocks == 0

    def test_unknown_parent_rejected(self):
        tree = BlockTree()
        orphan_parent = Block.create(Block.genesis(), miner="x", timestamp=1.0)
        orphan = Block.create(orphan_parent, miner="x", timestamp=2.0)
        with pytest.raises(KeyError):
            tree.add(orphan)

    def test_duplicate_add_is_noop(self):
        tree = BlockTree()
        block = Block.create(tree.genesis, miner="m", timestamp=1.0)
        assert tree.add(block) is True
        assert tree.add(block) is False

    def test_fork_resolution_longest_chain(self):
        tree = BlockTree()
        a1 = Block.create(tree.genesis, miner="a", timestamp=1.0)
        b1 = Block.create(tree.genesis, miner="b", timestamp=1.1)
        tree.add(a1)
        tree.add(b1)
        assert tree.head == a1                      # first at equal height wins
        b2 = Block.create(b1, miner="b", timestamp=2.0)
        tree.add(b2)
        assert tree.head == b2                      # longer branch takes over
        stats = tree.stats()
        assert stats.stale_blocks == 1
        assert stats.forks_observed == 1
        assert tree.max_reorg_depth >= 1

    def test_confirmations(self):
        tree = self.build_chain(6)
        main = tree.chain_hashes()
        assert tree.confirmations(main[-1]) == 1
        assert tree.confirmations(main[1]) == 6
        assert tree.confirmations("unknown") == 0

    def test_confirmed_transactions_depth_filter(self):
        tree = BlockTree()
        parent = tree.genesis
        for index in range(3):
            block = Block.create(
                parent, miner="m", timestamp=float(index + 1), transactions=[make_tx(index)]
            )
            tree.add(block)
            parent = block
        assert len(tree.confirmed_transactions(min_confirmations=1)) == 3
        assert len(tree.confirmed_transactions(min_confirmations=3)) == 1
        assert len(tree.confirmed_transactions(min_confirmations=10)) == 0

    def test_interblock_time(self):
        tree = self.build_chain(4)
        assert tree.stats().mean_interblock_time == pytest.approx(1.0)


class TestMempool:
    def test_add_and_duplicate(self):
        pool = Mempool()
        tx = make_tx(1)
        assert pool.add(tx)
        assert not pool.add(tx)
        assert len(pool) == 1
        assert "tx-1" in pool

    def test_selection_prefers_fee_rate(self):
        pool = Mempool()
        cheap = make_tx(1, fee=0.1, size=400)
        rich = make_tx(2, fee=2.0, size=400)
        pool.add_many([cheap, rich])
        selected = pool.select_for_block(max_block_bytes=400)
        assert selected == [rich]

    def test_selection_respects_block_size(self):
        pool = Mempool()
        pool.add_many([make_tx(i, size=400) for i in range(10)])
        selected = pool.select_for_block(max_block_bytes=1200)
        assert len(selected) == 3

    def test_selection_respects_exclusion(self):
        pool = Mempool()
        pool.add_many([make_tx(i) for i in range(3)])
        selected = pool.select_for_block(4000, exclude={"tx-0", "tx-1"})
        assert [tx.tx_id for tx in selected] == ["tx-2"]

    def test_remove_confirmed(self):
        pool = Mempool()
        pool.add_many([make_tx(i) for i in range(3)])
        pool.remove(["tx-0", "tx-2"])
        assert len(pool) == 1

    def test_eviction_when_full(self):
        pool = Mempool(max_size=2)
        pool.add(make_tx(1, fee=0.1))
        pool.add(make_tx(2, fee=0.2))
        assert pool.add(make_tx(3, fee=5.0))          # evicts the cheapest
        assert not pool.add(make_tx(4, fee=0.01))     # too cheap to enter
        assert len(pool) == 2
        assert "tx-1" not in pool

    def test_total_bytes(self):
        pool = Mempool()
        pool.add_many([make_tx(i, size=100) for i in range(5)])
        assert pool.total_bytes() == 500

    @given(st.lists(st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_selection_never_exceeds_block_size(self, fees):
        pool = Mempool()
        pool.add_many([make_tx(i, fee=fee, size=250) for i, fee in enumerate(fees)])
        selected = pool.select_for_block(max_block_bytes=1000)
        assert sum(tx.size_bytes for tx in selected) <= 1000


class TestDifficultyAdjustment:
    def test_expected_interval(self):
        adjuster = DifficultyAdjuster(target_interval=600.0, initial_hashrate=100.0)
        assert adjuster.expected_interval(100.0) == pytest.approx(600.0)
        assert adjuster.expected_interval(200.0) == pytest.approx(300.0)

    def test_retarget_raises_difficulty_when_blocks_too_fast(self):
        adjuster = DifficultyAdjuster(target_interval=600.0, retarget_window=10, initial_hashrate=1.0)
        before = adjuster.difficulty
        timestamp = 0.0
        adjuster.record_block(timestamp)
        for _ in range(10):
            timestamp += 300.0           # blocks arriving twice as fast as target
            adjuster.record_block(timestamp)
        assert adjuster.difficulty == pytest.approx(before * 2.0, rel=0.01)

    def test_retarget_clamped(self):
        adjuster = DifficultyAdjuster(
            target_interval=600.0, retarget_window=5, max_adjustment_factor=4.0, initial_hashrate=1.0
        )
        before = adjuster.difficulty
        timestamp = 0.0
        adjuster.record_block(timestamp)
        for _ in range(5):
            timestamp += 1.0             # absurdly fast blocks
            adjuster.record_block(timestamp)
        assert adjuster.difficulty == pytest.approx(before * 4.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DifficultyAdjuster(target_interval=0.0)
        with pytest.raises(ValueError):
            DifficultyAdjuster(retarget_window=0)
        with pytest.raises(ValueError):
            DifficultyAdjuster(max_adjustment_factor=0.5)


class TestMiningProcess:
    def test_block_discovery_rate_matches_hashrate(self):
        sim = Simulator()
        found = []
        spec = MinerSpec(name="m", hashrate=10.0)
        process = MiningProcess(
            sim, spec, SeededRNG(1), difficulty=lambda: 600.0, on_block_found=found.append
        )
        process.start()
        sim.run(until=60_000.0)
        # Expected interval = 600/10 = 60 s -> ~1000 blocks in 60k seconds.
        assert 850 <= len(found) <= 1150

    def test_stop_prevents_further_blocks(self):
        sim = Simulator()
        found = []
        process = MiningProcess(
            sim, MinerSpec("m", 10.0), SeededRNG(2), lambda: 600.0, found.append
        )
        process.start()
        sim.run(until=600.0)
        process.stop()
        count = len(found)
        sim.run(until=6000.0)
        assert len(found) == count

    def test_zero_hashrate_never_finds(self):
        sim = Simulator()
        found = []
        process = MiningProcess(
            sim, MinerSpec("m", 0.0), SeededRNG(3), lambda: 600.0, found.append
        )
        process.start()
        sim.run(until=10_000.0)
        assert found == []
