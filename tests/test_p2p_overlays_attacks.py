"""Tests for Chord, Gnutella, superpeer, one-hop overlays, Sybil, free riding, BitTorrent."""

import pytest

from repro.p2p.bittorrent import SwarmConfig, TitForTatSwarm
from repro.p2p.chord import ChordNetwork
from repro.p2p.freeriding import (
    GNUTELLA_2000_REFERENCE,
    ContributionModel,
    analyze_contributions,
    incentive_sensitivity,
)
from repro.p2p.identifiers import key_for, random_id
from repro.p2p.lookup import LookupExperiment, LookupExperimentConfig
from repro.p2p.onehop import OneHopConfig, OneHopOverlay, OverlayCostModel
from repro.p2p.superpeer import SuperpeerConfig, SuperpeerNetwork
from repro.p2p.sybil import SybilAttackConfig, run_sybil_attack
from repro.p2p.unstructured import GnutellaConfig, GnutellaNetwork
from repro.sim.churn import ChurnModel
from repro.sim.rng import SeededRNG


class TestChord:
    def test_ring_is_sorted_and_unique(self):
        network = ChordNetwork(100, seed=1)
        assert network.ring == sorted(set(network.ring))

    def test_responsible_is_successor(self):
        network = ChordNetwork(50, seed=2)
        key = random_id(SeededRNG(3))
        responsible = network.responsible_for(key)
        assert responsible in network.nodes
        # No other node lies between the key and its successor.
        others = [n for n in network.ring if n >= key]
        expected = min(others) if others else network.ring[0]
        assert responsible == expected

    def test_lookup_reaches_responsible_node(self):
        network = ChordNetwork(100, seed=3)
        rng = SeededRNG(4)
        for _ in range(20):
            origin = rng.choice(network.ring)
            key = random_id(rng)
            result = network.lookup(origin, key)
            assert result.success
            assert result.responsible == network.responsible_for(key)

    def test_hops_scale_logarithmically(self):
        small = ChordNetwork(50, seed=5).average_hops(100)
        large = ChordNetwork(400, seed=5).average_hops(100)
        assert small < large < small + 6

    def test_failed_nodes_reduce_success(self):
        network = ChordNetwork(100, successor_list_size=2, seed=6)
        network.fail_nodes(0.5)
        rng = SeededRNG(7)
        alive = list(network.alive_ids())
        outcomes = [network.lookup(rng.choice(alive), random_id(rng)) for _ in range(40)]
        assert any(not outcome.success for outcome in outcomes) or all(
            outcome.success for outcome in outcomes
        )
        # Lookups from failed nodes are rejected outright.
        dead = next(n for n in network.ring if n not in network.alive_ids())
        assert not network.lookup(dead, random_id(rng)).success

    def test_routing_state_is_logarithmic(self):
        network = ChordNetwork(200, seed=8)
        assert network.routing_state_per_node() < 60

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            ChordNetwork(1)


class TestGnutella:
    def test_flooding_reaches_more_peers_with_higher_ttl(self):
        low = GnutellaNetwork(GnutellaConfig(size=400, ttl=2), seed=1)
        high = GnutellaNetwork(GnutellaConfig(size=400, ttl=5), seed=1)
        assert (
            high.recall_and_cost(50)["mean_peers_reached"]
            > low.recall_and_cost(50)["mean_peers_reached"]
        )

    def test_message_cost_grows_with_ttl(self):
        low = GnutellaNetwork(GnutellaConfig(size=400, ttl=2), seed=2)
        high = GnutellaNetwork(GnutellaConfig(size=400, ttl=5), seed=2)
        assert (
            high.recall_and_cost(50)["mean_messages_per_query"]
            > low.recall_and_cost(50)["mean_messages_per_query"]
        )

    def test_recall_drops_when_few_peers_share(self):
        sharing = GnutellaNetwork(GnutellaConfig(size=500, sharing_fraction=1.0, ttl=3), seed=3)
        freeriding = GnutellaNetwork(
            GnutellaConfig(size=500, sharing_fraction=0.05, replicas_per_object=2, ttl=3), seed=3
        )
        assert (
            freeriding.recall_and_cost(100)["recall"]
            < sharing.recall_and_cost(100)["recall"]
        )

    def test_query_outcome_fields(self):
        network = GnutellaNetwork(GnutellaConfig(size=200), seed=4)
        outcome = network.query(0, object_id=0)
        assert outcome.messages > 0
        assert outcome.peers_reached > 1

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            GnutellaNetwork(GnutellaConfig(size=1))


class TestSuperpeer:
    def test_queries_touch_few_superpeers(self):
        network = SuperpeerNetwork(SuperpeerConfig(leaves=500, superpeers=20), seed=1)
        report = network.run_queries(100)
        assert report["mean_hops"] <= 3.5
        assert report["mean_superpeers_contacted"] <= 20

    def test_superpeer_tier_is_centralized(self):
        network = SuperpeerNetwork(SuperpeerConfig(leaves=500, superpeers=20), seed=2)
        report = network.centralization_report()
        assert report["superpeer_fraction_of_peers"] < 0.1
        assert report["index_nakamoto"] <= 20

    def test_recall_reasonable(self):
        network = SuperpeerNetwork(SuperpeerConfig(leaves=400, superpeers=16), seed=3)
        assert network.run_queries(100)["recall"] > 0.3

    def test_requires_superpeer(self):
        with pytest.raises(ValueError):
            SuperpeerNetwork(SuperpeerConfig(superpeers=0))


class TestOneHop:
    def test_onehop_state_grows_linearly(self):
        model = OverlayCostModel()
        assert model.onehop_state_bytes(100_000) == 10 * model.onehop_state_bytes(10_000)

    def test_multihop_state_grows_logarithmically(self):
        model = OverlayCostModel()
        assert model.multihop_state_bytes(100_000) < 2 * model.multihop_state_bytes(1_000)

    def test_onehop_latency_below_multihop(self):
        model = OverlayCostModel()
        assert model.onehop_lookup_latency() < model.multihop_lookup_latency(10_000)

    def test_onehop_feasible_for_stable_10k(self):
        model = OverlayCostModel()
        assert model.onehop_feasible(10_000, churn_events_per_node_hour=0.2)
        assert model.onehop_feasible(100_000, churn_events_per_node_hour=0.2)

    def test_onehop_infeasible_under_heavy_churn_at_scale(self):
        model = OverlayCostModel()
        assert not model.onehop_feasible(
            1_000_000, churn_events_per_node_hour=4.0, bandwidth_budget_kbps=50.0
        )

    def test_maintenance_grows_with_churn(self):
        model = OverlayCostModel()
        calm = model.onehop_maintenance_bps(10_000, 0.5)
        stormy = model.onehop_maintenance_bps(10_000, 5.0)
        assert stormy == pytest.approx(10 * calm)

    def test_overlay_staleness_probability(self):
        stable = OneHopOverlay(OneHopConfig(churn=ChurnModel.stable()), seed=1)
        churny = OneHopOverlay(OneHopConfig(churn=ChurnModel.aggressive()), seed=1)
        assert stable.staleness_probability() < churny.staleness_probability()

    def test_overlay_latencies_sampled(self):
        overlay = OneHopOverlay(OneHopConfig(churn=ChurnModel.stable()), seed=2)
        latencies = overlay.lookup_latencies(lookups=200)
        assert len(latencies) == 200
        assert all(latency > 0 for latency in latencies)

    def test_compare_keys(self):
        report = OverlayCostModel().compare(10_000, 2.0)
        for key in ("onehop_state_mb", "onehop_maintenance_kbps", "multihop_lookup_latency_s"):
            assert key in report


class TestSybilAttack:
    def test_hijack_grows_with_identity_count(self):
        low = run_sybil_attack(
            SybilAttackConfig(honest_nodes=150, attacker_machines=4, identities_per_machine=5,
                              lookups=40, seed=1)
        )
        high = run_sybil_attack(
            SybilAttackConfig(honest_nodes=150, attacker_machines=4, identities_per_machine=100,
                              lookups=40, seed=1)
        )
        assert high.hijack_rate > low.hijack_rate
        assert high.identity_share > low.identity_share

    def test_targeted_attack_is_devastatingly_cheap(self):
        result = run_sybil_attack(
            SybilAttackConfig(
                honest_nodes=150,
                attacker_machines=2,
                identities_per_machine=16,
                lookups=30,
                targeted_key=key_for("victim-content"),
                seed=2,
            )
        )
        assert result.physical_share < 0.02
        assert result.hijack_rate > 0.9

    def test_amplification_exceeds_physical_share(self):
        result = run_sybil_attack(
            SybilAttackConfig(honest_nodes=150, attacker_machines=4, identities_per_machine=80,
                              lookups=40, seed=3)
        )
        assert result.amplification > 1.0

    def test_result_accounting(self):
        result = run_sybil_attack(
            SybilAttackConfig(honest_nodes=100, attacker_machines=2, identities_per_machine=10,
                              lookups=20, seed=4)
        )
        assert result.total_lookups == 20
        assert 0.0 <= result.hijack_rate <= 1.0


class TestFreeRiding:
    def test_reference_shape_reproduced(self):
        model = ContributionModel(peers=8000, free_rider_fraction=0.70)
        report = analyze_contributions(model.generate(seed=1))
        assert abs(report.free_rider_fraction - 0.70) < 0.03
        assert report.top_1pct_share > 0.25
        assert report.top_25pct_share > 0.9
        assert report.matches_reference(GNUTELLA_2000_REFERENCE)

    def test_gini_high_for_skewed_contributions(self):
        report = analyze_contributions(ContributionModel(peers=5000).generate(seed=2))
        assert report.gini > 0.7

    def test_incentives_reduce_free_riding(self):
        reports = incentive_sensitivity([0.0, 0.5, 1.0], peers=3000, seed=3)
        fractions = [report.free_rider_fraction for report in reports]
        assert fractions[0] > fractions[1] > fractions[2]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            analyze_contributions([])
        with pytest.raises(ValueError):
            ContributionModel(free_rider_fraction=1.5).generate()
        with pytest.raises(ValueError):
            incentive_sensitivity([2.0])


class TestTitForTat:
    def test_contributors_finish_faster_than_free_riders(self):
        swarm = TitForTatSwarm(SwarmConfig(leechers=40, seeds=3, file_pieces=200,
                                           free_rider_fraction=0.3), seed=1)
        result = swarm.run()
        assert result.free_rider_penalty() > 1.1

    def test_everyone_eventually_completes(self):
        swarm = TitForTatSwarm(SwarmConfig(leechers=30, seeds=3, file_pieces=150), seed=2)
        result = swarm.run()
        assert len(result.completion_rounds) == 30

    def test_seeding_collapses_after_completion(self):
        config = SwarmConfig(leechers=30, seeds=3, file_pieces=150, seed_lingering_rounds=2)
        swarm = TitForTatSwarm(config, seed=3)
        result = swarm.run()
        # Once downloads finish, almost nobody stays to seed: the remaining
        # seed population is far below the number of peers that completed.
        assert result.seeds_over_time[-1] < 0.3 * (config.leechers + config.seeds)
        assert result.post_completion_seed_ratio() < 0.7

    def test_uploads_correlate_with_downloads_for_leechers(self):
        swarm = TitForTatSwarm(SwarmConfig(leechers=40, seeds=3, file_pieces=200,
                                           free_rider_fraction=0.25), seed=4)
        result = swarm.run()
        contributor_uploads = sum(result.uploads[p] for p in result.contributors)
        free_rider_uploads = sum(result.uploads[p] for p in result.free_riders)
        assert contributor_uploads > free_rider_uploads


class TestLookupExperimentScenarios:
    def test_kad_scenario_faster_than_mainline(self):
        kad = LookupExperiment(
            LookupExperimentConfig.kad_scenario(network_size=250, lookups=60, seed=5)
        ).run()
        mainline = LookupExperiment(
            LookupExperimentConfig.mainline_scenario(network_size=250, lookups=60, seed=5)
        ).run()
        assert kad.latencies.median() < mainline.latencies.median() / 5
        assert kad.summary()["fraction_within_5s"] > 0.7

    def test_stable_network_beats_churny_network(self):
        stable = LookupExperiment(
            LookupExperimentConfig(network_size=250, lookups=60, churn=None, seed=6)
        ).run()
        churny = LookupExperiment(
            LookupExperimentConfig(network_size=250, lookups=60, churn=ChurnModel.aggressive(), seed=6)
        ).run()
        assert stable.latencies.mean() <= churny.latencies.mean()
        assert stable.failure_rate <= churny.failure_rate + 0.05
