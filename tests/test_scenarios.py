"""The scenario framework: specs, registry, adapters, runner and CLI."""

import json

import pytest

from repro.scenarios import (
    ADAPTERS,
    FAMILIES,
    SCENARIOS,
    ScenarioSpec,
    adapter_for,
    get_scenario,
    run_scenario,
    run_sweep,
    scenario_names,
)
from repro.run import main as run_main


class TestScenarioSpec:
    def test_rejects_unknown_family(self):
        with pytest.raises(ValueError, match="unknown family"):
            ScenarioSpec(name="x", family="quantum")

    def test_with_overrides_dotted_paths(self):
        spec = ScenarioSpec(name="x", family="overlay",
                            architecture={"overlay": "kad"}, topology={"size": 100})
        out = spec.with_overrides({"topology.size": 50, "seed": 9,
                                   "architecture.client_overrides.rpc_timeout": 2.0})
        assert out.topology["size"] == 50
        assert out.seed == 9
        assert out.architecture["client_overrides"] == {"rpc_timeout": 2.0}
        # The original is untouched.
        assert spec.topology["size"] == 100
        assert "client_overrides" not in spec.architecture

    def test_with_overrides_rejects_unknown_field(self):
        spec = ScenarioSpec(name="x", family="overlay")
        with pytest.raises(KeyError, match="unknown spec field"):
            spec.with_overrides({"flavor": "strawberry"})

    def test_expand_variants_outer_sweeps_inner(self):
        spec = ScenarioSpec(
            name="x", family="overlay",
            architecture={"overlay": "kad"},
            variants={"a": {"churn": "kad"}, "b": {"churn": "none"}},
            sweeps={"topology.size": [10, 20]},
        )
        points = spec.expand()
        assert [label for label, _ in points] == [
            "a, size=10", "a, size=20", "b, size=10", "b, size=20",
        ]
        assert points[0][1].churn == "kad"
        assert points[3][1].topology["size"] == 20
        assert all(not point.is_swept for _, point in points)

    def test_expand_without_axes_is_identity(self):
        spec = ScenarioSpec(name="x", family="edge")
        points = spec.expand()
        assert len(points) == 1 and points[0][0] == ""

    def test_dict_round_trip(self):
        spec = get_scenario("churn-ladder")
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec


class TestRegistry:
    def test_every_family_is_covered(self):
        covered = {SCENARIOS[name].family for name in scenario_names()}
        assert covered == set(FAMILIES)

    def test_claims_reference_the_registry(self):
        from repro.core.claims import claims_by_id

        known = set(claims_by_id())
        for name in scenario_names():
            claim = SCENARIOS[name].claim
            assert claim == "" or claim in known, (name, claim)

    def test_get_scenario_returns_copies(self):
        first = get_scenario("kad-lookup")
        first.topology["size"] = 1
        assert get_scenario("kad-lookup").topology["size"] == 400

    def test_unknown_scenario_message_lists_names(self):
        with pytest.raises(KeyError, match="known scenarios"):
            get_scenario("warp-drive")

    def test_adapter_exists_for_every_family(self):
        assert set(ADAPTERS) == set(FAMILIES)
        for family in FAMILIES:
            assert adapter_for(family).family == family


class TestRunner:
    def test_overlay_scenario_deterministic_json(self):
        overrides = {"topology.size": 80, "workload.lookups": 15}
        first = run_scenario("kad-lookup", overrides=overrides)
        second = run_scenario("kad-lookup", overrides=overrides)
        assert first.to_json() == second.to_json()
        assert first.metric("lookups") == 15.0

    def test_replicates_aggregate_mean(self):
        result = run_scenario("pos-slashing",
                              overrides={"architecture.rounds": 200}, replicates=3)
        assert [replicate.seed for replicate in result.replicates] == [1, 2, 3]
        values = [replicate.metrics["fork_open_fraction"] for replicate in result.replicates]
        assert result.metric("fork_open_fraction") == pytest.approx(sum(values) / 3)
        spread = result.spread("fork_open_fraction")
        assert spread["min"] <= spread["mean"] <= spread["max"]

    def test_seed_changes_the_outcome(self):
        overrides = {"architecture.duration_blocks": 10}
        first = run_scenario("pow-baseline", overrides=overrides, seed=1)
        second = run_scenario("pow-baseline", overrides=overrides, seed=2)
        assert first.metrics != second.metrics

    def test_sweep_points_run_in_order(self):
        results = run_sweep("pbft-consortium",
                            overrides={"duration": 0.5},
                            seed=3)
        assert len(results) == 1
        results = run_sweep(
            "pbft-consortium",
            overrides={"duration": 0.5},
        )
        assert results[0].label == ""

    def test_unknown_metric_lists_available(self):
        result = run_scenario("pos-slashing", overrides={"architecture.rounds": 100})
        with pytest.raises(KeyError, match="available"):
            result.metric("warp_factor")

    def test_architecture_overrides_do_not_collide_with_adapter_kwargs(self):
        # tx_arrival_rate and seed are passed explicitly by the adapter; an
        # architecture override for them must win, not raise a TypeError.
        result = run_scenario("pow-baseline",
                              overrides={"architecture.tx_arrival_rate": 5.0,
                                         "architecture.duration_blocks": 10})
        assert result.metric("offered_load_tps") == 5.0

    def test_workload_kind_is_validated(self):
        with pytest.raises(ValueError, match="cannot run a 'lookup' workload"):
            run_scenario("pow-baseline", overrides={"workload.kind": "lookup"})

    def test_federation_islands_follow_the_seed(self):
        # Island seeds are offsets from the run seed, so --seed re-seeds the
        # whole federation (a pinned-seed bug once made this a no-op).
        overrides = {"duration": 0.5}
        base = run_scenario("edge-federation", overrides=overrides, seed=6)
        reseeded = run_scenario("edge-federation", overrides=overrides, seed=99)
        assert base.metrics != reseeded.metrics
        assert base.to_json() == run_scenario("edge-federation",
                                              overrides=overrides, seed=6).to_json()

    def test_adapter_configs_match_hand_wiring(self):
        # The framework must reproduce a hand-wired run bit-for-bit.
        from repro.p2p.lookup import LookupExperiment, LookupExperimentConfig

        by_hand = LookupExperiment(
            LookupExperimentConfig.kad_scenario(network_size=120, lookups=20, seed=3)
        ).run().summary()
        by_framework = run_scenario(
            "kad-lookup", overrides={"topology.size": 120, "workload.lookups": 20}
        ).metrics
        for key, value in by_hand.items():
            assert by_framework[key] == pytest.approx(value, abs=1e-12), key


class TestNewScenarioModes:
    """The adapter modes behind the E1/E4/E6/E9 registry entries."""

    def test_market_concentration_prefers_preferential(self):
        trims = {"architecture.steps": 60, "architecture.arrivals_per_step": 80}
        preferential = run_scenario("market-concentration", overrides=trims)
        uniform = run_scenario(
            "market-concentration",
            overrides={**trims, "architecture.preferential_exponent": 0.0,
                       "architecture.scale_advantage": 0.0})
        assert preferential.metric("top3") > uniform.metric("top3")
        assert preferential.metric("hhi") > uniform.metric("hhi")

    def test_mining_pools_concentrate(self):
        result = run_scenario("mining-pools",
                              overrides={"architecture.miners": 400,
                                         "architecture.rounds": 60})
        assert result.metric("top6") > 0.5
        assert result.metric("nakamoto") <= 6

    def test_onehop_beats_multihop_latency_under_stable_churn(self):
        onehop = run_scenario("onehop-lookup",
                              overrides={"workload.lookups": 60})
        kad = run_scenario("kad-lookup",
                           overrides={"topology.size": 120,
                                      "workload.lookups": 30})
        assert onehop.metric("median_latency_s") < kad.metric("median_latency_s")
        assert onehop.metric("routing_staleness") < 0.01
        assert onehop.metric("membership_state_mb") == pytest.approx(2.0)

    def test_gnutella_churn_scales_sharing_availability(self):
        trims = {"topology.size": 200, "workload.lookups": 40}
        stable = run_scenario("gnutella-search", overrides=trims)
        churned = run_scenario("gnutella-search",
                               overrides={**trims, "churn": "bittorrent"})
        assert stable.metric("sharing_availability") == 1.0
        assert churned.metric("sharing_availability") == pytest.approx(0.5)
        assert stable.metric("recall") >= churned.metric("recall")
        assert stable.metric("messages_per_lookup") > 10.0

    def test_sybil_attack_hijacks_beyond_physical_share(self):
        trims = {"topology.size": 120, "workload.lookups": 25,
                 "architecture.identities_per_machine": 40}
        result = run_scenario("sybil-attack", overrides=trims)
        assert 0.0 <= result.metric("hijack_rate") <= 1.0
        # The whole point of E3: a few machines punch far above their
        # physical population share by fabricating identities.
        assert result.metric("amplification") > 1.0
        assert result.metric("sybil_identities") == pytest.approx(
            result.metric("attacker_machines") * 40)

    def test_eclipse_targets_harder_than_spread(self):
        spread, eclipse = run_sweep(
            "sybil-attack",
            overrides={"topology.size": 120, "workload.lookups": 20,
                       "architecture.identities_per_machine": 24})
        assert spread.label.startswith("spread")
        assert eclipse.label.startswith("eclipse")
        assert eclipse.metric("hijack_rate") >= spread.metric("hijack_rate")

    def test_unknown_overlay_attack_rejected(self):
        with pytest.raises(ValueError, match="unknown overlay attack"):
            run_scenario("sybil-attack",
                         overrides={"architecture.attack": "teleport"})

    def test_selfish_mining_pays_above_threshold(self):
        trims = {"architecture.blocks": 30_000}
        at_045 = run_scenario("selfish-mining",
                              overrides={**trims, "architecture.alpha": 0.45})
        assert at_045.metric("advantage") > 0.05
        assert at_045.metric("simulated_revenue") == pytest.approx(
            at_045.metric("analytic_revenue"), abs=0.02)
        below = run_scenario("selfish-mining",
                             overrides={**trims, "architecture.alpha": 0.2})
        assert below.metric("advantage") < 0.01

    def test_double_spend_success_decreases_with_confirmations(self):
        points = run_sweep("double-spend")
        successes = [point.metric("success_probability") for point in points]
        assert successes[0] == 1.0  # zero confirmations: race already lost
        assert successes == sorted(successes, reverse=True)
        assert successes[-1] < 0.1

    def test_unknown_permissionless_attack_rejected(self):
        with pytest.raises(ValueError, match="unknown permissionless attack"):
            run_scenario("double-spend",
                         overrides={"architecture.attack": "time-warp"})

    def test_overlay_scaling_hops_grow_with_size(self):
        points = run_sweep("overlay-scaling",
                           overrides={"workload.lookups": 30})
        hops = [point.metric("hops_per_lookup") for point in points]
        assert len(hops) == 4
        assert hops[-1] > hops[0]
        # The registered axis records the network preset in each point spec.
        assert all(point.spec["topology"]["network"] == "wan"
                   for point in points)

    def test_gnutella_total_failure_omits_latency_metrics(self):
        # With no object replicas placed, every query fails; latency must be
        # absent (not 0.0), so comparison tables render "-" instead of
        # ranking total failure as instant success.
        result = run_scenario(
            "gnutella-search",
            overrides={"topology.size": 100, "workload.lookups": 20,
                       "architecture.replicas_per_object": 0})
        assert result.metric("failure_rate") == 1.0
        assert "median_latency_s" not in result.metrics
        assert "mean_latency_s" not in result.metrics


class TestCli:
    def test_list(self, capsys):
        assert run_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_unknown_scenario_fails(self, capsys):
        assert run_main(["warp-drive"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_json_stdout_deterministic(self, capsys):
        argv = ["pos-slashing", "--set", "architecture.rounds=300", "--quiet", "--json", "-"]
        assert run_main(argv) == 0
        first = capsys.readouterr().out
        assert run_main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["scenario"] == "pos-slashing"
        assert payload["spec"]["architecture"]["rounds"] == 300
        assert payload["metrics"]["rounds"] == 300.0

    def test_sweep_flag_produces_a_list(self, capsys, tmp_path):
        out_path = tmp_path / "sweep.json"
        argv = ["pos-slashing", "--set", "architecture.rounds=200",
                "--sweep", "architecture.multi_vote_fraction=0.5,1.0",
                "--quiet", "--json", str(out_path)]
        assert run_main(argv) == 0
        payload = json.loads(out_path.read_text())
        assert [point["label"] for point in payload] == [
            "multi_vote_fraction=0.5", "multi_vote_fraction=1.0",
        ]

    def test_set_value_parsing(self, capsys):
        argv = ["kad-lookup", "--set", "churn=none", "--set", "topology.size=60",
                "--set", "workload.lookups=5", "--quiet", "--json", "-"]
        assert run_main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["churn"] is None
        assert payload["spec"]["topology"]["size"] == 60
