"""repro.analysis.diff: structural/numeric ResultSet comparison + CLI."""

import json
import math

import pytest

from repro.analysis.diff import (
    DiffReport,
    Tolerance,
    diff_resultsets,
    parse_tolerance,
    result_key,
    tolerance_for,
)
from repro.analysis.resultset import ResultSet
from repro.run import main as run_main
from repro.scenarios.result import ReplicateResult, ScenarioResult
from repro.scenarios.spec import ScenarioSpec


def make_result(name="unit-a", seed=1, label="", replicates=None, **metrics):
    """A ScenarioResult with a real (round-trippable) spec."""
    spec = ScenarioSpec(name=name, family="overlay",
                        topology={"size": 100}, seed=seed)
    if replicates is None:
        replicates = [ReplicateResult(seed=seed, metrics=dict(metrics))]
    return ScenarioResult(scenario=name, family="overlay", label=label,
                          spec=spec.to_dict(), replicates=replicates)


class TestTolerance:
    def test_default_is_exact(self):
        assert Tolerance().allows(1.0, 1.0)
        assert not Tolerance().allows(1.0, 1.0 + 1e-12)

    def test_relative_and_absolute_terms(self):
        assert Tolerance(rel=0.05).allows(100.0, 104.9)
        assert not Tolerance(rel=0.05).allows(100.0, 105.1)
        assert Tolerance(abs=0.5).allows(0.0, 0.4)
        assert not Tolerance(abs=0.5).allows(0.0, 0.6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Tolerance(rel=-0.1)

    def test_parse_forms(self):
        assert parse_tolerance("tps=0.05") == ("tps", Tolerance(rel=0.05))
        assert parse_tolerance("lat=abs:0.002") == ("lat", Tolerance(abs=0.002))
        assert parse_tolerance("x=rel:0.1,abs:1e-6") == (
            "x", Tolerance(rel=0.1, abs=1e-6))
        assert parse_tolerance("*=0.2")[0] == "*"

    @pytest.mark.parametrize("bad", ["tps", "tps=", "=0.1", "tps=fast",
                                     "tps=pct:0.1"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_tolerance(bad)

    def test_lookup_precedence(self):
        table = {"tps": Tolerance(rel=0.1), "*": Tolerance(rel=0.5)}
        assert tolerance_for("tps", table).rel == 0.1
        assert tolerance_for("other", table).rel == 0.5
        assert tolerance_for("other", {}) == Tolerance()


class TestStructuralDiff:
    def test_identical_sets(self):
        a = ResultSet([make_result(tps=5.0)])
        b = ResultSet([make_result(tps=5.0)])
        report = diff_resultsets(a, b)
        assert report.identical
        assert [unit.status for unit in report.units] == ["unchanged"]
        assert "identical" in report.summary()

    def test_changed_metric_detected_and_tolerance_respected(self):
        a = ResultSet([make_result(tps=100.0)])
        b = ResultSet([make_result(tps=104.0)])
        drifted = diff_resultsets(a, b)
        assert not drifted.identical
        (delta,) = drifted.changed[0].changed_metrics
        assert delta.metric == "tps"
        assert delta.abs_delta == pytest.approx(4.0)
        assert delta.rel_delta == pytest.approx(0.04)
        within = diff_resultsets(a, b, tolerances={"tps": Tolerance(rel=0.05)})
        assert within.identical

    def test_added_and_removed_units(self):
        a = ResultSet([make_result("only-a", tps=1.0),
                       make_result("both", tps=2.0)])
        b = ResultSet([make_result("both", tps=2.0),
                       make_result("only-b", tps=3.0)])
        report = diff_resultsets(a, b)
        assert [unit.scenario for unit in report.removed] == ["only-a"]
        assert [unit.scenario for unit in report.added] == ["only-b"]
        assert [unit.scenario for unit in report.unchanged] == ["both"]

    def test_seed_flip_reports_exactly_the_affected_unit_as_changed(self):
        a = ResultSet([make_result("x", seed=1, tps=5.0),
                       make_result("y", seed=1, tps=7.0)])
        b = ResultSet([make_result("x", seed=1, tps=5.0),
                       make_result("y", seed=2, tps=7.3)])
        report = diff_resultsets(a, b)
        assert not report.added and not report.removed
        assert [unit.scenario for unit in report.changed] == ["y"]
        assert report.changed[0].spec_changed
        assert "->" in report.changed[0].key

    def test_metric_set_drift_is_a_change(self):
        a = ResultSet([make_result(tps=1.0, extra=2.0)])
        b = ResultSet([make_result(tps=1.0)])
        report = diff_resultsets(a, b)
        assert report.changed[0].metrics_only_in_a == ["extra"]

    def test_reproduced_nan_is_not_drift(self):
        a = ResultSet([make_result(tps=float("nan"))])
        b = ResultSet([make_result(tps=float("nan"))])
        assert diff_resultsets(a, b).identical

    def test_zero_baseline_rel_delta_is_none(self):
        a = ResultSet([make_result(tps=0.0)])
        b = ResultSet([make_result(tps=1.0)])
        (delta,) = diff_resultsets(a, b).changed[0].changed_metrics
        assert delta.rel_delta is None

    def test_foreign_specs_fall_back_to_raw_hash(self):
        foreign = ScenarioResult(
            scenario="alien", family="overlay", label="",
            spec={"not": "a-scenario-spec"},
            replicates=[ReplicateResult(seed=0, metrics={"m": 1.0})])
        key = result_key(foreign)
        assert len(key) == 16
        report = diff_resultsets(ResultSet([foreign]), ResultSet([foreign]))
        assert report.identical


class TestCiOverlap:
    def _replicated(self, values):
        return make_result(replicates=[
            ReplicateResult(seed=i, metrics={"tps": value})
            for i, value in enumerate(values)])

    def test_disjoint_intervals_flagged(self):
        a = ResultSet([self._replicated([10.0, 10.1, 10.2])])
        b = ResultSet([self._replicated([20.0, 20.1, 20.2])])
        report = diff_resultsets(a, b,
                                 tolerances={"*": Tolerance(rel=10.0)})
        assert report.identical  # tolerance swallows the mean drift...
        assert len(report.ci_failures) == 1  # ...but the CIs are disjoint
        ((unit, delta),) = report.ci_failures
        assert delta.ci_overlap is False

    def test_overlapping_intervals_pass(self):
        a = ResultSet([self._replicated([10.0, 12.0, 14.0])])
        b = ResultSet([self._replicated([11.0, 13.0, 15.0])])
        report = diff_resultsets(a, b, tolerances={"*": Tolerance(rel=10.0)})
        assert report.ci_failures == []
        assert report.units[0].deltas[0].ci_overlap is True

    def test_single_replicate_has_no_verdict(self):
        a = ResultSet([make_result(tps=1.0)])
        b = ResultSet([make_result(tps=1.0)])
        assert diff_resultsets(a, b).units[0].deltas[0].ci_overlap is None


class TestReport:
    def test_json_round_trip_and_schema(self):
        a = ResultSet([make_result("x", tps=1.0)])
        b = ResultSet([make_result("y", tps=2.0)])
        report = diff_resultsets(a, b, tolerances={"tps": Tolerance(rel=0.1)},
                                 a_label="left", b_label="right")
        doc = json.loads(report.to_json())
        assert doc["schema"] == "diffreport/v1"
        assert doc["a"] == "left" and doc["b"] == "right"
        assert doc["summary"]["added"] == 1
        assert doc["summary"]["removed"] == 1
        assert doc["tolerances"]["tps"] == {"rel": 0.1, "abs": 0.0}
        assert report.to_json() == report.to_json()

    def test_table_lists_drift(self):
        a = ResultSet([make_result(tps=1.0)])
        b = ResultSet([make_result(tps=2.0)])
        rendered = diff_resultsets(a, b).table().render()
        assert "tps" in rendered and "DRIFT" in rendered


class TestCliDiff:
    """The acceptance path: trimmed figure1 saved twice, then a seed flip."""

    FIGURE1 = ["study", "figure1", "--quiet", "--members", "bitcoin,pbft",
               "--set", "bitcoin.architecture.duration_blocks=12",
               "--set", "pbft.duration=0.5"]

    def save(self, tmp_path, name, *extra):
        argv = self.FIGURE1 + list(extra) + ["--runs-dir", str(tmp_path),
                                             "--save", name]
        assert run_main(argv) == 0

    def test_same_seed_runs_diff_clean(self, tmp_path, capsys):
        self.save(tmp_path, "night-1")
        self.save(tmp_path, "night-2")
        assert run_main(["diff", "night-1", "night-2",
                         "--runs-dir", str(tmp_path)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_member_seed_flip_reports_exactly_that_member(self, tmp_path, capsys):
        self.save(tmp_path, "base")
        self.save(tmp_path, "flipped", "--set", "bitcoin.seed=9")
        code = run_main(["diff", "base", "flipped", "--quiet",
                         "--json", str(tmp_path / "report.json"),
                         "--runs-dir", str(tmp_path)])
        capsys.readouterr()
        assert code == 1
        doc = json.loads((tmp_path / "report.json").read_text())
        changed = [unit for unit in doc["units"]
                   if unit["status"] == "changed"]
        assert [unit["label"] for unit in changed] == ["bitcoin"]
        assert changed[0]["spec_changed"] is True
        assert doc["summary"]["added"] == 0
        assert doc["summary"]["removed"] == 0
        unchanged = [unit["label"] for unit in doc["units"]
                     if unit["status"] == "unchanged"]
        assert unchanged == ["pbft"]

    def test_file_and_stdin_operands(self, tmp_path, capsys, monkeypatch):
        import io

        payload_a = ResultSet([make_result(tps=10.0)]).to_json()
        payload_b = ResultSet([make_result(tps=10.4)]).to_json()
        file_a = tmp_path / "a.json"
        file_a.write_text(payload_a)
        monkeypatch.setattr("sys.stdin", io.StringIO(payload_b))
        assert run_main(["diff", str(file_a), "-", "--quiet",
                         "--runs-dir", str(tmp_path / "store")]) == 1
        monkeypatch.setattr("sys.stdin", io.StringIO(payload_b))
        assert run_main(["diff", str(file_a), "-", "--quiet",
                         "--tol", "*=0.05",
                         "--runs-dir", str(tmp_path / "store")]) == 0

    def test_strict_ci_escalates_warnings(self, tmp_path):
        def replicated(values):
            return make_result(replicates=[
                ReplicateResult(seed=i, metrics={"tps": value})
                for i, value in enumerate(values)])

        file_a = tmp_path / "a.json"
        file_b = tmp_path / "b.json"
        file_a.write_text(ResultSet([replicated([10.0, 10.1, 10.2])]).to_json())
        file_b.write_text(ResultSet([replicated([20.0, 20.1, 20.2])]).to_json())
        argv = ["diff", str(file_a), str(file_b), "--quiet",
                "--tol", "*=10.0", "--runs-dir", str(tmp_path / "store")]
        assert run_main(argv) == 0  # warn-only by default
        assert run_main(argv + ["--strict-ci"]) == 1

    def test_sweep_list_json_accepted(self, tmp_path):
        results = [make_result(tps=1.0).to_dict()]
        path = tmp_path / "list.json"
        path.write_text(json.dumps(results))
        assert run_main(["diff", str(path), str(path), "--quiet",
                         "--runs-dir", str(tmp_path / "store")]) == 0
