"""ResultSet: the query surface over collections of scenario results."""

import json

import pytest

from repro.analysis.resultset import ResultSet, axis_value
from repro.scenarios.result import ReplicateResult, ScenarioResult


def make_result(scenario, family, metrics, label="", claim="", spec=None,
                replicates=None):
    """A synthetic ScenarioResult (no simulation involved)."""
    spec = dict(spec or {})
    spec.setdefault("claim", claim)
    if replicates is None:
        replicates = [ReplicateResult(seed=1, metrics=dict(metrics))]
    return ScenarioResult(scenario=scenario, family=family, label=label,
                          spec=spec, replicates=replicates)


@pytest.fixture
def sample():
    return ResultSet([
        make_result("pow-baseline", "permissionless", {"throughput_tps": 4.5},
                    label="bitcoin", claim="E7",
                    spec={"architecture": {"protocol": "bitcoin"}}),
        make_result("pow-ethereum", "permissionless", {"throughput_tps": 15.0},
                    label="ethereum", claim="E7",
                    spec={"architecture": {"protocol": "ethereum"}}),
        make_result("pbft-consortium", "consensus",
                    {"throughput_tps": 3000.0, "mean_latency_s": 0.2},
                    label="pbft", claim="E15",
                    spec={"architecture": {"replicas": 4}}),
        make_result("pbft-consortium", "consensus",
                    {"throughput_tps": 2500.0, "mean_latency_s": 0.4},
                    label="pbft-large", claim="E15",
                    spec={"architecture": {"replicas": 13}}),
    ], name="sample", description="a synthetic comparison")


class TestAxes:
    def test_attribute_spec_and_metric_axes(self, sample):
        result = sample[0]
        assert axis_value(result, "scenario") == "pow-baseline"
        assert axis_value(result, "family") == "permissionless"
        assert axis_value(result, "label") == "bitcoin"
        assert axis_value(result, "claim") == "E7"
        assert axis_value(result, "architecture.protocol") == "bitcoin"
        assert axis_value(result, "spec.architecture.protocol") == "bitcoin"
        assert axis_value(result, "throughput_tps") == 4.5
        assert axis_value(result, "no.such.axis") is None
        assert axis_value(result, lambda r: r.scenario.upper()) == "POW-BASELINE"

    def test_axis_values_unique_in_order(self, sample):
        assert sample.axis_values("family") == ["permissionless", "consensus"]
        assert sample.axis_values("architecture.replicas") == [None, 4, 13]


class TestQuerying:
    def test_filter_by_equality_membership_and_predicate(self, sample):
        assert len(sample.filter(family="consensus")) == 2
        assert sample.filter(scenario="pow-baseline").labels() == ["bitcoin"]
        assert sample.filter(family=["permissionless", "consensus"]).labels() == \
            sample.labels()
        assert sample.filter(**{"architecture.replicas": 13}).labels() == ["pbft-large"]
        fast = sample.filter(lambda r: r.metrics["throughput_tps"] > 100)
        assert fast.labels() == ["pbft", "pbft-large"]

    def test_filter_keeps_name_and_returns_resultset(self, sample):
        subset = sample.filter(family="consensus")
        assert isinstance(subset, ResultSet)
        assert subset.name == "sample"

    def test_only(self, sample):
        assert sample.only(label="bitcoin").scenario == "pow-baseline"
        with pytest.raises(KeyError, match="found 0"):
            sample.only(label="nope")
        with pytest.raises(KeyError, match="found 2"):
            sample.only(family="consensus")

    def test_group_by(self, sample):
        groups = sample.group_by("family")
        assert list(groups) == ["permissionless", "consensus"]
        assert groups["consensus"].labels() == ["pbft", "pbft-large"]
        assert all(isinstance(group, ResultSet) for group in groups.values())

    def test_concatenation(self, sample):
        doubled = sample + sample
        assert len(doubled) == 2 * len(sample)
        assert doubled.name == "sample"


class TestAggregation:
    def test_aggregate_pools_replicates(self, sample):
        merged = sample.aggregate(by="scenario")
        assert merged.scenarios() == ["pow-baseline", "pow-ethereum", "pbft-consortium"]
        pbft = merged.only(scenario="pbft-consortium")
        assert len(pbft.replicates) == 2
        assert pbft.metric("throughput_tps") == pytest.approx(2750.0)
        assert pbft.family == "consensus"

    def test_aggregate_mixed_family_group(self, sample):
        merged = sample.aggregate(by=lambda result: "all")
        assert len(merged) == 1
        combined = merged[0]
        assert combined.label == "all"
        assert combined.family == "mixed"
        assert len(combined.replicates) == 4


class TestStatistics:
    @pytest.fixture
    def replicated(self):
        replicates = [ReplicateResult(seed=s, metrics={"m": float(v)})
                      for s, v in zip(range(5), [10, 11, 9, 12, 10])]
        return ResultSet([
            ScenarioResult(scenario="x", family="consensus", label="x",
                           spec={}, replicates=replicates),
        ])

    def test_ci95_brackets_mean_and_is_deterministic(self, replicated):
        result = replicated[0]
        low, high = result.ci95("m")
        assert min(r.metrics["m"] for r in result.replicates) <= low
        assert low <= result.metric("m") <= high
        assert high <= max(r.metrics["m"] for r in result.replicates)
        assert result.ci95("m") == replicated[0].ci95("m")
        assert replicated.ci95("m") == {"x": (low, high)}

    def test_ci95_disambiguates_duplicate_labels(self):
        def result(value):
            return ScenarioResult(
                scenario="pow-baseline", family="permissionless", spec={},
                replicates=[ReplicateResult(seed=s, metrics={"m": value + s})
                            for s in range(3)])

        results = ResultSet([result(10.0), result(20.0)])
        intervals = results.ci95("m")
        assert list(intervals) == ["pow-baseline", "pow-baseline#2"]
        assert intervals["pow-baseline"] != intervals["pow-baseline#2"]

    def test_ci95_unknown_metric(self, replicated):
        with pytest.raises(KeyError):
            replicated[0].ci95("warp_factor")

    def test_metrics_property_is_cached(self, replicated):
        result = replicated[0]
        assert result.metrics is result.metrics

    def test_single_result_table_gains_ci_column(self, replicated):
        table = replicated[0].table()
        assert "ci95" in table.columns
        cell = table.as_dicts()[0]["ci95"]
        assert cell.startswith("[") and cell.endswith("]")


class TestRendering:
    def test_rows(self, sample):
        rows = sample.rows(metrics=["throughput_tps"])
        assert rows[0] == {"label": "bitcoin", "throughput_tps": 4.5}
        assert len(rows) == len(sample)

    def test_to_table_defaults_to_common_metrics(self, sample):
        table = sample.to_table()
        assert table.columns == ["label", "throughput_tps"]
        assert table.column("label") == sample.labels()

    def test_to_table_fills_missing_metrics(self, sample):
        table = sample.to_table(metrics=["throughput_tps", "mean_latency_s"])
        rows = table.as_dicts()
        assert rows[0]["mean_latency_s"] == "-"
        assert rows[2]["mean_latency_s"] != "-"

    def test_to_table_ci_columns(self):
        replicates = [ReplicateResult(seed=s, metrics={"m": float(s)})
                      for s in range(4)]
        results = ResultSet([ScenarioResult(scenario="x", family="consensus",
                                            label="x", spec={},
                                            replicates=replicates)])
        table = results.to_table(metrics=["m"])
        assert table.columns == ["label", "m", "m ci95"]
        # A single-replicate result renders the interval cell as "-".
        single = ResultSet([ScenarioResult(scenario="y", family="consensus",
                                           label="y", spec={},
                                           replicates=replicates[:1])])
        assert single.to_table(metrics=["m"], ci=True).as_dicts()[0]["m ci95"] == "-"

    def test_pivot(self, sample):
        table = sample.pivot(rows="family", cols="claim", metric="throughput_tps")
        rows = {row["family"]: row for row in table.as_dicts()}
        assert set(table.columns) == {"family", "E7", "E15"}
        assert rows["consensus"]["E7"] == "-"
        assert float(rows["consensus"]["E15"]) == pytest.approx(2750.0, rel=1e-3)
        assert float(rows["permissionless"]["E7"]) == pytest.approx(9.75)


class TestSerialisation:
    def test_json_round_trip_and_determinism(self, sample):
        payload = sample.to_json()
        assert payload == sample.to_json()
        restored = ResultSet.from_json(payload)
        assert restored.to_json() == payload
        assert restored.labels() == sample.labels()
        assert restored[0].metrics == sample[0].metrics
        data = json.loads(payload)
        assert data["name"] == "sample"
        assert len(data["results"]) == len(sample)

    def test_scenario_result_from_dict_round_trip(self, sample):
        result = sample[2]
        clone = ScenarioResult.from_dict(result.to_dict())
        assert clone == result
        assert clone.metrics == result.metrics
