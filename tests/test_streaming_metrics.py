"""Streaming metrics: sketch-vs-exact agreement, memory bounds, Sample fixes.

The :class:`repro.sim.metrics.StreamingSample` sketch backs the
``metrics: streaming`` scenario knob, and the ``sketch`` tolerance
profile of ``repro-run diff`` encodes exactly how far its numbers may
sit from the exact list-backed :class:`Sample` over the *same*
trajectory.  These tests pin both sides of that contract: percentiles
within the profile's 2.5% allowance across distribution shapes and
sizes, moment statistics exact, memory flat in stream length, and the
batched/cached ``Sample`` fast paths identical to the naive ones.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.diff import (
    TOLERANCE_PROFILES,
    Tolerance,
    tolerance_for,
    tolerance_profile,
)
from repro.sim.metrics import (
    SAMPLE_MODES,
    MetricsRegistry,
    Sample,
    StreamingSample,
    make_sample,
)

#: The relative percentile slack the ``sketch`` diff profile promises
#: (sketch error + rank-interpolation discreteness); the distribution
#: grid below asserts the sketch actually stays inside it.
PROFILE_REL = 0.025

DISTRIBUTIONS = {
    "uniform": lambda rng: rng.uniform(0.1, 10.0),
    "exponential": lambda rng: rng.expovariate(1.0 / 3.0),
    "lognormal": lambda rng: rng.lognormvariate(0.0, 1.0),
    "pareto": lambda rng: 0.5 * (rng.paretovariate(2.5)),
}


def draw(distribution, size, seed=7):
    rng = random.Random(seed)
    sampler = DISTRIBUTIONS[distribution]
    return [sampler(rng) for _ in range(size)]


class TestSketchVsExactAgreement:
    @pytest.mark.parametrize("distribution", sorted(DISTRIBUTIONS))
    @pytest.mark.parametrize("size", [1000, 10_000])
    def test_percentiles_within_declared_tolerance(self, distribution, size):
        """At the stream lengths streaming mode exists for (10^3+), the
        sketched percentiles sit inside the ``sketch`` profile allowance
        of the exact interpolated ones.  (At a few hundred observations
        rank-interpolation discreteness dominates the sketch error and
        there is no reason to be streaming in the first place.)"""
        values = draw(distribution, size)
        exact, sketch = Sample(), StreamingSample()
        exact.extend(values)
        sketch.extend(values)
        for q in (10, 50, 90, 99):
            reference = exact.percentile(q)
            assert sketch.percentile(q) == pytest.approx(
                reference, rel=PROFILE_REL), (distribution, size, q)

    @pytest.mark.parametrize("distribution", sorted(DISTRIBUTIONS))
    def test_moment_statistics_are_exact(self, distribution):
        values = draw(distribution, 5000)
        exact, sketch = Sample(), StreamingSample()
        exact.extend(values)
        sketch.extend(values)
        assert sketch.count() == exact.count()
        assert sketch.total() == pytest.approx(exact.total(), rel=1e-12)
        assert sketch.minimum() == exact.minimum()
        assert sketch.maximum() == exact.maximum()
        assert sketch.mean() == pytest.approx(exact.mean(), rel=1e-9)
        assert sketch.stdev() == pytest.approx(exact.stdev(), rel=1e-9)

    def test_fraction_below_tracks_exact(self):
        values = draw("lognormal", 10_000)
        exact, sketch = Sample(), StreamingSample()
        exact.extend(values)
        sketch.extend(values)
        for threshold in (0.5, 1.0, 2.0, 5.0):
            assert sketch.fraction_below(threshold) == pytest.approx(
                exact.fraction_below(threshold), abs=0.02)

    def test_mixed_sign_and_zero_stream(self):
        values = [-4.0, -1.0, 0.0, 0.0, 1.0, 2.0, 8.0]
        sketch = StreamingSample()
        sketch.extend(values)
        assert sketch.minimum() == -4.0
        assert sketch.maximum() == 8.0
        assert sketch.percentile(0) == -4.0
        assert sketch.percentile(100) == 8.0
        # The two zeros sit at ranks 2-3 of 7: the median is exactly 0.
        assert sketch.median() == 0.0
        assert sketch.fraction_below(0.0) == pytest.approx(2 / 7)

    def test_summary_has_the_same_keys(self):
        values = draw("uniform", 500)
        exact, sketch = Sample(), StreamingSample()
        exact.extend(values)
        sketch.extend(values)
        assert sketch.summary().keys() == exact.summary().keys()
        assert sketch.summary()["count"] == exact.summary()["count"]

    def test_empty_sketch_mirrors_empty_sample(self):
        exact, sketch = Sample(), StreamingSample()
        assert sketch.summary() == exact.summary()
        assert sketch.cdf() == [] == exact.cdf()
        assert sketch.fraction_below(1.0) == 0.0

    def test_cdf_is_monotone_and_ends_at_one(self):
        sketch = StreamingSample()
        sketch.extend(draw("exponential", 2000))
        points = sketch.cdf()
        values = [value for value, _ in points]
        fractions = [fraction for _, fraction in points]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    @given(values=st.lists(st.floats(min_value=1e-3, max_value=1e6),
                           min_size=1, max_size=300),
           q=st.integers(min_value=0, max_value=100))
    @settings(max_examples=200, deadline=None)
    def test_percentile_lands_on_a_nearby_order_statistic(self, values, q):
        """Any quantile is within the sketch error of the order statistic
        bracketing the requested rank (the DDSketch guarantee)."""
        sketch = StreamingSample()
        sketch.extend(values)
        ordered = sorted(values)
        rank = (q / 100.0) * (len(ordered) - 1)
        bracket = {ordered[math.floor(rank)], ordered[math.ceil(rank)]}
        reported = sketch.percentile(q)
        assert any(abs(reported - x) <= sketch.relative_error * abs(x) + 1e-12
                   for x in bracket)


class TestStreamingMemory:
    def test_bucket_count_is_flat_in_stream_length(self):
        rng = random.Random(11)
        sketch = StreamingSample()
        for _ in range(10_000):
            sketch.observe(rng.lognormvariate(0.0, 1.0))
        early = sketch.bucket_count()
        for _ in range(190_000):
            sketch.observe(rng.lognormvariate(0.0, 1.0))
        # 20x the observations, far from 20x the sketch: buckets only
        # appear when a draw lands outside the covered value range, and
        # the lognormal's range grows like sqrt(log n).
        assert sketch.count() == 200_000
        assert sketch.bucket_count() < 2 * early
        assert sketch.bucket_count() <= sketch.max_buckets

    def test_collapse_bounds_buckets_and_keeps_the_tail_sharp(self):
        sketch = StreamingSample(max_buckets=8)
        values = [10.0 ** exponent for exponent in range(20)]
        sketch.extend(values)
        assert sketch.bucket_count() <= 8
        assert sketch.count() == 20
        # Collapse merges the *low*-magnitude buckets; the tail keeps
        # full resolution and the exact envelope stays exact.
        assert sketch.maximum() == 1e19
        assert sketch.percentile(100) == 1e19
        assert sketch.percentile(95) == pytest.approx(1e18, rel=PROFILE_REL)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            StreamingSample(relative_error=0.0)
        with pytest.raises(ValueError):
            StreamingSample(relative_error=1.5)
        with pytest.raises(ValueError):
            StreamingSample(max_buckets=4)


class TestSampleFastPaths:
    def test_extend_matches_observe_loop(self):
        batched, looped = Sample(), Sample()
        values = draw("uniform", 1000)
        batched.extend(values)
        for value in values:
            looped.observe(value)
        assert batched.values == looped.values
        assert batched.summary() == looped.summary()

    def test_extend_accepts_a_generator(self):
        sample = Sample()
        sample.extend(value * 0.5 for value in range(10))
        assert sample.count() == 10
        assert sample.maximum() == 4.5

    def test_sorted_cache_survives_summary_and_invalidates_on_write(self):
        sample = Sample()
        sample.extend([3.0, 1.0, 2.0])
        assert sample.median() == 2.0
        assert sample._ordered() is sample._ordered()  # cached between reads
        sample.observe(0.0)
        assert sample.median() == 1.5
        sample.extend([10.0, 11.0])
        assert sample.percentile(100) == 11.0

    def test_sorted_cache_detects_direct_appends(self):
        sample = Sample()
        sample.extend([2.0, 1.0])
        assert sample.median() == 1.5
        # Legacy callers append to .values directly; the length guard
        # must still spot the new observation.
        sample.values.append(0.0)
        assert sample.median() == 1.0


class TestModeSelection:
    def test_make_sample_modes(self):
        assert isinstance(make_sample("x", "exact"), Sample)
        assert isinstance(make_sample("x", "streaming"), StreamingSample)
        with pytest.raises(ValueError):
            make_sample("x", "approximate")

    def test_registry_mode_controls_sample_type(self):
        exact = MetricsRegistry()
        streaming = MetricsRegistry(mode="streaming")
        assert isinstance(exact.sample("latency"), Sample)
        assert isinstance(streaming.sample("latency"), StreamingSample)

    def test_registry_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            MetricsRegistry(mode="bogus")

    def test_registry_snapshot_covers_streaming_samples(self):
        registry = MetricsRegistry(mode="streaming")
        registry.sample("latency").extend([1.0, 2.0, 3.0])
        assert registry.snapshot()["samples"]["latency"] == pytest.approx(2.0)

    def test_sample_modes_is_the_authoritative_list(self):
        assert SAMPLE_MODES == ("exact", "streaming")


class TestToleranceProfiles:
    def test_glob_resolution_order(self):
        tolerances = {
            "mean_latency_s": Tolerance(rel=0.01),
            "p9?_latency_s": Tolerance(rel=0.10),
            "*_latency_s": Tolerance(rel=0.20),
            "*": Tolerance(rel=0.30),
        }
        # Exact name first, then globs in declaration order, then "*".
        assert tolerance_for("mean_latency_s", tolerances).rel == 0.01
        assert tolerance_for("p90_latency_s", tolerances).rel == 0.10
        assert tolerance_for("median_latency_s", tolerances).rel == 0.20
        assert tolerance_for("failure_rate", tolerances).rel == 0.30

    def test_star_resolves_last_regardless_of_position(self):
        tolerances = {"*": Tolerance(rel=0.5), "p99_latency_s": Tolerance(rel=0.1)}
        assert tolerance_for("p99_latency_s", tolerances).rel == 0.1

    def test_unmatched_metric_without_star_is_exact(self):
        assert tolerance_for("tps", {"*_latency_s": Tolerance(rel=0.2)}) \
            == Tolerance()

    def test_sketch_profile_shape(self):
        profile = tolerance_profile("sketch")
        assert tolerance_for("median_latency_s", profile).rel == \
            pytest.approx(PROFILE_REL)
        # Means are exact in both modes; only float-summation slack.
        assert tolerance_for("mean_latency_s", profile).rel <= 1e-9
        assert tolerance_for("fraction_within_5s", profile).abs == \
            pytest.approx(0.02)
        # Anything not latency-derived must agree exactly under "sketch".
        assert tolerance_for("failure_rate", profile) == Tolerance()

    def test_profiles_are_copied_not_shared(self):
        profile = tolerance_profile("latency")
        profile["p99_latency_s"] = Tolerance(rel=9.0)
        assert TOLERANCE_PROFILES["latency"]["p99_latency_s"].rel != 9.0

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError, match="unknown tolerance profile"):
            tolerance_profile("nope")


class TestStreamingEndToEnd:
    def test_sketch_profile_accepts_streaming_vs_exact_run(self):
        """A streaming-metrics run of the same trajectory diffs clean
        against the exact run under ``--profile sketch`` — the exact
        contract the profile was written for."""
        from repro.analysis.diff import diff_resultsets
        from repro.scenarios.runner import run_sweep

        overrides = {"topology.size": 2000, "workload.lookups": 800}
        exact = run_sweep("kademlia-churn-100k",
                          overrides={**overrides, "metrics": "exact"})
        streaming = run_sweep("kademlia-churn-100k",
                              overrides={**overrides, "metrics": "streaming"})
        strict = diff_resultsets(exact, streaming)
        profiled = diff_resultsets(exact, streaming,
                                   tolerances=tolerance_profile("sketch"))
        # The metrics knob is observational (same trajectory), so the two
        # runs pair as one unit; the strict diff sees the sketched
        # percentiles move, the profile absorbs exactly that.
        assert not strict.identical
        assert any(unit.changed_metrics for unit in strict.units)
        assert profiled.identical
