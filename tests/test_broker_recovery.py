"""Broker durability and run lifecycle: recovery, re-attach, retirement.

Three layers, mirroring the rest of the distributed suite:

- **queue level** (no sockets): journal recovery semantics — a lease in
  flight at the crash comes back pending *uncharged*, consumed retry
  budget survives, settled results replay on re-attach; plus the run
  lifecycle fixes (retire-after-done, cancel-drain accounting, the
  attach-epoch guard that stops a zombie stream cancelling a re-attached
  run, orphan sweeping).
- **server level** (sockets, in-process): an idle submit stream ticks
  instead of dying, a client that reconnects and re-submits the same run
  id re-attaches and is replayed every settled event, a worker whose
  lease was reaped learns it from the heartbeat-ack and abandons the
  attempt.
- **end to end**: a real ``repro-broker`` subprocess is SIGKILLed
  mid-run and restarted on the same journal; the client rides it out and
  the assembled study is byte-identical to the committed figure1 golden,
  with the retired run's journal garbage-collected.  A soak loop pushes
  twenty studies through ``repro-serve`` and checks nothing leaks.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.distributed import (
    BrokerQueue,
    BrokerServer,
    DistributedBackend,
    FrameError,
    JournalDir,
    Worker,
)
from repro.distributed.broker import policy_to_dict
from repro.distributed.protocol import connect, recv_frame, send_frame
from repro.distributed.service import ServiceServer
from repro.scenarios import FaultPlan, FaultSpec, JobPolicy, compile_study
from repro.scenarios.goldens import STUDY_TRIMS

from test_execution import FIGURE1_TRIMS

GOLDEN_FIGURE1 = Path(__file__).parent / "goldens" / "study-figure1.json"


def _job(key, seed=1, scenario="s"):
    return {"key": key, "spec": {"name": scenario}, "seed": seed,
            "scenario": scenario}


def _wire(job):
    return {"key": job.key, "spec": job.spec.to_dict(), "seed": job.seed,
            "scenario": job.spec.name}


def _drain_until(events, kind):
    for _ in range(100):
        event = events.get(timeout=10.0)
        if event["type"] == kind:
            return event
    raise AssertionError(f"no {kind!r} event arrived")


def _wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


# ----------------------------------------------------------------------
# Queue-level journal recovery
# ----------------------------------------------------------------------
class TestQueueRecovery:
    def test_lost_lease_requeued_uncharged_and_results_replayed(
            self, tmp_path):
        journal_dir = JournalDir(tmp_path / "journal")
        crashed = BrokerQueue(journal=journal_dir)
        crashed.submit("r", [_job("a"), _job("b")],
                       JobPolicy(max_retries=0))
        first = crashed.lease("w")
        assert first["key"] == "a"
        crashed.complete(first["lease"], {"m": 0.5})
        assert crashed.lease("w")["key"] == "b"  # in flight at the crash

        queue = BrokerQueue(journal=journal_dir)  # the restarted broker
        assert queue.recover() == ["r"]
        grant = queue.lease("w2", wait_s=2.0)
        # Same attempt number even under a zero-retry policy: the lost
        # lease never charged the budget.
        assert grant["key"] == "b" and grant["attempt"] == 1
        # The settled job is not re-dispatched...
        assert queue.lease("w2", wait_s=0.0)["type"] == "idle"
        # ...its journaled metrics replay on re-attach instead.
        events = queue.attach("r")
        replayed = events.get(timeout=2.0)
        assert replayed["type"] == "job-done" and replayed["key"] == "a"
        assert replayed["metrics"] == {"m": 0.5}
        queue.complete(grant["lease"], {"m": 1.5})
        assert _drain_until(events, "run-done")["completed"] == 2

    def test_consumed_retry_budget_survives_the_crash(self, tmp_path):
        journal_dir = JournalDir(tmp_path / "journal")
        crashed = BrokerQueue(journal=journal_dir)
        crashed.submit("r", [_job("a")],
                       JobPolicy(max_retries=2, backoff_base_s=0.0))
        for _ in range(2):
            grant = crashed.lease("w", wait_s=2.0)
            crashed.fail(grant["lease"], "exception", "boom")

        queue = BrokerQueue(journal=journal_dir)
        assert queue.recover() == ["r"]
        grant = queue.lease("w", wait_s=2.0)
        assert grant["attempt"] == 3  # two charges replayed
        queue.fail(grant["lease"], "exception", "boom")
        events = queue.attach("r")
        failed = _drain_until(events, "job-failed")
        assert failed["failure"]["attempts"] == 3

    def test_cancelled_journal_is_discarded_on_recover(self, tmp_path):
        journal_dir = JournalDir(tmp_path / "journal")
        journal = journal_dir.open_run("dead")
        journal.append({"type": "submit", "run": "dead", "order": 0,
                        "policy": {}, "jobs": [_job("a")]})
        journal.append({"type": "cancel"})
        journal.close()
        queue = BrokerQueue(journal=journal_dir)
        assert queue.recover() == []
        assert not journal_dir.path_for("dead").exists()

    def test_recover_without_a_journal_is_a_noop(self):
        assert BrokerQueue().recover() == []

    def test_run_order_resumes_past_recovered_runs(self, tmp_path):
        journal_dir = JournalDir(tmp_path / "journal")
        crashed = BrokerQueue(journal=journal_dir)
        crashed.submit("old", [_job("a")], JobPolicy())
        queue = BrokerQueue(journal=journal_dir)
        queue.recover()
        queue.submit("new", [_job("b")], JobPolicy())
        # The recovered run keeps its dispatch priority over the new one.
        assert queue.lease("w")["key"] == "a"
        assert queue.lease("w")["key"] == "b"


# ----------------------------------------------------------------------
# Run lifecycle (the satellite fixes)
# ----------------------------------------------------------------------
class TestRunLifecycle:
    def test_retire_only_after_run_done(self, tmp_path):
        journal_dir = JournalDir(tmp_path / "journal")
        queue = BrokerQueue(journal=journal_dir)
        queue.submit("r", [_job("a")], JobPolicy())
        assert queue.retire("r") is False  # still open: refuse
        assert journal_dir.path_for("r").exists()
        grant = queue.lease("w")
        queue.complete(grant["lease"], {"m": 1.0})
        assert queue.retire("r") is True
        assert not queue.has_run("r")  # the _runs/_run_order leak fix
        assert not journal_dir.path_for("r").exists()
        assert queue.retire("r") is False  # idempotent on unknown runs

    def test_cancel_drains_with_full_accounting(self):
        queue = BrokerQueue()
        events = queue.submit("r", [_job("a"), _job("b"), _job("c")],
                              JobPolicy())
        leased = queue.lease("w")  # a is in flight when the run dies
        queue.cancel("r")
        done = _drain_until(events, "run-done")
        # Every drained job is accounted: nothing hangs at open_jobs > 0.
        assert done["completed"] == 0 and done["failed"] == 3
        assert not queue.has_run("r")  # cancelled + drained => retired
        # The next lease flushes the dead heap entries and finds nothing.
        assert queue.lease("w", wait_s=0.0)["type"] == "idle"
        assert queue.stats()["queued"] == 0
        # The revoked lease's late report is dropped, not resurrected.
        assert queue.complete(leased["lease"], {"m": 1.0}) is False

    def test_stale_epoch_cannot_cancel_a_reattached_run(self):
        queue = BrokerQueue()
        queue.submit("r", [_job("a")], JobPolicy())
        stale = queue.stream_epoch("r")
        events = queue.attach("r")  # the client came back: epoch bumps
        queue.cancel("r", epoch=stale)  # zombie stream: ignored
        assert queue.has_run("r")
        grant = queue.lease("w")
        queue.complete(grant["lease"], {"m": 1.0})
        assert _drain_until(events, "run-done")["completed"] == 1

    def test_attach_rejects_a_different_job_set(self):
        queue = BrokerQueue()
        queue.submit("r", [_job("a")], JobPolicy())
        with pytest.raises(ValueError, match="different job set"):
            queue.attach("r", [_job("other")])

    def test_sweep_orphans_cancels_unattached_runs(self):
        queue = BrokerQueue(orphan_ttl=0.05)
        queue.submit("r", [_job("a")], JobPolicy())
        queue.detach("r", queue.stream_epoch("r"))
        assert queue.sweep_orphans(now=time.monotonic() + 1.0) == 1
        assert not queue.has_run("r")

    def test_attached_runs_are_never_swept(self):
        queue = BrokerQueue(orphan_ttl=0.05)
        queue.submit("r", [_job("a")], JobPolicy())
        assert queue.sweep_orphans(now=time.monotonic() + 1.0) == 0
        assert queue.has_run("r")


# ----------------------------------------------------------------------
# Server-level streams and the heartbeat-ack protocol
# ----------------------------------------------------------------------
@pytest.fixture()
def broker():
    server = BrokerServer(listen="127.0.0.1:0", lease_ttl=5.0)
    server.start()
    yield server
    server.stop()


class TestServerStreams:
    def test_idle_stream_ticks_instead_of_dying(self, broker):
        broker.TICK_S = 0.2
        conn = connect(broker.address, timeout=5.0)
        try:
            send_frame(conn, {"type": "submit", "run": "tick",
                              "policy": policy_to_dict(JobPolicy()),
                              "jobs": [_job("a")]})
            assert recv_frame(conn)["type"] == "submitted"
            # No worker is attached: the stream must tick, not tear down
            # (the old blanket ``except Exception`` ate real errors here).
            assert recv_frame(conn)["type"] == "tick"
            grant = broker.queue.lease("w")
            broker.queue.complete(grant["lease"], {"m": 1.0})
            kinds = []
            while "run-done" not in kinds:
                kinds.append(recv_frame(conn)["type"])
            assert "job-done" in kinds
        finally:
            conn.close()
        assert _wait_for(lambda: not broker.queue.has_run("tick"))

    def test_resubmit_reattaches_and_replays_settled_events(self, broker):
        jobs = [_job("a"), _job("b")]
        submit = {"type": "submit", "run": "re",
                  "policy": policy_to_dict(JobPolicy()), "jobs": jobs}
        conn1 = connect(broker.address, timeout=5.0)
        send_frame(conn1, submit)
        reply = recv_frame(conn1)
        assert reply["type"] == "submitted" and reply["resumed"] is False
        grant = broker.queue.lease("w")
        broker.queue.complete(grant["lease"], {"m": 0.5})
        assert recv_frame(conn1)["key"] == "a"
        conn1.close()  # the client dies mid-run...

        conn2 = connect(broker.address, timeout=5.0)
        try:
            send_frame(conn2, submit)  # ...and comes back, same run id
            reply = recv_frame(conn2)
            assert reply["type"] == "submitted" and reply["resumed"] is True
            replayed = recv_frame(conn2)
            assert replayed["type"] == "job-done" and replayed["key"] == "a"
            assert replayed["metrics"] == {"m": 0.5}
            grant = broker.queue.lease("w")
            broker.queue.complete(grant["lease"], {"m": 1.5})
            events = []
            while not any(e["type"] == "run-done" for e in events):
                events.append(recv_frame(conn2))
            assert any(e.get("key") == "b" for e in events)
        finally:
            conn2.close()
        # Delivered run-done retires the run: no _Run leaks per study.
        assert _wait_for(lambda: not broker.queue.has_run("re"))

    def test_heartbeat_nack_makes_the_worker_abandon(self, broker):
        plan = compile_study("figure1", member_overrides=FIGURE1_TRIMS)
        doomed, clean = plan.jobs[0], plan.jobs[1]
        broker.queue.lease_ttl = 1.5  # heartbeat every ~0.5s
        worker = Worker(broker.address, name="abandoner", poll_s=0.2)
        stop = threading.Event()

        def _run():
            try:
                worker.run(stop_event=stop)
            except (ConnectionError, FrameError, OSError):
                pass

        thread = threading.Thread(target=_run, daemon=True)
        # The doomed job sleeps long enough for a revocation to land
        # mid-attempt, then would return normally — the abandon is what
        # keeps its result from being reported.
        hold = FaultPlan([FaultSpec(match=doomed.key, action="hang",
                                    seconds=2.5, attempts=(1,))])
        try:
            with hold.installed():
                thread.start()
                events = broker.queue.submit("revoked", [_wire(doomed)],
                                             JobPolicy())
                assert _wait_for(
                    lambda: broker.queue.stats()["leases"] == 1)
                broker.queue.cancel("revoked")  # revokes the lease
                done = _drain_until(events, "run-done")
                assert done["completed"] == 0 and done["failed"] == 1
                assert _wait_for(lambda: worker.abandoned == 1, timeout=15.0)
                assert not broker.queue.has_run("revoked")
            # The worker survived the abandon and still serves jobs.
            events = broker.queue.submit("after", [_wire(clean)],
                                         JobPolicy())
            done = _drain_until(events, "job-done")
            assert done["key"] == clean.key
        finally:
            stop.set()


# ----------------------------------------------------------------------
# Service recovery and the soak loop
# ----------------------------------------------------------------------
class TestServiceRecovery:
    def test_restart_flushes_recovered_results_into_the_store(
            self, tmp_path):
        runs = tmp_path / "runs"
        plan = compile_study("figure1", member_overrides=FIGURE1_TRIMS)
        crashed = ServiceServer(listen="127.0.0.1:0", runs_dir=runs)
        restarted = None
        try:
            # Isolate the journal path: the live on_complete hook would
            # write the unit cache before the "crash" ever happens.
            crashed.queue.on_complete = None
            crashed.queue.submit(
                "crashed", [_wire(job) for job in plan.jobs[:2]],
                JobPolicy())
            grant = crashed.queue.lease("w")
            crashed.queue.complete(grant["lease"], {"m": 2.0})
            assert crashed.store.get_unit(grant["key"]) is None

            restarted = ServiceServer(listen="127.0.0.1:0", runs_dir=runs)
            restarted.start()
            assert restarted.recovered == ["crashed"]
            # The journaled completion became a durable unit-cache hit.
            assert restarted.store.get_unit(grant["key"]) == {"m": 2.0}
        finally:
            crashed.stop()
            if restarted is not None:
                restarted.stop()

    def test_soak_twenty_studies_leave_no_queue_state(self, tmp_path):
        service = ServiceServer(listen="127.0.0.1:0",
                                runs_dir=tmp_path / "runs", lease_ttl=5.0)
        service.start()
        assert service.queue.stats()["journal"] is True
        stop = threading.Event()
        worker = Worker(service.address, name="soak", poll_s=0.2)
        threading.Thread(target=worker.run, kwargs={"stop_event": stop},
                         daemon=True).start()
        try:
            for index in range(20):
                conn = connect(service.address, timeout=5.0)
                try:
                    send_frame(conn, {"type": "submit-study",
                                      "study": "figure1",
                                      "member_overrides": FIGURE1_TRIMS,
                                      "save": f"soak-{index}"})
                    accepted = recv_frame(conn)
                    assert accepted["type"] == "accepted", accepted
                    while True:
                        event = recv_frame(conn)
                        assert event is not None
                        if event["type"] == "study-done":
                            assert event["failures"] == 0
                            break
                finally:
                    conn.close()
            # Twenty runs through an always-on service: every run was
            # retired (no _Run leak) and every journal file collected.
            assert service.queue.stats()["runs"] == {}
            journal_dir = service.store.root / "journal"
            assert not list(journal_dir.glob("*.jsonl"))
        finally:
            stop.set()
            service.stop()


# ----------------------------------------------------------------------
# End to end: SIGKILL the broker mid-run, restart, byte-identity
# ----------------------------------------------------------------------
def _spawn_broker(address, journal_dir):
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULT_PLAN", None)
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.distributed.broker",
         "--listen", address, "--journal", str(journal_dir),
         "--lease-ttl", "5"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    for _ in range(30):
        line = process.stdout.readline()
        if not line:
            break
        if "listening on" in line:
            return process
    process.kill()
    raise AssertionError("broker subprocess never reported listening")


def _start_worker_threads(address, stop, names):
    threads = []
    for name in names:
        worker = Worker(address, name=name, poll_s=0.2)

        def _run(worker=worker):
            try:
                worker.run(stop_event=stop)
            except (ConnectionError, FrameError, OSError):
                pass  # the broker died under us; that is the test

        thread = threading.Thread(target=_run, daemon=True)
        thread.start()
        threads.append(thread)
    return threads


class TestBrokerKillRestart:
    def test_sigkill_restart_is_byte_identical_to_the_golden(
            self, tmp_path):
        plan = compile_study("figure1",
                             member_overrides=STUDY_TRIMS["figure1"])
        address = f"unix:{tmp_path / 'broker.sock'}"
        journal_dir = tmp_path / "journal"
        stop = threading.Event()
        # One mid-plan job sleeps 2s (then succeeds), guaranteeing the
        # run is still open when the broker is killed.
        hold_open = FaultPlan([FaultSpec(match=plan.jobs[2].key,
                                         action="hang", seconds=2.0,
                                         attempts=(1,))])
        broker = _spawn_broker(address, journal_dir)
        try:
            with hold_open.installed():
                _start_worker_threads(address, stop, ["gen1-0", "gen1-1"])
                backend = DistributedBackend(
                    address, run_id="kill-restart", reattach=True,
                    reattach_timeout=120.0)
                first_done = threading.Event()
                outcome = {}

                def _drive():
                    try:
                        outcome["fresh"] = backend.execute(
                            plan,
                            on_result=lambda key, metrics:
                                first_done.set(),
                            policy=JobPolicy(keep_going=True))
                    except BaseException as error:  # noqa: BLE001
                        outcome["error"] = error

                driver = threading.Thread(target=_drive, daemon=True)
                driver.start()
                assert first_done.wait(timeout=120.0)
                assert driver.is_alive(), "run finished before the kill"
                broker.send_signal(signal.SIGKILL)
                broker.wait(timeout=30)

                broker = _spawn_broker(address, journal_dir)  # same journal
                _start_worker_threads(address, stop, ["gen2-0", "gen2-1"])
                driver.join(timeout=240.0)
                assert not driver.is_alive(), "run never completed"
                assert "error" not in outcome, repr(outcome.get("error"))

            results = plan.assemble(outcome["fresh"], failures={})
            golden = GOLDEN_FIGURE1.read_text(encoding="utf-8")
            assert results.to_json() + "\n" == golden
            # run-done was delivered, so the broker retired the run and
            # garbage-collected its journal (the delete races the
            # client's receipt; poll briefly).
            assert _wait_for(
                lambda: not list(journal_dir.glob("*.jsonl")))
        finally:
            stop.set()
            if broker.poll() is None:
                broker.terminate()
                try:
                    broker.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    broker.kill()
