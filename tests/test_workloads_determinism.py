"""Workload generators must be deterministic functions of their seed.

Two constructions with the same parameters must emit identical event
streams (the scenario framework relies on this to make replicates and
cross-architecture comparisons reproducible), and different seeds must
actually change the stream.
"""

from repro.workloads import (
    LookupWorkload,
    PaymentWorkload,
    VerticalWorkload,
    ZipfObjectWorkload,
    workload_from_spec,
)


def _payment_stream(seed: int):
    workload = PaymentWorkload(rate_tps=20.0, accounts=500, seed=seed)
    return [
        (event.timestamp, event.kind, tuple(sorted(event.payload.items())))
        for event in workload.events(duration=30.0)
    ]


class TestPaymentWorkload:
    def test_identical_streams_at_same_seed(self):
        first, second = _payment_stream(7), _payment_stream(7)
        assert first == second
        assert len(first) > 100

    def test_transactions_match_events(self):
        events = list(PaymentWorkload(rate_tps=15.0, seed=3).events(duration=20.0))
        transactions = PaymentWorkload(rate_tps=15.0, seed=3).transactions(duration=20.0)
        assert len(events) == len(transactions)
        for event, tx in zip(events, transactions):
            assert tx.tx_id == event.payload["tx_id"]
            assert tx.payer == event.payload["payer"]
            assert tx.payee == event.payload["payee"]
            assert tx.amount == event.payload["amount"]
            assert tx.created_at == event.timestamp

    def test_different_seeds_differ(self):
        assert _payment_stream(1) != _payment_stream(2)


class TestLookupWorkload:
    def test_identical_streams_at_same_seed(self):
        def stream():
            workload = LookupWorkload(rate_per_second=5.0, keys=1000, seed=11)
            return [(e.timestamp, e.payload["key"]) for e in workload.events(duration=60.0)]

        first, second = stream(), stream()
        assert first == second
        assert len(first) > 100

    def test_different_seeds_differ(self):
        def stream(seed):
            workload = LookupWorkload(rate_per_second=5.0, keys=1000, seed=seed)
            return [(e.timestamp, e.payload["key"]) for e in workload.events(duration=20.0)]

        assert stream(1) != stream(9)


class TestZipfObjectWorkload:
    def test_identical_requests_at_same_seed(self):
        first = ZipfObjectWorkload(objects=200, seed=5).requests(300)
        second = ZipfObjectWorkload(objects=200, seed=5).requests(300)
        assert first == second

    def test_different_seeds_differ(self):
        assert ZipfObjectWorkload(seed=1).requests(50) != ZipfObjectWorkload(seed=2).requests(50)


class TestVerticalWorkload:
    def test_identical_streams_at_same_seed(self):
        def stream():
            workload = VerticalWorkload("supply-chain", rate_tps=30.0, seed=4)
            return [
                (event.timestamp, tuple(sorted(str(item) for item in event.payload.items())))
                for event in workload.events(duration=10.0)
            ]

        assert stream() == stream()


class TestWorkloadFromSpec:
    def test_spec_matches_direct_construction(self):
        spec = {"kind": "payment", "rate_tps": 20.0, "accounts": 500, "seed": 7}
        from_spec = workload_from_spec(spec)
        events = [
            (event.timestamp, tuple(sorted(event.payload.items())))
            for event in from_spec.events(duration=30.0)
        ]
        direct = [
            (timestamp, payload) for timestamp, _, payload in _payment_stream(7)
        ]
        assert events == direct

    def test_seed_override_wins(self):
        workload = workload_from_spec({"kind": "lookup", "seed": 1}, seed=42)
        assert workload.rng.seed == 42

    def test_unknown_kind_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="unknown workload kind"):
            workload_from_spec({"kind": "nonsense"})
