"""reprolint: the determinism-contract linter's own test suite.

Each rule RL001–RL006 gets a seeded-violation fixture (the linter must
flag it) and a clean fixture (the linter must pass it) — including the
historical PR 2 ``SeededRNG.fork`` builtin-``hash()`` bug, reproduced
verbatim, which RL001 exists to catch.  On top of the rules: the CLI's
exit codes (0 clean / 1 findings / 2 usage), the JSON report shape,
suppression-with-reason enforcement (reasonless suppressions are RL000
findings), config allowlist zones, and the guarantee that the shipped
tree itself lints clean with only its documented suppressed exceptions.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import (
    ALL_RULES,
    RULES_BY_CODE,
    default_config,
    lint_paths,
)
from repro.analysis.lint.cli import (
    EXIT_FINDINGS,
    EXIT_OK,
    EXIT_USAGE,
    JSON_VERSION,
    main,
)
from repro.analysis.lint.config import LintConfig, ZoneConfig, module_in
from repro.analysis.lint.framework import module_name


# ----------------------------------------------------------------------
# Fixture helpers: a tiny fake `repro` tree the zones recognise
# ----------------------------------------------------------------------
def make_tree(tmp_path, files):
    """Write ``{relative path: source}`` under tmp_path; returns the root."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        for parent in path.parents:
            if parent == tmp_path:
                break
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
    return tmp_path


def lint_tree(tmp_path, files, config=None):
    root = make_tree(tmp_path, files)
    findings, _ = lint_paths(
        [root / "repro"], ALL_RULES, config or default_config(), root
    )
    return findings


def codes(findings, unsuppressed_only=True):
    return sorted(
        f.code for f in findings if not (unsuppressed_only and f.suppressed)
    )


# ----------------------------------------------------------------------
# RL001 — builtin hash(), including the historical PR 2 bug
# ----------------------------------------------------------------------
#: The PR 2 bug, reproduced: fork() derived child seeds from builtin
#: hash(), so fixed-seed runs differed across PYTHONHASHSEED processes.
HISTORICAL_FORK_BUG = """
    import random


    class SeededRNG:
        def __init__(self, seed=0):
            self.seed = seed
            self._random = random.Random(seed)

        def fork(self, label):
            child_seed = hash((self.seed, label)) & 0x7FFFFFFF
            return SeededRNG(child_seed)
"""


class TestRL001BuiltinHash:
    def test_historical_fork_bug_is_flagged(self, tmp_path):
        findings = lint_tree(
            tmp_path, {"repro/sim/rng2.py": HISTORICAL_FORK_BUG}
        )
        assert "RL001" in codes(findings)
        (finding,) = [f for f in findings if f.code == "RL001"]
        assert "PYTHONHASHSEED" in finding.message
        assert finding.module == "repro.sim.rng2"

    def test_sha256_fork_is_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/sim/rng2.py": """
            import hashlib


            def fork_seed(seed, label):
                digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
                return int.from_bytes(digest[:8], "big") & 0x7FFFFFFF
        """})
        assert codes(findings) == []

    def test_locally_rebound_hash_is_not_the_builtin(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/sim/h.py": """
            from hashlib import sha256 as hash


            def digest(data):
                return hash(data).hexdigest()
        """})
        assert "RL001" not in codes(findings)


# ----------------------------------------------------------------------
# RL002 — wall-clock reads in simulation semantics
# ----------------------------------------------------------------------
class TestRL002WallClock:
    @pytest.mark.parametrize("snippet", [
        "import time\n\ndef f():\n    return time.time()\n",
        "import time\n\ndef f():\n    return time.perf_counter()\n",
        "from time import monotonic\n\ndef f():\n    return monotonic()\n",
        ("from datetime import datetime\n\n"
         "def f():\n    return datetime.now()\n"),
    ])
    def test_wall_clock_reads_flagged_in_sim_zone(self, tmp_path, snippet):
        findings = lint_tree(tmp_path, {"repro/sim/clock.py": snippet})
        assert codes(findings) == ["RL002"]

    def test_virtual_clock_is_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/sim/clock.py": """
            def elapsed(sim, started_at):
                return sim.now - started_at
        """})
        assert codes(findings) == []

    def test_allowlisted_zone_is_exempt(self, tmp_path):
        # Same wall-clock read, placed in the supervision module the
        # default config allowlists: no finding.
        snippet = "import time\n\ndef budget():\n    return time.monotonic()\n"
        findings = lint_tree(
            tmp_path, {"repro/scenarios/execution.py": snippet}
        )
        assert codes(findings) == []

    def test_custom_allowlist_zone(self, tmp_path):
        snippet = "import time\n\ndef f():\n    return time.time()\n"
        config = default_config()
        zones = dict(config.zones)
        zones["RL002"] = ZoneConfig(apply=("repro",),
                                    allow=("repro.sim.clock",))
        findings = lint_tree(
            tmp_path, {"repro/sim/clock.py": snippet},
            config=LintConfig(zones=zones),
        )
        assert codes(findings) == []


# ----------------------------------------------------------------------
# RL003 — global / unseeded RNG
# ----------------------------------------------------------------------
class TestRL003GlobalRNG:
    @pytest.mark.parametrize("snippet", [
        "import random\n\ndef f():\n    return random.random()\n",
        "import random\n\ndef f(xs):\n    random.shuffle(xs)\n",
        "from random import randint\n\ndef f():\n    return randint(0, 9)\n",
        "import numpy as np\n\ndef f():\n    return np.random.normal()\n",
        "import numpy as np\n\ndef f():\n    np.random.seed(0)\n",
        ("import numpy as np\n\n"
         "def f():\n    return np.random.default_rng()\n"),
        "import random\n\ndef f():\n    return random.Random()\n",
    ])
    def test_global_rng_flagged(self, tmp_path, snippet):
        findings = lint_tree(tmp_path, {"repro/p2p/draws.py": snippet})
        assert codes(findings) == ["RL003"]

    @pytest.mark.parametrize("snippet", [
        # Seeded constructions and SeededRNG methods are fine.
        "import random\n\ndef f(seed):\n    return random.Random(seed)\n",
        ("import numpy as np\n\n"
         "def f(seed):\n    return np.random.default_rng(seed)\n"),
        "def f(rng):\n    return rng.random() + rng.randint(0, 9)\n",
    ])
    def test_seeded_rng_clean(self, tmp_path, snippet):
        findings = lint_tree(tmp_path, {"repro/p2p/draws.py": snippet})
        assert codes(findings) == []

    def test_rng_module_itself_is_allowlisted(self, tmp_path):
        # repro.sim.rng wraps random.Random: that is its job.
        findings = lint_tree(tmp_path, {"repro/sim/rng.py": """
            import random


            def build(seed):
                return random.Random(seed)
        """})
        assert codes(findings) == []


# ----------------------------------------------------------------------
# RL004 — set iteration
# ----------------------------------------------------------------------
class TestRL004SetIteration:
    def test_loop_over_set_call_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/sim/loops.py": """
            def schedule_all(sim, peers):
                for peer in set(peers):
                    sim.schedule(0.0, peer.tick)
        """})
        assert codes(findings) == ["RL004"]

    def test_loop_over_set_valued_local_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/sim/loops.py": """
            def collect(edges):
                touched = set()
                for a, b in edges:
                    touched.add(a)
                out = []
                for node in touched:
                    out.append(node)
                return out
        """})
        assert codes(findings) == ["RL004"]

    def test_comprehension_and_list_materialization_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/sim/loops.py": """
            def snapshot(peers):
                frozen = frozenset(peers)
                ordered = [p for p in frozen]
                other = list({1, 2} | frozen)
                return ordered, other
        """})
        assert codes(findings) == ["RL004", "RL004"]

    def test_sorted_wrapping_is_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/sim/loops.py": """
            def schedule_all(sim, peers):
                for peer in sorted(set(peers)):
                    sim.schedule(0.0, peer.tick)
                return sorted({1, 2, 3})
        """})
        assert codes(findings) == []

    def test_membership_tests_are_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/sim/loops.py": """
            def filter_known(items, known):
                lookup = set(known)
                return [item for item in items if item in lookup]
        """})
        assert codes(findings) == []


# ----------------------------------------------------------------------
# RL005 — env / platform reads
# ----------------------------------------------------------------------
class TestRL005EnvReads:
    @pytest.mark.parametrize("snippet", [
        "import os\n\ndef f():\n    return os.environ.get('X')\n",
        "import os\n\ndef f():\n    return os.getenv('X', '1')\n",
        "import platform\n\ndef f():\n    return platform.system()\n",
        "from os import environ\n\ndef f():\n    return environ['X']\n",
    ])
    def test_env_reads_flagged_in_execution_zone(self, tmp_path, snippet):
        findings = lint_tree(tmp_path, {"repro/blockchain/mine.py": snippet})
        assert codes(findings) == ["RL005"]

    def test_spec_threaded_config_is_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/blockchain/mine.py": """
            def difficulty(spec):
                return spec.architecture.get("difficulty", 1.0)
        """})
        assert codes(findings) == []

    def test_outside_the_zone_is_clean(self, tmp_path):
        # repro.run is the CLI boundary: env reads are legitimate there
        # and the zone config excludes it.
        findings = lint_tree(tmp_path, {"repro/run.py": """
            import os


            def runs_dir():
                return os.environ.get("REPRO_RUNS_DIR", "runs")
        """})
        assert codes(findings) == []


# ----------------------------------------------------------------------
# RL006 — ScenarioSpec serialized-form discipline
# ----------------------------------------------------------------------
def spec_module(extra_field="", extra_emit="", metrics_emit=True):
    """A miniature ScenarioSpec module with the real to_dict shape."""
    conditional = (
        '                if self.metrics != "exact":\n'
        '                    data["metrics"] = self.metrics\n'
        if metrics_emit else ""
    )
    return f"""
        from dataclasses import dataclass, field


        @dataclass
        class ScenarioSpec:
            name: str
            family: str
            description: str = ""
            claim: str = ""
            architecture: dict = field(default_factory=dict)
            topology: dict = field(default_factory=dict)
            churn: object = None
            workload: dict = field(default_factory=dict)
            duration: float = 0.0
            seed: int = 0
            replicates: int = 1
            metrics: str = "exact"
            sweeps: dict = field(default_factory=dict)
            variants: dict = field(default_factory=dict)
{textwrap.indent(extra_field, "            ")}
            def to_dict(self):
                data = {{
                    "name": self.name,
                    "family": self.family,
                    "description": self.description,
                    "claim": self.claim,
                    "architecture": dict(self.architecture),
                    "topology": dict(self.topology),
                    "churn": self.churn,
                    "workload": dict(self.workload),
                    "duration": self.duration,
                    "seed": self.seed,
                    "replicates": self.replicates,
                    "sweeps": dict(self.sweeps),
                    "variants": dict(self.variants),
{textwrap.indent(extra_emit, "                    ")}
                }}
{conditional}
                return data
    """


DIFF_MODULE = 'OBSERVATIONAL_SPEC_KEYS = ("metrics",)\n'


class TestRL006SpecFieldDiscipline:
    def base_tree(self, **kwargs):
        return {
            "repro/scenarios/spec.py": spec_module(**kwargs),
            "repro/analysis/diff.py": DIFF_MODULE,
        }

    def test_current_shape_is_clean(self, tmp_path):
        findings = lint_tree(tmp_path, self.base_tree())
        assert codes(findings) == []

    def test_new_unconditional_field_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, self.base_tree(
            extra_field='backend_hint: str = "auto"\n',
            extra_emit='"backend_hint": self.backend_hint,\n',
        ))
        assert codes(findings) == ["RL006"]
        (finding,) = [f for f in findings if f.code == "RL006"]
        assert "backend_hint" in finding.message
        assert "hash" in finding.message

    def test_new_unregistered_field_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, self.base_tree(
            extra_field="cache_ttl: int = 0\n",
        ))
        assert codes(findings) == ["RL006"]
        (finding,) = [f for f in findings if f.code == "RL006"]
        assert "cache_ttl" in finding.message

    def test_conditionally_emitted_field_is_clean(self, tmp_path):
        # New field emitted behind an if-guard, like metrics: clean.
        tree = self.base_tree(extra_field='backend_hint: str = "auto"\n')
        tree["repro/scenarios/spec.py"] = tree[
            "repro/scenarios/spec.py"
        ].replace(
            "                return data",
            '                if self.backend_hint != "auto":\n'
            '                    data["backend_hint"] = self.backend_hint\n'
            "                return data",
        )
        findings = lint_tree(tmp_path, tree)
        assert codes(findings) == []

    def test_observational_registration_is_clean(self, tmp_path):
        tree = self.base_tree(extra_field="cache_ttl: int = 0\n")
        tree["repro/analysis/diff.py"] = (
            'OBSERVATIONAL_SPEC_KEYS = ("metrics", "cache_ttl")\n'
        )
        findings = lint_tree(tmp_path, tree)
        assert codes(findings) == []

    def test_dropped_baseline_field_flagged(self, tmp_path):
        tree = self.base_tree()
        tree["repro/scenarios/spec.py"] = tree[
            "repro/scenarios/spec.py"
        ].replace('                    "claim": self.claim,\n', "")
        findings = lint_tree(tmp_path, tree)
        assert codes(findings) == ["RL006"]
        (finding,) = [f for f in findings if f.code == "RL006"]
        assert "claim" in finding.message


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    SNIPPET = (
        "import time\n\n"
        "def f():\n"
        "    return time.time(){directive}\n"
    )

    def test_reasoned_suppression_silences_and_is_reported(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "repro/sim/clock.py": self.SNIPPET.format(
                directive="  # reprolint: ok RL002 (profiling aid, "
                "stripped from metrics)"
            )
        })
        assert codes(findings) == []  # nothing unsuppressed
        (finding,) = findings
        assert finding.suppressed
        assert finding.code == "RL002"
        assert finding.reason == "profiling aid, stripped from metrics"

    def test_suppression_without_reason_is_rl000(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "repro/sim/clock.py": self.SNIPPET.format(
                directive="  # reprolint: ok RL002"
            )
        })
        # The RL002 finding survives AND the directive itself is flagged.
        assert codes(findings) == ["RL000", "RL002"]

    def test_empty_reason_is_rl000(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "repro/sim/clock.py": self.SNIPPET.format(
                directive="  # reprolint: ok RL002 ( )"
            )
        })
        assert codes(findings) == ["RL000", "RL002"]

    def test_malformed_directive_is_rl000(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "repro/sim/clock.py": self.SNIPPET.format(
                directive="  # reprolint: silence everything please"
            )
        })
        assert "RL000" in codes(findings)

    def test_wrong_code_does_not_suppress(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "repro/sim/clock.py": self.SNIPPET.format(
                directive="  # reprolint: ok RL001 (not the right rule)"
            )
        })
        assert codes(findings) == ["RL002"]

    def test_comment_line_directive_covers_next_line(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/sim/clock.py": (
            "import time\n\n"
            "def f():\n"
            "    # reprolint: ok RL002 (wall time reported, not simulated)\n"
            "    return time.time()\n"
        )})
        assert codes(findings) == []
        assert [f.suppressed for f in findings] == [True]

    def test_multi_code_directive(self, tmp_path):
        findings = lint_tree(tmp_path, {"repro/sim/clock.py": (
            "import time\n"
            "import os\n\n"
            "def f():\n"
            "    return time.time(), os.getenv('X')"
            "  # reprolint: ok RL002,RL005 (diagnostics banner only)\n"
        )})
        assert codes(findings) == []
        assert sorted(f.code for f in findings) == ["RL002", "RL005"]


# ----------------------------------------------------------------------
# CLI: exit codes, JSON shape, explain, config
# ----------------------------------------------------------------------
class TestCLI:
    def test_exit_0_on_clean_tree(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"repro/sim/ok.py": "X = 1\n"})
        assert main([str(root / "repro"), "--root", str(root)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "clean" in out

    def test_exit_1_on_findings(self, tmp_path, capsys):
        root = make_tree(
            tmp_path, {"repro/sim/rng2.py": HISTORICAL_FORK_BUG}
        )
        assert main([str(root / "repro"), "--root", str(root)]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "RL001" in out

    def test_exit_2_on_missing_path(self, tmp_path):
        assert main([str(tmp_path / "nope")]) == EXIT_USAGE

    def test_exit_2_on_unknown_explain_code(self):
        assert main(["--explain", "RL999"]) == EXIT_USAGE

    def test_exit_2_on_bad_config(self, tmp_path):
        bad = tmp_path / "zones.json"
        bad.write_text("[1, 2, 3]", encoding="utf-8")
        root = make_tree(tmp_path, {"repro/sim/ok.py": "X = 1\n"})
        assert main(
            [str(root / "repro"), "--config", str(bad)]
        ) == EXIT_USAGE

    def test_explain_every_registered_rule(self, capsys):
        for code, rule in sorted(RULES_BY_CODE.items()):
            assert main(["--explain", code]) == EXIT_OK
            out = capsys.readouterr().out
            assert code in out
            assert rule.summary in out
            assert "reprolint: ok" in out  # suppression policy shown

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_OK
        out = capsys.readouterr().out
        for code in RULES_BY_CODE:
            assert code in out

    def test_json_report_shape(self, tmp_path, capsys):
        root = make_tree(tmp_path, {
            "repro/sim/rng2.py": HISTORICAL_FORK_BUG,
            "repro/sim/clock.py": (
                "import time\n\n"
                "def f():\n"
                "    return time.time()"
                "  # reprolint: ok RL002 (banner only)\n"
            ),
        })
        code = main([str(root / "repro"), "--root", str(root),
                     "--json", "-", "--quiet"])
        assert code == EXIT_FINDINGS
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == JSON_VERSION
        assert report["clean"] is False
        assert report["counts"]["total"] == 2
        assert report["counts"]["suppressed"] == 1
        assert report["counts"]["unsuppressed"] == 1
        assert report["counts"]["by_code"]["RL001"] == {
            "total": 1, "suppressed": 0,
        }
        assert report["counts"]["by_code"]["RL002"] == {
            "total": 1, "suppressed": 1,
        }
        entries = {f["code"]: f for f in report["findings"]}
        rl001 = entries["RL001"]
        assert rl001["module"] == "repro.sim.rng2"
        assert rl001["path"].endswith("rng2.py")
        assert rl001["line"] > 0
        assert rl001["suppressed"] is False
        assert entries["RL002"]["suppressed"] is True
        assert entries["RL002"]["reason"] == "banner only"

    def test_json_report_to_file(self, tmp_path):
        root = make_tree(tmp_path, {"repro/sim/ok.py": "X = 1\n"})
        out = tmp_path / "report.json"
        assert main([str(root / "repro"), "--root", str(root),
                     "--json", str(out), "--quiet"]) == EXIT_OK
        report = json.loads(out.read_text(encoding="utf-8"))
        assert report["clean"] is True
        assert report["findings"] == []

    def test_config_file_allowlists_a_zone(self, tmp_path):
        root = make_tree(tmp_path, {
            "repro/sim/clock.py":
                "import time\n\ndef f():\n    return time.time()\n",
        })
        zones = tmp_path / "zones.json"
        zones.write_text(
            json.dumps({"RL002": {"allow": ["repro.sim.clock"]}}),
            encoding="utf-8",
        )
        assert main([str(root / "repro"), "--root", str(root),
                     "--quiet"]) == EXIT_FINDINGS
        assert main([str(root / "repro"), "--root", str(root),
                     "--quiet", "--config", str(zones)]) == EXIT_OK

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path, capsys):
        root = make_tree(tmp_path, {"repro/sim/broken.py": "def f(:\n"})
        assert main([str(root / "repro"), "--root", str(root)]) \
            == EXIT_FINDINGS
        assert "RL000" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Zones / framework plumbing
# ----------------------------------------------------------------------
class TestZones:
    def test_module_pattern_matches_submodules(self):
        assert module_in("repro.sim.engine", ("repro.sim",))
        assert module_in("repro.sim", ("repro.sim",))
        assert not module_in("repro.simulate", ("repro.sim",))
        assert module_in("repro.p2p.fastkad", ("repro.*",))

    def test_module_name_resolution(self, tmp_path):
        root = make_tree(tmp_path, {"repro/sim/engine.py": "X = 1\n"})
        assert module_name(root / "repro/sim/engine.py", root) \
            == "repro.sim.engine"
        assert module_name(root / "repro/sim/__init__.py", root) \
            == "repro.sim"

    def test_default_config_covers_every_rule(self):
        config = default_config()
        for rule in ALL_RULES:
            assert rule.code in config.zones, rule.code

    def test_rules_have_stable_metadata(self):
        for rule in ALL_RULES:
            assert rule.code.startswith("RL") and len(rule.code) == 5
            assert rule.summary and rule.rationale and rule.fixit


# ----------------------------------------------------------------------
# The shipped tree itself
# ----------------------------------------------------------------------
class TestShippedTree:
    def test_repo_lints_clean(self):
        import repro

        package = Path(repro.__file__).resolve().parent
        findings, files = lint_paths(
            [package], ALL_RULES, default_config(), package.parent
        )
        unsuppressed = [f for f in findings if not f.suppressed]
        assert unsuppressed == [], [f.render() for f in unsuppressed]
        assert files > 50  # the walk really covered the package
        # The documented exceptions stay visible (and reasoned).
        assert all(f.reason for f in findings if f.suppressed)
