"""Tests for the network model, node dispatch and churn processes."""

import pytest

from repro.sim.churn import ChurnModel, ChurnProcess
from repro.sim.engine import Simulator
from repro.sim.network import Link, Network, NetworkParams
from repro.sim.node import Node
from repro.sim.rng import SeededRNG


class EchoNode(Node):
    """Test node that records pings and replies with pongs."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.pings = []
        self.pongs = []
        self.unknown = []

    def on_ping(self, message):
        self.pings.append(message)
        self.send(message.sender, "pong", message.payload)

    def on_pong(self, message):
        self.pongs.append(message)

    def on_unknown(self, message):
        self.unknown.append(message)


def make_pair(params=None, seed=0):
    sim = Simulator()
    network = Network(sim, params, rng=SeededRNG(seed))
    a = EchoNode("a", sim, network)
    b = EchoNode("b", sim, network)
    return sim, network, a, b


class TestNetwork:
    def test_message_delivery_and_reply(self):
        sim, network, a, b = make_pair()
        a.send("b", "ping", {"n": 1})
        sim.run()
        assert len(b.pings) == 1
        assert len(a.pongs) == 1
        assert network.messages_delivered == 2

    def test_delivery_has_positive_latency(self):
        sim, network, a, b = make_pair()
        a.send("b", "ping")
        sim.run()
        assert b.pings[0].latency > 0

    def test_larger_messages_take_longer(self):
        params = NetworkParams(latency_jitter=0.0, bandwidth_bps=1_000_000.0)
        sim, network, a, b = make_pair(params)
        small = network.sample_delay("a", "b", 100)
        large = network.sample_delay("a", "b", 1_000_000)
        assert large > small

    def test_inter_region_latency_larger(self):
        sim = Simulator()
        params = NetworkParams(latency_jitter=0.0)
        network = Network(sim, params, rng=SeededRNG(0))
        network.register("x", lambda m: None, region="eu")
        network.register("y", lambda m: None, region="us")
        network.register("z", lambda m: None, region="eu")
        cross = network.sample_delay("x", "y", 10)
        local = network.sample_delay("x", "z", 10)
        assert cross > local

    def test_offline_node_drops_messages(self):
        sim, network, a, b = make_pair()
        b.go_offline()
        a.send("b", "ping")
        sim.run()
        assert b.pings == []
        assert network.messages_dropped >= 1

    def test_node_back_online_receives_again(self):
        sim, network, a, b = make_pair()
        b.go_offline()
        b.go_online()
        a.send("b", "ping")
        sim.run()
        assert len(b.pings) == 1

    def test_partition_blocks_cross_group_traffic(self):
        sim, network, a, b = make_pair()
        network.set_partition([["a"], ["b"]])
        a.send("b", "ping")
        sim.run()
        assert b.pings == []
        network.clear_partition()
        a.send("b", "ping")
        sim.run()
        assert len(b.pings) == 1

    def test_loss_rate_drops_some_messages(self):
        params = NetworkParams(loss_rate=1.0)
        sim, network, a, b = make_pair(params)
        a.send("b", "ping")
        sim.run()
        assert b.pings == []

    def test_link_override(self):
        params = NetworkParams(latency_jitter=0.0, base_latency=0.05)
        sim, network, a, b = make_pair(params)
        network.set_link("a", "b", Link(latency=1.0, bandwidth_bps=1e9))
        assert network.sample_delay("a", "b", 10) > 0.9

    def test_broadcast_excludes_sender(self):
        sim = Simulator()
        network = Network(sim, rng=SeededRNG(0))
        nodes = [EchoNode(f"n{i}", sim, network) for i in range(5)]
        count = network.broadcast("n0", [node.node_id for node in nodes], "ping")
        sim.run()
        assert count == 4
        assert nodes[0].pings == []
        assert all(len(node.pings) == 1 for node in nodes[1:])

    def test_unknown_message_type_hits_on_unknown(self):
        sim, network, a, b = make_pair()
        a.send("b", "mystery")
        sim.run()
        assert len(b.unknown) == 1

    def test_unregistered_recipient_dropped(self):
        sim, network, a, b = make_pair()
        network.unregister("b")
        a.send("b", "ping")
        sim.run()
        assert network.messages_dropped >= 1

    def test_shutdown_removes_node(self):
        sim, network, a, b = make_pair()
        b.shutdown()
        assert not network.is_online("b")


class TestChurnModel:
    def test_availability_formula(self):
        model = ChurnModel(mean_session=3600.0, mean_downtime=1800.0)
        assert model.availability == pytest.approx(2.0 / 3.0)

    def test_presets_have_sensible_availability(self):
        assert 0.4 < ChurnModel.kad_like().availability < 0.8
        assert 0.3 < ChurnModel.bittorrent_like().availability < 0.7
        assert ChurnModel.stable().availability > 0.99

    def test_sample_session_positive(self):
        rng = SeededRNG(1)
        for model in (ChurnModel.kad_like(), ChurnModel.bittorrent_like(), ChurnModel.aggressive()):
            assert all(model.sample_session(rng) > 0 for _ in range(50))

    def test_constant_distribution(self):
        model = ChurnModel(session_distribution="constant", mean_session=100.0)
        assert model.sample_session(SeededRNG(0)) == 100.0

    def test_exponential_and_pareto_distributions(self):
        rng = SeededRNG(2)
        exponential = ChurnModel(session_distribution="exponential", mean_session=50.0)
        pareto = ChurnModel(session_distribution="pareto", mean_session=50.0)
        assert exponential.sample_session(rng) > 0
        assert pareto.sample_session(rng) > 0

    def test_unknown_distribution_raises(self):
        model = ChurnModel(session_distribution="cauchy")
        with pytest.raises(ValueError):
            model.sample_session(SeededRNG(0))

    def test_weibull_mean_approximately_correct(self):
        model = ChurnModel(session_distribution="weibull", mean_session=1000.0, weibull_shape=0.7)
        rng = SeededRNG(3)
        values = [model.sample_session(rng) for _ in range(20000)]
        assert abs(sum(values) / len(values) - 1000.0) < 100.0


class TestChurnProcess:
    def test_nodes_leave_and_join(self):
        sim = Simulator()
        model = ChurnModel(session_distribution="exponential", mean_session=100.0, mean_downtime=100.0)
        joined, left = [], []
        process = ChurnProcess(
            sim, list(range(50)), model, rng=SeededRNG(1),
            on_join=joined.append, on_leave=left.append,
        )
        process.start()
        sim.run(until=1000.0)
        assert len(left) > 0
        assert len(joined) > 0
        assert process.churn_rate_per_hour() > 0

    def test_steady_state_init_matches_availability(self):
        sim = Simulator()
        model = ChurnModel(session_distribution="exponential", mean_session=300.0, mean_downtime=300.0)
        process = ChurnProcess(
            sim, list(range(2000)), model, rng=SeededRNG(2), steady_state_init=True
        )
        online_fraction = process.online_count() / 2000
        assert abs(online_fraction - model.availability) < 0.05

    def test_stable_model_keeps_nodes_online(self):
        sim = Simulator()
        process = ChurnProcess(sim, list(range(30)), ChurnModel.stable(), rng=SeededRNG(3))
        process.start()
        sim.run(until=3600.0)
        assert process.online_count() >= 28

    def test_is_online_tracks_state(self):
        sim = Simulator()
        model = ChurnModel(session_distribution="constant", mean_session=10.0, mean_downtime=1e9)
        process = ChurnProcess(sim, ["n"], model, rng=SeededRNG(4))
        process.start()
        assert process.is_online("n")
        sim.run(until=100.0)
        assert not process.is_online("n")


class TestNetworkPresets:
    def test_by_name_returns_fresh_instances(self):
        first = NetworkParams.by_name("lan")
        first.base_latency = 99.0
        assert NetworkParams.by_name("lan").base_latency == 0.0005

    def test_preset_ordering_is_physical(self):
        lan = NetworkParams.by_name("lan")
        wan = NetworkParams.by_name("wan")
        geo = NetworkParams.by_name("geo")
        assert lan.base_latency < wan.base_latency < geo.base_latency
        assert (lan.inter_region_latency < wan.inter_region_latency
                < geo.inter_region_latency)
        assert lan.bandwidth_bps > wan.bandwidth_bps > geo.bandwidth_bps

    def test_wan_preset_matches_stock_defaults(self):
        assert NetworkParams.by_name("wan") == NetworkParams()

    def test_unknown_preset_lists_names(self):
        with pytest.raises(KeyError, match="lan, wan"):
            NetworkParams.by_name("interplanetary")

    def test_from_spec_accepts_all_declarative_forms(self):
        assert NetworkParams.from_spec(None) is None
        assert NetworkParams.from_spec("geo") == NetworkParams.by_name("geo")
        assert NetworkParams.from_spec({"base_latency": 0.01}).base_latency == 0.01
        params = NetworkParams(loss_rate=0.2)
        assert NetworkParams.from_spec(params) is params
        with pytest.raises(TypeError, match="preset name"):
            NetworkParams.from_spec(42)

    def test_presets_shape_delivery_latency(self):
        def mean_latency(preset):
            sim = Simulator()
            network = Network(sim, params=NetworkParams.by_name(preset),
                              rng=SeededRNG(1))
            latencies = []
            network.register("sink", lambda msg: latencies.append(msg.latency))
            for _ in range(50):
                network.send("source", "sink", "ping", size_bytes=256)
            sim.run()
            return sum(latencies) / len(latencies)

        assert mean_latency("lan") < mean_latency("wan") < mean_latency("geo")
