"""Tests for the permissioned (Fabric-like) blockchain: MSP, ledger, chaincode, pipeline."""

import pytest

from repro.permissioned.chaincode import (
    ChaincodeError,
    ChaincodeRegistry,
    asset_transfer_chaincode,
    provenance_chaincode,
    record_sharing_chaincode,
)
from repro.permissioned.fabric import (
    ChannelConfig,
    EndorsementPolicy,
    FabricNetwork,
    FabricNetworkConfig,
    OrderingConfig,
)
from repro.permissioned.identity import Identity, MembershipService, Organization
from repro.permissioned.ledger import Ledger, ReadWriteSet, ValidationCode, WorldState


class TestMembershipService:
    def test_enroll_and_validate(self):
        msp = MembershipService([Organization("acme")])
        identity = msp.enroll("peer1", "acme", role="peer")
        assert msp.is_valid(identity)
        assert msp.authorize(identity, "peer")
        assert not msp.authorize(identity, "orderer")

    def test_unknown_organization_rejected(self):
        msp = MembershipService()
        with pytest.raises(KeyError):
            msp.enroll("x", "ghost")

    def test_duplicate_enrollment_rejected(self):
        msp = MembershipService([Organization("acme")])
        msp.enroll("peer1", "acme")
        with pytest.raises(ValueError):
            msp.enroll("peer1", "acme")

    def test_revocation_invalidates(self):
        msp = MembershipService([Organization("acme")])
        identity = msp.enroll("peer1", "acme")
        msp.revoke("peer1")
        assert not msp.is_valid(identity)
        with pytest.raises(KeyError):
            msp.get("peer1")

    def test_forged_certificate_rejected(self):
        msp = MembershipService([Organization("acme")])
        msp.enroll("peer1", "acme", role="peer")
        forged = Identity(name="peer1", organization="acme", role="peer", certificate="deadbeef")
        assert not msp.is_valid(forged)

    def test_identities_of_filters_by_role(self):
        msp = MembershipService([Organization("acme"), Organization("beta")])
        msp.enroll("p1", "acme", role="peer")
        msp.enroll("a1", "acme", role="admin")
        msp.enroll("p2", "beta", role="peer")
        assert len(msp.identities_of("acme")) == 2
        assert len(msp.identities_of("acme", role="peer")) == 1

    def test_duplicate_organization_rejected(self):
        msp = MembershipService([Organization("acme")])
        with pytest.raises(ValueError):
            msp.add_organization(Organization("acme"))


class TestWorldStateAndLedger:
    def test_versions_increment(self):
        state = WorldState()
        assert state.get("k") == (None, 0)
        assert state.put("k", "v1") == 1
        assert state.put("k", "v2") == 2
        assert state.get("k") == ("v2", 2)

    def test_ledger_commits_valid_transaction(self):
        ledger = Ledger()
        rwset = ReadWriteSet(reads={"a": 0}, writes={"a": 10})
        outcomes = ledger.validate_and_commit([("tx1", rwset, True)])
        assert outcomes[0].code is ValidationCode.VALID
        assert ledger.world_state.get("a") == (10, 1)
        assert ledger.height == 1

    def test_mvcc_conflict_detected_within_block(self):
        ledger = Ledger()
        first = ReadWriteSet(reads={"a": 0}, writes={"a": 1})
        second = ReadWriteSet(reads={"a": 0}, writes={"a": 2})   # stale read of version 0
        outcomes = ledger.validate_and_commit([("tx1", first, True), ("tx2", second, True)])
        assert outcomes[0].code is ValidationCode.VALID
        assert outcomes[1].code is ValidationCode.MVCC_CONFLICT
        assert ledger.world_state.get("a") == (1, 1)

    def test_mvcc_conflict_across_blocks(self):
        ledger = Ledger()
        ledger.validate_and_commit([("tx1", ReadWriteSet(reads={"a": 0}, writes={"a": 1}), True)])
        stale = ReadWriteSet(reads={"a": 0}, writes={"a": 99})
        outcomes = ledger.validate_and_commit([("tx2", stale, True)])
        assert outcomes[0].code is ValidationCode.MVCC_CONFLICT

    def test_endorsement_failure_marked(self):
        ledger = Ledger()
        outcomes = ledger.validate_and_commit([("tx1", ReadWriteSet(), False)])
        assert outcomes[0].code is ValidationCode.ENDORSEMENT_FAILURE
        assert ledger.validity_rate() == 0.0

    def test_validity_rate(self):
        ledger = Ledger()
        ledger.validate_and_commit(
            [
                ("tx1", ReadWriteSet(reads={"a": 0}, writes={"a": 1}), True),
                ("tx2", ReadWriteSet(reads={"a": 0}, writes={"a": 2}), True),
            ]
        )
        assert ledger.validity_rate() == pytest.approx(0.5)

    def test_rwset_merge(self):
        first = ReadWriteSet(reads={"a": 1}, writes={"x": 1})
        second = ReadWriteSet(reads={"b": 2}, writes={"y": 2})
        first.merge(second)
        assert first.reads == {"a": 1, "b": 2}
        assert first.writes == {"x": 1, "y": 2}


class TestChaincode:
    def test_asset_transfer_moves_balance(self):
        state = WorldState()
        state.put("balance:alice", 100.0)
        chaincode = asset_transfer_chaincode()
        rwset = chaincode.execute(state, {"source": "alice", "target": "bob", "amount": 30.0})
        assert rwset.writes["balance:alice"] == pytest.approx(70.0)
        assert rwset.writes["balance:bob"] == pytest.approx(30.0)
        assert rwset.reads["balance:alice"] == 1

    def test_asset_transfer_overdraft_guard(self):
        chaincode = asset_transfer_chaincode()
        with pytest.raises(ChaincodeError):
            chaincode.execute(WorldState(), {"source": "a", "target": "b", "amount": 5.0,
                                             "allow_overdraft": False})

    def test_provenance_appends_custody(self):
        state = WorldState()
        chaincode = provenance_chaincode()
        rwset = chaincode.execute(state, {"item": "crate-1", "actor": "carrier-9", "step": "shipped"})
        assert rwset.writes["custody:crate-1"] == ["shipped:carrier-9"]

    def test_record_sharing_grants_and_revokes(self):
        state = WorldState()
        chaincode = record_sharing_chaincode()
        grant = chaincode.execute(state, {"patient": "p1", "grantee": "hospital-2", "grant": True})
        assert "hospital-2" in grant.writes["acl:p1"]
        state.put("acl:p1", grant.writes["acl:p1"])
        revoke = chaincode.execute(state, {"patient": "p1", "grantee": "hospital-2", "grant": False})
        assert "hospital-2" not in revoke.writes["acl:p1"]

    def test_registry_install_and_lookup(self):
        registry = ChaincodeRegistry()
        registry.install(asset_transfer_chaincode())
        assert "asset-transfer" in registry
        assert registry.get("asset-transfer").name == "asset-transfer"
        with pytest.raises(KeyError):
            registry.get("missing")


class TestEndorsementAndOrdering:
    def test_endorsement_policy(self):
        policy = EndorsementPolicy(required_organizations=2)
        assert policy.satisfied_by(["org0", "org1"])
        assert policy.satisfied_by(["org0", "org1", "org1"])
        assert not policy.satisfied_by(["org0", "org0"])

    def test_ordering_latency_by_mode(self):
        assert OrderingConfig(mode="solo").ordering_latency() < OrderingConfig(mode="raft").ordering_latency()
        assert OrderingConfig(mode="raft").ordering_latency() < OrderingConfig(mode="bft").ordering_latency()
        with pytest.raises(ValueError):
            OrderingConfig(mode="pow").ordering_latency()


class TestFabricNetwork:
    @pytest.fixture(scope="class")
    def network(self):
        fabric = FabricNetwork(FabricNetworkConfig(organizations=4, peers_per_org=2, seed=1))
        fabric.install_chaincode("default", asset_transfer_chaincode())
        return fabric

    def test_channel_membership(self, network):
        assert len(network.channel_peers("default")) == 8
        assert set(network.msp.organization_names()) == {"org0", "org1", "org2", "org3"}

    def test_unknown_chaincode_rejected(self, network):
        with pytest.raises(KeyError):
            network.submit_transaction("default", "no-such-chaincode", {})

    def test_unknown_channel_rejected(self, network):
        with pytest.raises(KeyError):
            network.install_chaincode("ghost-channel", asset_transfer_chaincode())

    def test_workload_commits_transactions(self):
        fabric = FabricNetwork(FabricNetworkConfig(organizations=4, peers_per_org=2, seed=2))
        fabric.install_chaincode("default", asset_transfer_chaincode())
        metrics = fabric.run_workload("default", "asset-transfer", request_rate=400,
                                      duration=3, key_space=5000)
        assert metrics.committed_valid > 600
        assert metrics.throughput_tps > 200
        assert metrics.latencies.mean() < 1.0
        assert metrics.validity_rate > 0.7

    def test_contention_raises_mvcc_conflicts(self):
        fabric = FabricNetwork(FabricNetworkConfig(organizations=4, peers_per_org=2, seed=3))
        fabric.install_chaincode("default", asset_transfer_chaincode())
        contended = fabric.run_workload("default", "asset-transfer", request_rate=500,
                                        duration=2, key_space=5)
        assert contended.validity_rate < 0.8

    def test_channels_isolate_ledgers(self):
        channels = [
            ChannelConfig(name="trade", organizations=["org0", "org1"]),
            ChannelConfig(name="health", organizations=["org2", "org3"]),
        ]
        fabric = FabricNetwork(
            FabricNetworkConfig(organizations=4, peers_per_org=1, channels=channels, seed=4)
        )
        fabric.install_chaincode("trade", asset_transfer_chaincode())
        fabric.install_chaincode("health", record_sharing_chaincode())
        trade_peers = {peer.node_id for peer in fabric.channel_peers("trade")}
        health_peers = {peer.node_id for peer in fabric.channel_peers("health")}
        assert trade_peers.isdisjoint(health_peers)
        metrics = fabric.run_workload("trade", "asset-transfer", request_rate=200, duration=2)
        assert metrics.committed_valid > 0
        # Peers outside the channel never created a ledger for it.
        for peer in fabric.channel_peers("health"):
            assert "trade" not in peer.ledgers

    def test_channel_with_unknown_org_rejected(self):
        with pytest.raises(KeyError):
            FabricNetwork(
                FabricNetworkConfig(
                    organizations=2,
                    channels=[ChannelConfig(name="bad", organizations=["org0", "ghost"])],
                    seed=5,
                )
            )
