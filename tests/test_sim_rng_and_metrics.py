"""Tests for the seeded RNG, metrics and statistics helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    bootstrap_ci,
    cdf_points,
    describe,
    geometric_mean,
    linear_fit,
    mean,
    percentile,
    stdev,
)
from repro.analysis.tables import ResultTable
from repro.sim.metrics import Counter, MetricsRegistry, Sample, TimeSeries
from repro.sim.rng import SeededRNG


class TestSeededRNG:
    def test_same_seed_same_sequence(self):
        a = SeededRNG(42)
        b = SeededRNG(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seed_differs(self):
        assert SeededRNG(1).random() != SeededRNG(2).random()

    def test_fork_is_reproducible_and_independent(self):
        parent = SeededRNG(7)
        child_a = parent.fork("alpha")
        child_b = SeededRNG(7).fork("alpha")
        other = parent.fork("beta")
        assert child_a.random() == child_b.random()
        assert SeededRNG(7).fork("alpha").random() != other.random()

    def test_exponential_mean(self):
        rng = SeededRNG(3)
        values = [rng.exponential(10.0) for _ in range(20000)]
        assert abs(mean(values) - 10.0) < 0.5

    def test_exponential_rejects_non_positive_mean(self):
        with pytest.raises(ValueError):
            SeededRNG(0).exponential(0.0)

    def test_weibull_positive(self):
        rng = SeededRNG(4)
        assert all(rng.weibull(0.5, 100.0) > 0 for _ in range(100))

    def test_pareto_respects_scale(self):
        rng = SeededRNG(5)
        assert all(rng.pareto(1.5, 2.0) >= 2.0 for _ in range(200))

    def test_poisson_mean(self):
        rng = SeededRNG(6)
        values = [rng.poisson(4.0) for _ in range(5000)]
        assert abs(mean(values) - 4.0) < 0.2

    def test_poisson_zero_mean(self):
        assert SeededRNG(0).poisson(0.0) == 0

    def test_poisson_large_mean_uses_normal_approximation(self):
        rng = SeededRNG(8)
        values = [rng.poisson(200.0) for _ in range(2000)]
        assert abs(mean(values) - 200.0) < 5.0

    def test_zipf_rank_bounds_and_skew(self):
        rng = SeededRNG(7)
        ranks = [rng.zipf_rank(100, 1.0) for _ in range(5000)]
        assert all(1 <= rank <= 100 for rank in ranks)
        top_fraction = sum(1 for rank in ranks if rank <= 10) / len(ranks)
        assert top_fraction > 0.4   # Zipf concentrates mass on low ranks

    def test_bernoulli_bounds(self):
        rng = SeededRNG(9)
        with pytest.raises(ValueError):
            rng.bernoulli(1.5)
        assert rng.bernoulli(1.0) is True
        assert rng.bernoulli(0.0) is False

    def test_weighted_choice_prefers_heavy_weight(self):
        rng = SeededRNG(10)
        picks = [rng.weighted_choice(["a", "b"], [0.95, 0.05]) for _ in range(500)]
        assert picks.count("a") > 400

    def test_weighted_choice_length_mismatch(self):
        with pytest.raises(ValueError):
            SeededRNG(0).weighted_choice(["a"], [0.5, 0.5])

    def test_sample_and_shuffle(self):
        rng = SeededRNG(11)
        population = list(range(50))
        sampled = rng.sample(population, 10)
        assert len(set(sampled)) == 10
        shuffled = rng.shuffle(list(range(10)))
        assert sorted(shuffled) == list(range(10))


class TestMetrics:
    def test_counter_increments(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().increment(-1)

    def test_sample_summary(self):
        sample = Sample()
        sample.extend([1.0, 2.0, 3.0, 4.0])
        summary = sample.summary()
        assert summary["count"] == 4
        assert summary["mean"] == 2.5
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0

    def test_sample_percentile_interpolates(self):
        sample = Sample()
        sample.extend([0.0, 10.0])
        assert sample.percentile(50) == pytest.approx(5.0)

    def test_sample_percentile_bounds(self):
        sample = Sample()
        sample.observe(1.0)
        with pytest.raises(ValueError):
            sample.percentile(150)

    def test_sample_fraction_below(self):
        sample = Sample()
        sample.extend([1, 2, 3, 4, 5])
        assert sample.fraction_below(3) == pytest.approx(0.4)

    def test_sample_cdf_monotone(self):
        sample = Sample()
        sample.extend(range(100))
        cdf = sample.cdf()
        fractions = [fraction for _, fraction in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    def test_empty_sample_statistics(self):
        sample = Sample()
        assert sample.mean() == 0.0
        assert sample.percentile(90) == 0.0
        assert sample.cdf() == []

    def test_timeseries_time_average(self):
        series = TimeSeries()
        series.record(0.0, 10.0)
        series.record(10.0, 20.0)
        series.record(20.0, 20.0)
        assert series.time_average() == pytest.approx(15.0)

    def test_timeseries_last_and_len(self):
        series = TimeSeries()
        assert series.last() is None
        series.record(1.0, 5.0)
        assert series.last() == 5.0
        assert len(series) == 1

    def test_registry_creates_and_reuses(self):
        registry = MetricsRegistry()
        registry.counter("x").increment()
        registry.counter("x").increment()
        assert registry.counter("x").value == 2
        registry.sample("lat").observe(1.0)
        registry.timeseries("pop").record(0.0, 3.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["x"] == 2.0
        assert snapshot["samples"]["lat"] == 1.0
        assert snapshot["series"]["pop"] == 3.0


class TestStatsHelpers:
    def test_mean_and_stdev(self):
        assert mean([1, 2, 3]) == 2.0
        assert stdev([2, 2, 2]) == 0.0
        assert stdev([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0

    def test_percentile_edges(self):
        values = [5.0]
        assert percentile(values, 0) == 5.0
        assert percentile(values, 100) == 5.0
        assert percentile([], 50) == 0.0

    def test_describe_keys(self):
        report = describe([1.0, 2.0, 3.0])
        for key in ("count", "mean", "p50", "p90", "p99", "max"):
            assert key in report

    def test_cdf_points_sorted(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert [value for value, _ in points] == [1.0, 2.0, 3.0]

    def test_bootstrap_ci_contains_mean(self):
        low, high = bootstrap_ci([10.0] * 50, seed=1)
        assert low == pytest.approx(10.0)
        assert high == pytest.approx(10.0)

    def test_bootstrap_ci_spans_true_mean(self):
        values = list(range(100))
        low, high = bootstrap_ci(values, seed=2)
        assert low < mean(values) < high

    def test_linear_fit_recovers_line(self):
        xs = [0.0, 1.0, 2.0, 3.0]
        ys = [1.0, 3.0, 5.0, 7.0]
        slope, intercept = linear_fit(xs, ys)
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_linear_fit_mismatched_lengths(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [1.0, 2.0])

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_percentile_within_range(self, values):
        p50 = percentile(values, 50)
        assert min(values) <= p50 <= max(values)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=2, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_stdev_non_negative(self, values):
        assert stdev(values) >= 0.0


class TestResultTable:
    def test_add_row_positional_and_named(self):
        table = ResultTable(["a", "b"])
        table.add_row(1, 2)
        table.add_row(a=3, b=4)
        assert table.as_dicts() == [{"a": "1", "b": "2"}, {"a": "3", "b": "4"}]

    def test_add_row_wrong_arity(self):
        table = ResultTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_add_row_missing_named_column(self):
        table = ResultTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(a=1)

    def test_render_contains_title_and_values(self):
        table = ResultTable(["metric", "value"], title="My table")
        table.add_row("tps", 123.456)
        text = table.render()
        assert "My table" in text
        assert "tps" in text

    def test_column_accessor(self):
        table = ResultTable(["x"])
        table.add_row(1)
        table.add_row(2)
        assert table.column("x") == ["1", "2"]
        with pytest.raises(KeyError):
            table.column("nope")

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            ResultTable([])
