"""Tests for the PBFT and Raft replication substrates."""

import pytest

from repro.consensus.base import ReplicaParams
from repro.consensus.cluster import ConsensusBenchmark, ConsensusBenchmarkConfig, committee_size_sweep
from repro.consensus.pbft import PBFTCluster, PBFTConfig
from repro.consensus.raft import RaftCluster, RaftConfig


class TestPBFT:
    def test_requires_four_replicas(self):
        with pytest.raises(ValueError):
            PBFTCluster(PBFTConfig(replicas=3))

    def test_fault_tolerance_formula(self):
        assert PBFTConfig(replicas=4).f == 1
        assert PBFTConfig(replicas=7).f == 2
        assert PBFTConfig(replicas=10).f == 3
        assert PBFTConfig(replicas=4).quorum == 3

    def test_commits_requests_with_low_latency(self):
        cluster = PBFTCluster(PBFTConfig(replicas=4, batch_size=50, seed=1))
        metrics = cluster.run_workload(request_rate=1000, duration=3)
        assert metrics.committed_requests > 2000
        assert metrics.mean_latency < 0.5
        assert metrics.throughput_tps > 500

    def test_all_honest_replicas_agree_on_executed_batches(self):
        cluster = PBFTCluster(PBFTConfig(replicas=4, batch_size=20, seed=2))
        cluster.run_workload(request_rate=300, duration=2)
        executed = [replica.executed_up_to for replica in cluster.replicas]
        # Replicas may lag by in-flight batches, but not diverge wildly.
        assert max(executed) - min(executed) <= 3

    def test_tolerates_f_silent_byzantine_replicas(self):
        cluster = PBFTCluster(PBFTConfig(replicas=4, batch_size=50, seed=3))
        cluster.make_byzantine(1)
        metrics = cluster.run_workload(request_rate=500, duration=3)
        assert metrics.committed_requests > 1000

    def test_fails_to_commit_beyond_f_failures(self):
        cluster = PBFTCluster(PBFTConfig(replicas=4, batch_size=50, seed=4))
        cluster.make_byzantine(2)     # more than f=1
        metrics = cluster.run_workload(request_rate=500, duration=2)
        assert metrics.committed_requests == 0

    def test_message_complexity_grows_with_replicas(self):
        small = PBFTCluster(PBFTConfig(replicas=4, batch_size=50, seed=5))
        small_metrics = small.run_workload(request_rate=400, duration=2)
        large = PBFTCluster(PBFTConfig(replicas=13, batch_size=50, seed=5))
        large_metrics = large.run_workload(request_rate=400, duration=2)
        assert large_metrics.messages_per_request > 2 * small_metrics.messages_per_request

    def test_latency_grows_with_committee_size(self):
        small = PBFTCluster(PBFTConfig(replicas=4, batch_size=50, seed=6)).run_workload(300, 2)
        large = PBFTCluster(PBFTConfig(replicas=16, batch_size=50, seed=6)).run_workload(300, 2)
        assert large.mean_latency >= small.mean_latency


class TestRaft:
    def test_requires_three_nodes(self):
        with pytest.raises(ValueError):
            RaftCluster(RaftConfig(replicas=2))

    def test_elects_a_single_leader(self):
        cluster = RaftCluster(RaftConfig(replicas=5, seed=1))
        cluster.start()
        cluster.sim.run(until=2.0)
        leaders = [node for node in cluster.nodes if node.role == "leader"]
        assert len(leaders) == 1
        assert cluster.leader is leaders[0]

    def test_commits_requests(self):
        cluster = RaftCluster(RaftConfig(replicas=5, batch_size=100, seed=2))
        metrics = cluster.run_workload(request_rate=2000, duration=3)
        assert metrics.committed_requests > 4000
        assert metrics.mean_latency < 0.2

    def test_submit_without_leader_returns_false(self):
        cluster = RaftCluster(RaftConfig(replicas=3, seed=3))
        assert cluster.submit() is False

    def test_new_leader_elected_after_crash(self):
        cluster = RaftCluster(RaftConfig(replicas=5, seed=4))
        cluster.start()
        cluster.sim.run(until=2.0)
        old_leader = cluster.crash_leader()
        cluster.sim.run(until=6.0)
        assert cluster.leader_index is not None
        assert cluster.leader_index != old_leader

    def test_followers_replicate_leader_log(self):
        cluster = RaftCluster(RaftConfig(replicas=3, batch_size=50, seed=5))
        cluster.run_workload(request_rate=500, duration=2)
        leader = cluster.leader
        online_lengths = [len(node.log) for node in cluster.nodes if node.online]
        assert max(online_lengths) - min(online_lengths) <= 2
        assert len(leader.log) > 0

    def test_raft_cheaper_than_pbft_in_messages(self):
        raft = RaftCluster(RaftConfig(replicas=5, batch_size=100, seed=6)).run_workload(1000, 2)
        pbft = PBFTCluster(PBFTConfig(replicas=5, batch_size=100, seed=6)).run_workload(1000, 2)
        assert raft.messages_per_request < pbft.messages_per_request


class TestConsensusBenchmark:
    def test_benchmark_runs_both_protocols(self):
        for protocol in ("pbft", "raft"):
            metrics = ConsensusBenchmark(
                ConsensusBenchmarkConfig(protocol=protocol, replicas=4 if protocol == "pbft" else 3,
                                         request_rate=500, duration=2, seed=7)
            ).run()
            assert metrics.committed_requests > 0

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            ConsensusBenchmark(ConsensusBenchmarkConfig(protocol="paxos")).run()

    def test_committee_sweep_rows(self):
        rows = committee_size_sweep([4, 7], request_rate=500, duration=1.5, seed=8)
        assert len(rows) == 2
        assert rows[0]["replicas"] == 4
        assert rows[1]["messages_per_request"] > rows[0]["messages_per_request"]

    def test_metrics_summary_keys(self):
        metrics = ConsensusBenchmark(
            ConsensusBenchmarkConfig(protocol="pbft", replicas=4, request_rate=300, duration=1.5, seed=9)
        ).run()
        summary = metrics.summary()
        for key in ("throughput_tps", "mean_latency_s", "p99_latency_s", "messages_per_request"):
            assert key in summary
