"""Fixed-seed determinism guards for the fast-path simulation core.

These tests pin the engine's execution-order contract: two runs of the same
workload with the same seed must be bit-identical — same event counts, same
chain statistics, same metric samples.  They were introduced alongside the
slotted event-loop rewrite to guarantee the fast path (now-bucket merging,
cancelled-entry skipping, cached link resolution) never changes observable
simulation results.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.blockchain.network import PoWNetwork, PoWNetworkConfig
from repro.p2p.lookup import LookupExperiment, LookupExperimentConfig
from repro.sim.engine import Simulator


def _pow_fingerprint(seed: int = 7):
    network = PoWNetwork(
        PoWNetworkConfig(miner_count=6, duration_blocks=30, seed=seed)
    )
    result = network.run()
    chain = result.chain
    return (
        chain.total_blocks,
        chain.main_chain_length,
        chain.stale_blocks,
        chain.stale_rate,
        chain.forks_observed,
        chain.max_reorg_depth,
        chain.mean_interblock_time,
        result.duration,
        result.throughput_tps,
        result.mean_confirmation_latency,
        result.p90_confirmation_latency,
        result.mean_finality_latency,
        result.mean_propagation_delay,
        tuple(sorted(result.blocks_by_miner.items())),
        network.sim.processed,
        network.network.messages_sent,
        network.network.messages_delivered,
        network.network.messages_dropped,
    )


def _dht_fingerprint(seed: int = 3):
    experiment = LookupExperiment(
        LookupExperimentConfig(network_size=100, lookups=30, seed=seed)
    )
    stats = experiment.run()
    return (
        stats.lookups,
        stats.failures,
        stats.timeouts_per_lookup,
        stats.hops_per_lookup,
        stats.latencies.mean(),
        stats.latencies.percentile(90),
        experiment.dht.sim.processed,
    )


class TestPoWDeterminism:
    def test_same_seed_is_bit_identical(self):
        assert _pow_fingerprint(seed=7) == _pow_fingerprint(seed=7)

    def test_different_seeds_diverge(self):
        assert _pow_fingerprint(seed=7) != _pow_fingerprint(seed=8)


class TestDHTDeterminism:
    def test_same_seed_is_bit_identical(self):
        assert _dht_fingerprint(seed=3) == _dht_fingerprint(seed=3)


class TestEngineOrderDeterminism:
    def test_mixed_workload_event_order_is_reproducible(self):
        def run_once():
            sim = Simulator()
            order = []

            def tick(label, delay):
                order.append((label, sim.now))
                if len(order) < 200:
                    sim.schedule(delay, tick, label, delay)

            for index in range(5):
                sim.schedule(0.0, tick, f"t{index}", 0.5 + index * 0.25)
            cancelled = sim.schedule(0.75, order.append, ("never", 0.0))
            cancelled.cancel()
            sim.schedule(0.0, order.append, ("immediate", sim.now))
            sim.run(max_events=400)
            return order, sim.processed, sim.pending

        assert run_once() == run_once()


#: Runs in a child interpreter: forks the RNG tree the way adapters do
#: and prints a fingerprint of the derived streams.  Any dependence on
#: builtin hash() (the historical fork() bug reprolint rule RL001 now
#: guards against) shows up as a different fingerprint across children
#: started with different PYTHONHASHSEED values.
_FORK_FINGERPRINT_PROGRAM = """
from repro.sim.rng import SeededRNG

root = SeededRNG(2026)
parts = []
for label in ("network", "workload", "churn", "node-17"):
    child = root.fork(label)
    grandchild = child.fork("latency")
    parts.append(repr([round(child.random(), 12) for _ in range(4)]))
    parts.append(repr([grandchild.randint(0, 10**9) for _ in range(4)]))
print("|".join(parts))
"""


class TestHashSeedIndependence:
    def test_fork_streams_survive_pythonhashseed(self):
        """SeededRNG.fork must not depend on the process hash salt.

        Spawns fresh interpreters with PYTHONHASHSEED=0, 1 and random and
        asserts the fork-derived draw sequences are bit-identical.  This
        is the process-level end-to-end check behind lint rule RL001.
        """
        src = str(Path(__file__).resolve().parent.parent / "src")
        outputs = []
        for hash_seed in ("0", "1", "random"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
            result = subprocess.run(
                [sys.executable, "-c", _FORK_FINGERPRINT_PROGRAM],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(result.stdout.strip())
        assert outputs[0]  # the program really produced draws
        assert outputs[0] == outputs[1] == outputs[2]
