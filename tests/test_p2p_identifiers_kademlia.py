"""Tests for the identifier space and the Kademlia DHT simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.p2p.identifiers import (
    ID_BITS,
    ID_SPACE,
    bucket_index,
    closest,
    key_for,
    random_id,
    ring_distance,
    shares_prefix_bits,
    xor_distance,
)
from repro.p2p.kademlia import KademliaConfig, KademliaNetwork
from repro.sim.rng import SeededRNG


class TestIdentifiers:
    def test_random_id_in_range(self):
        rng = SeededRNG(1)
        for _ in range(100):
            assert 0 <= random_id(rng) < ID_SPACE

    def test_key_for_deterministic(self):
        assert key_for("hello") == key_for("hello")
        assert key_for("hello") != key_for("world")
        assert 0 <= key_for("hello") < ID_SPACE

    def test_xor_distance_properties(self):
        assert xor_distance(5, 5) == 0
        assert xor_distance(3, 10) == xor_distance(10, 3)

    def test_ring_distance_wraps(self):
        assert ring_distance(10, 20) == 10
        assert ring_distance(20, 10) == ID_SPACE - 10
        assert ring_distance(7, 7) == 0

    def test_bucket_index(self):
        assert bucket_index(0, 1) == 0
        assert bucket_index(0, 2) == 1
        assert bucket_index(0, 1 << 159) == 159
        assert bucket_index(5, 5) == -1

    def test_closest_sorting(self):
        ids = [0b1000, 0b0001, 0b0011]
        assert closest(ids, 0b0000, count=2) == [0b0001, 0b0011]

    def test_shares_prefix_bits(self):
        a = 0b1010 << (ID_BITS - 4)
        b = 0b1011 << (ID_BITS - 4)
        assert shares_prefix_bits(a, b, 3)
        assert not shares_prefix_bits(a, b, 4)
        with pytest.raises(ValueError):
            shares_prefix_bits(a, b, ID_BITS + 1)

    @given(st.integers(min_value=0, max_value=ID_SPACE - 1), st.integers(min_value=0, max_value=ID_SPACE - 1))
    @settings(max_examples=80, deadline=None)
    def test_xor_distance_symmetry_and_identity(self, a, b):
        assert xor_distance(a, b) == xor_distance(b, a)
        assert xor_distance(a, a) == 0

    @given(
        st.integers(min_value=0, max_value=ID_SPACE - 1),
        st.integers(min_value=0, max_value=ID_SPACE - 1),
        st.integers(min_value=0, max_value=ID_SPACE - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_xor_triangle_inequality(self, a, b, c):
        assert xor_distance(a, c) <= xor_distance(a, b) + xor_distance(b, c)

    @given(st.integers(min_value=0, max_value=ID_SPACE - 1), st.integers(min_value=0, max_value=ID_SPACE - 1))
    @settings(max_examples=80, deadline=None)
    def test_ring_distance_in_range(self, a, b):
        assert 0 <= ring_distance(a, b) < ID_SPACE


def small_dht(size=60, config=None, seed=1):
    return KademliaNetwork(size=size, config=config or KademliaConfig(), seed=seed)


class TestKademliaRoutingTable:
    def test_network_requires_two_nodes(self):
        with pytest.raises(ValueError):
            KademliaNetwork(size=1)

    def test_bootstrap_populates_buckets(self):
        dht = small_dht()
        assert all(len(node.contacts()) > 0 for node in dht.nodes.values())

    def test_bucket_size_respected(self):
        dht = small_dht(config=KademliaConfig(k=4))
        for node in dht.nodes.values():
            for bucket in node.buckets.values():
                assert len(bucket) <= 4

    def test_observe_moves_to_most_recent(self):
        dht = small_dht()
        node = next(iter(dht.nodes.values()))
        contact = node.contacts()[0]
        node.observe(contact)
        index = max(
            (i for i, bucket in node.buckets.items() if contact in bucket), default=None
        )
        assert node.buckets[index][-1] == contact

    def test_observe_ignores_self(self):
        dht = small_dht()
        node = next(iter(dht.nodes.values()))
        before = len(node.contacts())
        node.observe(node.node_id)
        assert len(node.contacts()) == before

    def test_evict_removes_contact(self):
        dht = small_dht()
        node = next(iter(dht.nodes.values()))
        contact = node.contacts()[0]
        node.evict(contact)
        assert contact not in node.contacts()

    def test_closest_contacts_sorted_by_distance(self):
        dht = small_dht()
        node = next(iter(dht.nodes.values()))
        target = random_id(SeededRNG(9))
        result = node.closest_contacts(target, count=5)
        distances = [xor_distance(c, target) for c in result]
        assert distances == sorted(distances)

    def test_stale_injection_increases_staleness(self):
        clean = small_dht(config=KademliaConfig(initial_stale_fraction=0.0))
        stale = small_dht(config=KademliaConfig(initial_stale_fraction=0.5))
        assert stale.routing_table_staleness() > clean.routing_table_staleness()


class TestKademliaLookup:
    def test_lookup_completes_and_finds_close_nodes(self):
        dht = small_dht(size=80)
        rng = SeededRNG(5)
        target = random_id(rng)
        results = []
        dht.lookup(dht.node_ids()[0], target, results.append)
        dht.sim.run(until=300.0)
        assert len(results) == 1
        result = results[0]
        assert result.success
        assert result.hops > 0
        assert len(result.closest) > 0
        # The closest found should be among the true closest of the whole network.
        true_closest = set(closest(dht.node_ids(), target, count=10))
        assert set(result.closest[:3]) & true_closest

    def test_lookup_event_triggered_with_result(self):
        dht = small_dht(size=50)
        rng = SeededRNG(6)
        done = dht.lookup(dht.node_ids()[0], random_id(rng))
        dht.sim.run(until=300.0)
        assert done.triggered
        assert done.value.success

    def test_lookup_latency_increases_with_offline_nodes(self):
        fast = small_dht(size=80, seed=7)
        slow = small_dht(size=80, seed=7)
        for node_id in slow.node_ids()[: len(slow.node_ids()) // 2]:
            slow.set_node_online(node_id, False)
        rng = SeededRNG(8)
        targets = [random_id(rng) for _ in range(10)]

        def run(network):
            results = []
            online = [n.node_id for n in network.online_nodes()]
            for index, target in enumerate(targets):
                network.lookup(online[index % len(online)], target, results.append)
            network.sim.run(until=2000.0)
            return sum(r.latency for r in results if r.success) / max(
                1, sum(1 for r in results if r.success)
            )

        assert run(slow) > run(fast)

    def test_metrics_recorded(self):
        dht = small_dht(size=50)
        rng = SeededRNG(10)
        dht.lookup(dht.node_ids()[0], random_id(rng))
        dht.sim.run(until=200.0)
        assert dht.metrics.counter("lookups").value == 1
        assert dht.metrics.sample("lookup_latency").count() == 1

    def test_maintenance_reduces_staleness(self):
        dht = small_dht(size=100, config=KademliaConfig(initial_stale_fraction=0.4), seed=3)
        before = dht.routing_table_staleness()
        dht.warm_up(passes=3)
        assert dht.routing_table_staleness() < before

    def test_config_presets_differ(self):
        kad = KademliaConfig.kad_like()
        mainline = KademliaConfig.mainline_like()
        assert kad.rpc_timeout < mainline.rpc_timeout
        assert kad.alpha > mainline.alpha
        assert kad.initial_stale_fraction < mainline.initial_stale_fraction
