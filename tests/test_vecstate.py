"""Vectorized overlay state (repro.sim.vecstate) and the large-N fast path.

The fast path trades the scalar simulator's per-node objects for parallel
arrays, so the things worth testing are the exactness claims (``xor_closest``
is true XOR nearest-neighbour; bucket subtree ranges match the definition;
churn is counter-deterministic) and the table invariants every maintenance
pass must preserve (no duplicate contacts in a bucket, contacts inside their
subtree, no self-contacts).  On top sit the end-to-end guarantees the
scenario layer relies on: :class:`repro.p2p.fastkad.FastKademliaOverlay`
is deterministic, reports the scalar summary contract, and is reachable
through the ``kad-fast`` overlay adapter and the CLI.
"""

import numpy as np
import pytest

from repro.p2p.fastkad import FastKademliaConfig, FastKademliaOverlay
from repro.p2p.kademlia import KademliaConfig
from repro.sim.churn import ChurnModel
from repro.sim.vecstate import (
    EMPTY,
    VecChurn,
    VecIdSpace,
    VecRoutingTable,
    draw_durations,
    hashed_u64,
    hashed_uniform,
    splitmix64,
    stream_key,
    xor_closest,
)


class TestHashing:
    def test_splitmix64_is_a_pure_function(self):
        x = np.arange(1000, dtype=np.uint64)
        assert np.array_equal(splitmix64(x.copy()), splitmix64(x.copy()))

    def test_splitmix64_known_vector(self):
        # First output of the reference splitmix64 stream seeded with 0
        # (golden-ratio increment + finalizer): 0xE220A8397B1DCDAF.
        assert int(splitmix64(np.array([0], dtype=np.uint64))[0]) == \
            0xE220A8397B1DCDAF
        # and inputs must scramble away from themselves.
        scrambled = splitmix64(np.array([1, 2, 3], dtype=np.uint64))
        assert not np.any(scrambled == np.array([1, 2, 3], dtype=np.uint64))

    def test_stream_keys_separate_labels_and_seeds(self):
        assert stream_key(0, "a") != stream_key(0, "b")
        assert stream_key(0, "a") != stream_key(1, "a")
        assert stream_key(3, "churn") == stream_key(3, "churn")

    def test_hashed_uniform_is_in_unit_interval_and_deterministic(self):
        key = stream_key(9, "test")
        u = hashed_uniform(key, np.arange(100_000, dtype=np.uint64))
        assert np.all(u > 0.0) and np.all(u <= 1.0)
        assert abs(float(u.mean()) - 0.5) < 0.01
        again = hashed_uniform(key, np.arange(100_000, dtype=np.uint64))
        assert np.array_equal(u, again)

    def test_hashed_u64_counters_matter(self):
        key = stream_key(0, "ctr")
        nodes = np.arange(64, dtype=np.uint64)
        a = hashed_u64(key, nodes, np.uint64(0))
        b = hashed_u64(key, nodes, np.uint64(1))
        assert not np.array_equal(a, b)

    def test_draw_durations_match_the_scalar_families(self):
        u = np.array([0.1, 0.5, 0.9])
        exponential = ChurnModel(mean_session=100.0, mean_downtime=10.0,
                                 session_distribution="exponential")
        assert draw_durations(exponential, 100.0, u) == pytest.approx(
            -100.0 * np.log(u))
        weibull = ChurnModel(mean_session=100.0, mean_downtime=10.0,
                             session_distribution="weibull",
                             weibull_shape=0.5)
        drawn = draw_durations(weibull, 100.0, u)
        assert np.all(drawn > 0)
        # Mean preserved: scale = mean / gamma(1 + 1/shape).
        big = draw_durations(
            weibull, 100.0,
            hashed_uniform(stream_key(0, "w"), np.arange(200_000, dtype=np.uint64)))
        assert float(big.mean()) == pytest.approx(100.0, rel=0.05)


class TestIdSpace:
    def test_ids_unique_sorted_and_deterministic(self):
        space = VecIdSpace(5000, seed=3)
        assert len(space) == 5000
        assert len(np.unique(space.ids)) == 5000
        assert np.array_equal(space.ids, np.sort(space.ids))
        assert np.array_equal(space.ids, VecIdSpace(5000, seed=3).ids)
        assert not np.array_equal(space.ids, VecIdSpace(5000, seed=4).ids)

    def test_rejects_degenerate_population(self):
        with pytest.raises(ValueError):
            VecIdSpace(1)


class TestXorClosest:
    def test_sorted_neighbour_shortcut_counterexample(self):
        # t=8 against [0, 7]: numerically nearest is 7, XOR-nearest is 0
        # (8^0=8 < 8^7=15).  The descent must get this right.
        ids = np.array([0, 7], dtype=np.uint64)
        indices, distances = xor_closest(ids, np.array([8], dtype=np.uint64))
        assert indices[0] == 0
        assert distances[0] == 8

    def test_matches_brute_force(self):
        space = VecIdSpace(700, seed=1)
        key = stream_key(99, "targets")
        targets = hashed_u64(key, np.arange(300, dtype=np.uint64))
        # Include exact members and near-boundary targets.
        targets = np.concatenate([targets, space.ids[::97],
                                  space.ids[::89] ^ np.uint64(1),
                                  np.array([0, 2**64 - 1], dtype=np.uint64)])
        indices, distances = xor_closest(space.ids, targets)
        brute = (space.ids[None, :] ^ targets[:, None]).min(axis=1)
        assert np.array_equal(distances, brute)
        assert np.array_equal(space.ids[indices] ^ targets, brute)

    def test_subset_population(self):
        space = VecIdSpace(500, seed=2)
        online = space.ids[::3]
        targets = hashed_u64(stream_key(5, "t"), np.arange(64, dtype=np.uint64))
        _, distances = xor_closest(online, targets)
        brute = (online[None, :] ^ targets[:, None]).min(axis=1)
        assert np.array_equal(distances, brute)

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            xor_closest(np.array([], dtype=np.uint64),
                        np.array([1], dtype=np.uint64))


def table_invariants(table: VecRoutingTable) -> None:
    """No self-contacts, no in-bucket duplicates, contacts in-subtree."""
    ids = table.space.ids
    n, buckets, k = table.table.shape
    for bucket in range(buckets):
        rows = table.table[:, bucket, :]
        filled = rows != EMPTY
        # in-subtree: every contact sits inside the precomputed range.
        lo = table.range_lo[:, bucket][:, None]
        hi = lo + table.range_len[:, bucket][:, None]
        assert np.all(~filled | ((rows >= lo) & (rows < hi)))
        # no self-contacts (a node is never inside its own sibling subtree,
        # so this follows from in-subtree; assert it directly anyway).
        own = np.arange(n, dtype=np.int64)[:, None]
        assert not np.any(filled & (rows == own))
        # no duplicates within one bucket row.
        ordered = np.sort(np.where(filled, rows, np.int32(-1 - own)), axis=1)
        assert not np.any((ordered[:, 1:] == ordered[:, :-1]) & (ordered[:, 1:] >= 0))


class TestRoutingTable:
    def test_bucket_ranges_match_the_xor_subtree_definition(self):
        space = VecIdSpace(400, seed=0)
        table = VecRoutingTable(space, k=4, seed=0)
        ids = space.ids
        for node in (0, 17, 399):
            for bucket in range(table.bucket_count):
                bit = 63 - bucket
                mask = (np.uint64(1) << np.uint64(bit)) - np.uint64(1)
                base = (ids[node] ^ (np.uint64(1) << np.uint64(bit))) & ~mask
                member = (ids & ~mask) == base
                lo = table.range_lo[node, bucket]
                length = table.range_len[node, bucket]
                assert member.sum() == length
                if length:
                    assert member[lo] and member[lo + length - 1]

    def test_bootstrap_invariants_and_determinism(self):
        space = VecIdSpace(600, seed=5)
        table = VecRoutingTable(space, k=4, seed=5, stale_fraction=0.25)
        table_invariants(table)
        stale_fraction = float(table.stale[table.table != EMPTY].mean())
        assert stale_fraction == pytest.approx(0.25, abs=0.05)
        again = VecRoutingTable(space, k=4, seed=5, stale_fraction=0.25)
        assert np.array_equal(table.table, again.table)
        assert np.array_equal(table.stale, again.stale)

    def test_small_buckets_hold_the_whole_subtree(self):
        space = VecIdSpace(300, seed=1)
        table = VecRoutingTable(space, k=8, seed=1)
        # Wherever the subtree has at most k members, the bucket must
        # hold every one of them (sequential fill, no sampling).
        counts = (table.table != EMPTY).sum(axis=2)
        small = table.range_len <= table.k
        assert np.array_equal(counts[small], table.range_len[small])

    def test_evict_offline_clears_dead_entries(self):
        space = VecIdSpace(500, seed=2)
        table = VecRoutingTable(space, k=4, seed=2)
        online = np.ones(500, dtype=bool)
        online[::2] = False
        before = int((table.table != EMPTY).sum())
        evicted = table.evict_offline(online, detection=1.0)
        assert evicted > 0
        filled = table.table != EMPTY
        assert int(filled.sum()) == before - evicted
        # detection=1.0 leaves no offline contact behind.
        assert np.all(online[np.where(filled, table.table, np.int32(0))]
                      | ~filled)
        table_invariants(table)

    def test_refresh_fills_only_with_live_contacts_and_keeps_invariants(self):
        space = VecIdSpace(500, seed=3)
        table = VecRoutingTable(space, k=4, seed=3)
        online = np.zeros(500, dtype=bool)
        online[::2] = True
        table.evict_offline(online, detection=1.0)
        filled_before = int((table.table != EMPTY).sum())
        added = 0
        for _ in range(6):
            added += table.refresh(online, samples=4)
        filled_after = int((table.table != EMPTY).sum())
        assert added == filled_after - filled_before
        assert added > 0
        table_invariants(table)
        # Every slot refresh filled points at an online node.
        filled = table.table != EMPTY
        assert np.all(online[np.where(filled, table.table, np.int32(0))]
                      | ~filled)

    def test_staleness_counts_stale_and_offline(self):
        space = VecIdSpace(200, seed=4)
        table = VecRoutingTable(space, k=4, seed=4)
        everyone = np.ones(200, dtype=bool)
        assert table.staleness(everyone) == 0.0
        nobody = np.zeros(200, dtype=bool)
        assert table.staleness(nobody) == 1.0


class TestVecChurn:
    MODEL = ChurnModel.kad_like()

    def test_steady_state_availability(self):
        churn = VecChurn(50_000, self.MODEL, seed=0)
        expected = self.MODEL.availability
        assert churn.online.mean() == pytest.approx(expected, abs=0.01)

    def test_exponential_equilibrium_is_stationary(self):
        # For memoryless sessions the fresh-draw init IS the stationary
        # law, so hours of churn must not move the online fraction.  (The
        # heavy-tailed kad model legitimately relaxes below availability
        # at first — the inspection paradox — so only the exponential
        # case pins an exact level.)
        model = ChurnModel(session_distribution="exponential",
                           mean_session=3600.0, mean_downtime=1800.0)
        churn = VecChurn(50_000, model, seed=0)
        expected = model.availability
        assert churn.online.mean() == pytest.approx(expected, abs=0.01)
        churn.advance(6 * 3600.0)
        assert churn.online.mean() == pytest.approx(expected, abs=0.01)

    def test_advance_schedule_invariance(self):
        """The trajectory is a pure function of (seed, node, epoch): one
        big advance and many small ones land in the identical state."""
        coarse = VecChurn(2000, self.MODEL, seed=7)
        fine = VecChurn(2000, self.MODEL, seed=7)
        coarse.advance(7200.0)
        for step in range(1, 721):
            fine.advance(step * 10.0)
        assert np.array_equal(coarse.online, fine.online)
        assert np.array_equal(coarse.next_transition, fine.next_transition)
        assert np.array_equal(coarse.epoch, fine.epoch)
        assert coarse.join_events == fine.join_events
        assert coarse.leave_events == fine.leave_events

    def test_transitions_counted_and_rate_positive(self):
        churn = VecChurn(5000, self.MODEL, seed=1)
        transitions = churn.advance(3600.0)
        assert transitions == churn.join_events + churn.leave_events
        assert transitions > 0
        assert churn.churn_rate_per_hour() > 0.0

    def test_zero_downtime_does_not_stall(self):
        model = ChurnModel(mean_session=60.0, mean_downtime=0.0)
        churn = VecChurn(200, model, seed=0)
        churn.advance(3600.0)  # must terminate
        assert churn.now == 3600.0

    def test_online_indices_are_sorted_ranks(self):
        churn = VecChurn(1000, self.MODEL, seed=3)
        indices = churn.online_indices()
        assert np.array_equal(indices, np.sort(indices))
        assert len(indices) == churn.online_count()


def fast_config(**overrides) -> FastKademliaConfig:
    defaults = dict(network_size=2000, lookups=300, lookup_interval=0.05,
                    kademlia=KademliaConfig.kad_like(),
                    churn=ChurnModel.kad_like(), seed=7, warmup=300.0,
                    wave_size=128)
    defaults.update(overrides)
    return FastKademliaConfig(**defaults)


class TestFastKademliaOverlay:
    def test_run_is_deterministic(self):
        first = FastKademliaOverlay(fast_config()).run()
        second = FastKademliaOverlay(fast_config()).run()
        assert first == second

    def test_summary_matches_the_scalar_contract(self):
        summary = FastKademliaOverlay(fast_config()).run()
        scalar_keys = {
            "lookups", "median_latency_s", "p90_latency_s", "p99_latency_s",
            "mean_latency_s", "failure_rate", "timeouts_per_lookup",
            "hops_per_lookup", "routing_staleness", "fraction_within_5s",
        }
        assert scalar_keys <= summary.keys()
        assert summary["lookups"] == 300.0
        assert 0.0 <= summary["failure_rate"] < 0.5
        assert summary["median_latency_s"] > 0.0
        assert summary["p99_latency_s"] >= summary["p90_latency_s"] >= \
            summary["median_latency_s"]
        assert summary["hops_per_lookup"] >= 1.0
        assert summary["events_processed"] > 0.0

    def test_streaming_metrics_same_trajectory(self):
        exact = FastKademliaOverlay(
            fast_config(metrics="exact", lookups=1500)).run()
        streaming = FastKademliaOverlay(
            fast_config(metrics="streaming", lookups=1500)).run()
        # The trajectory (and so every non-sketched metric) is identical;
        # only percentile-derived values may move within the sketch error.
        for key in ("lookups", "failure_rate", "hops_per_lookup",
                    "timeouts_per_lookup", "events_processed",
                    "routing_staleness", "mean_latency_s"):
            assert streaming[key] == pytest.approx(exact[key], rel=1e-9), key
        for key in ("median_latency_s", "p90_latency_s", "p99_latency_s"):
            assert streaming[key] == pytest.approx(exact[key], rel=0.025), key

    def test_churnless_network_rarely_fails(self):
        summary = FastKademliaOverlay(
            fast_config(churn=None, warmup=0.0)).run()
        assert summary["failure_rate"] < 0.05
        assert summary["online_fraction"] == 1.0


class TestScenarioIntegration:
    def test_kad_fast_adapter_round_trip(self):
        from repro.scenarios.registry import get_scenario
        from repro.scenarios.runner import run_sweep

        spec = get_scenario("kademlia-churn-100k")
        assert spec.architecture["overlay"] == "kad-fast"
        assert spec.metrics == "streaming"
        results = run_sweep("kademlia-churn-100k",
                            overrides={"topology.size": 1500,
                                       "workload.lookups": 100})
        (result,) = results
        assert result.metrics["lookups"] == 100.0
        assert result.metrics["median_latency_s"] > 0.0

    def test_metrics_knob_only_appears_when_non_default(self):
        from repro.scenarios.registry import get_scenario

        exact_spec = get_scenario("kad-lookup")
        assert exact_spec.metrics == "exact"
        assert "metrics" not in exact_spec.to_dict()
        streaming_spec = get_scenario("kademlia-churn-100k")
        assert streaming_spec.to_dict()["metrics"] == "streaming"

    def test_spec_rejects_unknown_metrics_mode(self):
        from repro.scenarios.spec import ScenarioSpec

        with pytest.raises(ValueError):
            ScenarioSpec(name="x", family="overlay", metrics="bogus")

    def test_overlay_scaling_large_sweeps_the_fast_path(self):
        from repro.scenarios.registry import get_scenario

        spec = get_scenario("overlay-scaling-large")
        assert spec.architecture["overlay"] == "kad-fast"
        assert spec.sweeps["topology.size"][-1] >= 10_000

    def test_cli_profile_flag_end_to_end(self, tmp_path, capsys):
        from repro.run import main as run_main

        base = ["kademlia-churn-100k", "--quiet",
                "--set", "topology.size=1500",
                "--set", "workload.lookups=400",
                "--runs-dir", str(tmp_path)]
        assert run_main(base + ["--save", "exact",
                                "--set", "metrics=exact"]) == 0
        assert run_main(base + ["--save", "sketch"]) == 0
        capsys.readouterr()
        # Zero tolerance: the sketched percentiles drift.
        strict = run_main(["diff", "exact", "sketch", "--quiet",
                           "--runs-dir", str(tmp_path)])
        assert strict == 1
        # The sketch profile absorbs exactly that drift; --tol can still
        # override a profile entry back to zero tolerance.
        assert run_main(["diff", "exact", "sketch", "--quiet",
                         "--profile", "sketch",
                         "--runs-dir", str(tmp_path)]) == 0
        assert run_main(["diff", "exact", "sketch", "--quiet",
                         "--profile", "sketch",
                         "--tol", "p99_latency_s=0",
                         "--runs-dir", str(tmp_path)]) == 1

    def test_cli_unknown_profile_is_a_clean_error(self, tmp_path, capsys):
        from repro.run import main as run_main

        with pytest.raises(SystemExit, match="unknown tolerance profile"):
            run_main(["diff", "a", "b", "--profile", "nope",
                      "--runs-dir", str(tmp_path)])
