"""Distributed execution: wire protocol, broker accounting, byte-identity.

The contract under test is the same one the in-process backends carry:
unit jobs are pure functions of ``(spec, seed)``, results merge by
content-addressed key, so the distributed path — broker, leases, worker
deaths, retries, any completion order — must produce output
byte-identical to :class:`SerialBackend`.  The broker's lease accounting
is tested at the :class:`BrokerQueue` level (no sockets), the framing at
the socket level, and the whole stack end-to-end with an in-process
:class:`BrokerServer` plus worker threads against the committed
``figure1`` golden.
"""

import json
import socket
import threading
import time
from pathlib import Path

import pytest

from repro.analysis.runstore import RunStore
from repro.distributed import (
    BrokerQueue,
    BrokerServer,
    DistributedBackend,
    FrameError,
    MAX_FRAME_BYTES,
    Worker,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.distributed.broker import policy_from_dict, policy_to_dict
from repro.distributed.protocol import connect, format_address
from repro.distributed.service import ServiceServer
from repro.scenarios import (
    FaultPlan,
    FaultSpec,
    JobExecutionError,
    JobPolicy,
    SerialBackend,
    compile_study,
    execute_plan,
)

from test_execution import FIGURE1_TRIMS

GOLDEN_FIGURE1 = Path(__file__).parent / "goldens" / "study-figure1.json"


def _job(key, seed=1, scenario="s", spec=None):
    return {"key": key, "spec": spec or {"name": scenario}, "seed": seed,
            "scenario": scenario}


def _drain_until(events, kind):
    """Pop events until one of ``kind`` arrives (bounded, test-safe)."""
    for _ in range(100):
        event = events.get(timeout=5.0)
        if event["type"] == kind:
            return event
    raise AssertionError(f"no {kind!r} event arrived")


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_frame_round_trip(self):
        a, b = socket.socketpair()
        try:
            message = {"type": "job", "key": "k-s1", "seed": 3,
                       "metrics": {"x": 0.125, "n": 7},
                       "nested": {"list": [1, 2.5, "three", None, True]}}
            send_frame(a, message)
            assert recv_frame(b) == message
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_truncated_header_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\x00\x00")  # half a length prefix
            a.close()
            with pytest.raises(FrameError):
                recv_frame(b)
        finally:
            b.close()

    def test_truncated_body_raises(self):
        a, b = socket.socketpair()
        try:
            payload = json.dumps({"type": "ping"}).encode()
            a.sendall(len(payload).to_bytes(4, "big") + payload[:-3])
            a.close()
            with pytest.raises(FrameError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected_both_sides(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(FrameError):
                send_frame(a, {"blob": "x" * (MAX_FRAME_BYTES + 1)})
            a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(FrameError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_dict_and_bad_json_raise(self):
        for payload in (b"[1, 2, 3]", b"{not json"):
            a, b = socket.socketpair()
            try:
                a.sendall(len(payload).to_bytes(4, "big") + payload)
                with pytest.raises(FrameError):
                    recv_frame(b)
            finally:
                a.close()
                b.close()

    def test_parse_address_forms(self):
        assert parse_address("127.0.0.1:7480") == ("tcp", ("127.0.0.1", 7480))
        assert parse_address(":7480") == ("tcp", ("127.0.0.1", 7480))
        assert parse_address("unix:/tmp/b.sock") == ("unix", "/tmp/b.sock")
        for bad in ("", "nonsense", "host:", "host:notaport"):
            with pytest.raises(ValueError):
                parse_address(bad)

    def test_format_address_round_trips(self):
        for text in ("127.0.0.1:7480", "unix:/tmp/b.sock"):
            assert format_address(parse_address(text)) == text

    def test_stale_unix_socket_is_reclaimed(self, tmp_path):
        from repro.distributed.protocol import create_listener
        address = f"unix:{tmp_path / 'b.sock'}"
        dead = create_listener(address)
        dead.close()  # killed broker: socket file stays on disk
        reborn = create_listener(address)  # must not EADDRINUSE
        reborn.close()

    def test_live_unix_socket_is_not_stolen(self, tmp_path):
        from repro.distributed.protocol import create_listener
        address = f"unix:{tmp_path / 'b.sock'}"
        alive = create_listener(address)
        try:
            with pytest.raises(OSError, match="live listener"):
                create_listener(address)
        finally:
            alive.close()

    def test_policy_wire_round_trip(self):
        policy = JobPolicy(max_retries=3, timeout_s=12.5, keep_going=True,
                           backoff_base_s=0.01)
        rebuilt = policy_from_dict(policy_to_dict(policy))
        assert rebuilt == policy
        assert policy_from_dict(None) == JobPolicy()


# ----------------------------------------------------------------------
# BrokerQueue lease accounting (no sockets)
# ----------------------------------------------------------------------
class TestBrokerQueue:
    def test_dispatch_in_plan_order_and_run_done(self):
        queue = BrokerQueue()
        events = queue.submit("r", [_job("a"), _job("b")], JobPolicy())
        first = queue.lease("w1")
        second = queue.lease("w2")
        assert (first["key"], second["key"]) == ("a", "b")
        assert first["attempt"] == 1
        assert queue.complete(first["lease"], {"m": 1.0})
        assert queue.complete(second["lease"], {"m": 2.0})
        assert _drain_until(events, "job-done")["key"] == "a"
        assert _drain_until(events, "run-done")["completed"] == 2

    def test_empty_run_completes_immediately(self):
        queue = BrokerQueue()
        events = queue.submit("r", [], JobPolicy())
        assert events.get(timeout=1.0)["type"] == "run-done"

    def test_duplicate_run_id_rejected(self):
        queue = BrokerQueue()
        queue.submit("r", [_job("a")], JobPolicy())
        with pytest.raises(ValueError):
            queue.submit("r", [_job("b")], JobPolicy())

    def test_reported_failure_charges_attempt_and_retries(self):
        queue = BrokerQueue()
        events = queue.submit(
            "r", [_job("a")], JobPolicy(max_retries=1, backoff_base_s=0.0))
        lease = queue.lease("w")
        assert queue.fail(lease["lease"], "exception", "boom")
        retry = queue.lease("w", wait_s=2.0)
        assert retry["type"] == "job" and retry["attempt"] == 2
        assert queue.complete(retry["lease"], {"m": 1.0})
        assert _drain_until(events, "run-done")["failed"] == 0

    def test_exhausted_budget_manifests_job_failure(self):
        queue = BrokerQueue()
        events = queue.submit(
            "r", [_job("a", seed=4, scenario="sc")],
            JobPolicy(max_retries=1, backoff_base_s=0.0))
        for expected_attempt in (1, 2):
            lease = queue.lease("w", wait_s=2.0)
            assert lease["attempt"] == expected_attempt
            assert queue.fail(lease["lease"], "exception", "boom")
        failed = _drain_until(events, "job-failed")
        assert failed["failure"]["key"] == "a"
        assert failed["failure"]["attempts"] == 2
        assert failed["failure"]["kind"] == "exception"
        assert failed["failure"]["seed"] == 4
        assert failed["failure"]["scenario"] == "sc"
        assert _drain_until(events, "run-done")["failed"] == 1

    def test_backoff_delays_requeue(self):
        queue = BrokerQueue()
        queue.submit("r", [_job("a")],
                     JobPolicy(max_retries=1, backoff_base_s=30.0,
                               backoff_jitter=0.0))
        lease = queue.lease("w")
        queue.fail(lease["lease"], "exception", "boom")
        # The retry sits in backoff for ~30s; an immediate lease is idle.
        assert queue.lease("w", wait_s=0.0)["type"] == "idle"

    def test_duplicate_completion_first_wins(self):
        queue = BrokerQueue()
        events = queue.submit("r", [_job("a")], JobPolicy())
        lease = queue.lease("w")
        assert queue.complete(lease["lease"], {"m": 1.0}) is True
        assert queue.complete(lease["lease"], {"m": 999.0}) is False
        assert queue.fail(lease["lease"], "exception", "late") is False
        done = _drain_until(events, "job-done")
        assert done["metrics"] == {"m": 1.0}
        _drain_until(events, "run-done")

    def test_worker_disconnect_requeues_uncharged(self):
        queue = BrokerQueue()
        queue.submit("r", [_job("a")], JobPolicy(max_retries=0))
        lease = queue.lease("w-dead")
        assert lease["attempt"] == 1
        assert queue.release_worker("w-dead") == 1
        regrant = queue.lease("w-alive", wait_s=2.0)
        # Same attempt number: a lost lease never charges the budget,
        # even with a zero-retry policy.
        assert regrant["type"] == "job" and regrant["attempt"] == 1
        assert queue.complete(regrant["lease"], {"m": 1.0})

    def test_lease_expiry_requeues_uncharged(self):
        queue = BrokerQueue(lease_ttl=0.05)
        queue.submit("r", [_job("a")], JobPolicy(max_retries=0))
        lease = queue.lease("w")
        assert queue.expire(now=time.monotonic() + 1.0) == 1
        regrant = queue.lease("w2", wait_s=2.0)
        assert regrant["attempt"] == 1
        # The expired lease is settled; its late report is dropped.
        assert queue.complete(lease["lease"], {"m": 0.0}) is False

    def test_heartbeat_extends_and_detects_stale(self):
        queue = BrokerQueue(lease_ttl=0.2)
        queue.submit("r", [_job("a")], JobPolicy())
        lease = queue.lease("w")
        assert queue.heartbeat(lease["lease"]) is True
        queue.complete(lease["lease"], {"m": 1.0})
        assert queue.heartbeat(lease["lease"]) is False

    def test_cancel_drains_pending_jobs(self):
        queue = BrokerQueue()
        queue.submit("r", [_job("a"), _job("b")], JobPolicy())
        queue.cancel("r")
        assert queue.lease("w", wait_s=0.0)["type"] == "idle"
        assert queue.stats()["queued"] == 0

    def test_stop_tells_workers_to_exit(self):
        queue = BrokerQueue()
        queue.stop()
        assert queue.lease("w", wait_s=10.0) == {"type": "stop"}


# ----------------------------------------------------------------------
# End-to-end: in-process server + worker threads
# ----------------------------------------------------------------------
@pytest.fixture()
def broker():
    server = BrokerServer(listen="127.0.0.1:0", lease_ttl=5.0)
    server.start()
    yield server
    server.stop()


def _start_workers(server, count, store=None, poll_s=0.2):
    stop = threading.Event()
    threads = []
    for index in range(count):
        worker = Worker(server.address, name=f"w{index}", store=store,
                        poll_s=poll_s)
        thread = threading.Thread(target=worker.run,
                                  kwargs={"stop_event": stop}, daemon=True)
        thread.start()
        threads.append(thread)
    return stop, threads


class TestEndToEnd:
    def test_distributed_matches_serial_and_golden(self, broker):
        stop, threads = _start_workers(broker, 2)
        plan = compile_study("figure1", member_overrides=FIGURE1_TRIMS)
        distributed = execute_plan(
            plan, backend=DistributedBackend(broker.address, run_id="e2e"))
        serial = execute_plan(plan, backend=SerialBackend())
        assert distributed.to_json() == serial.to_json()
        stop.set()

    def test_trimmed_golden_byte_identity(self, broker):
        from repro.scenarios.goldens import STUDY_TRIMS

        stop, threads = _start_workers(broker, 2)
        plan = compile_study("figure1",
                             member_overrides=STUDY_TRIMS["figure1"])
        results = execute_plan(
            plan, backend=DistributedBackend(broker.address, run_id="golden"))
        golden = GOLDEN_FIGURE1.read_text(encoding="utf-8")
        assert results.to_json() + "\n" == golden
        stop.set()

    def test_shared_store_cache_skips_execution(self, broker, tmp_path):
        store = RunStore(tmp_path)
        plan = compile_study("figure1", member_overrides=FIGURE1_TRIMS)
        sentinel = {"sentinel": 42.0}
        for key in plan.job_keys():
            store.put_unit(key, dict(sentinel))
        stop, threads = _start_workers(broker, 1, store=store)
        results = execute_plan(
            plan, backend=DistributedBackend(broker.address, run_id="cached"))
        # Every metric came from the cache, none from execution.
        for result in results:
            assert result.metrics == sentinel
        stop.set()

    def test_injected_failure_keep_going_manifest(self, broker, tmp_path):
        plan = compile_study("figure1", member_overrides=FIGURE1_TRIMS)
        doomed_key = plan.jobs[0].key
        fault_plan = FaultPlan([FaultSpec(match=doomed_key, action="raise")])
        with fault_plan.installed():
            stop, threads = _start_workers(broker, 2)
            results = execute_plan(
                plan,
                backend=DistributedBackend(broker.address, run_id="degrade"),
                policy=JobPolicy(max_retries=1, keep_going=True,
                                 backoff_base_s=0.0))
            stop.set()
        assert len(results.failures) == 1
        entry = results.failures[0]
        assert entry["key"] == doomed_key
        assert entry["attempts"] == 2
        assert entry["kind"] == "exception"
        # The other slots assembled; the failed one is absent.
        assert len(results) == len(plan.slots) - 1

    def test_injected_failure_fail_fast_aborts(self, broker):
        plan = compile_study("figure1", member_overrides=FIGURE1_TRIMS)
        fault_plan = FaultPlan(
            [FaultSpec(match=plan.jobs[0].key, action="raise")])
        with fault_plan.installed():
            stop, threads = _start_workers(broker, 2)
            with pytest.raises(JobExecutionError):
                execute_plan(
                    plan,
                    backend=DistributedBackend(broker.address,
                                               run_id="abort"),
                    policy=JobPolicy(max_retries=0, keep_going=False))
            stop.set()

    def test_retried_fault_converges_to_golden(self, broker):
        from repro.scenarios.goldens import STUDY_TRIMS

        plan = compile_study("figure1",
                             member_overrides=STUDY_TRIMS["figure1"])
        # First attempt of the first job fails; the retry must heal the
        # run back to byte-identity.
        fault_plan = FaultPlan([FaultSpec(match=plan.jobs[0].key,
                                          action="raise", attempts=(1,))])
        with fault_plan.installed():
            stop, threads = _start_workers(broker, 2)
            results = execute_plan(
                plan,
                backend=DistributedBackend(broker.address, run_id="heal"),
                policy=JobPolicy(max_retries=1, backoff_base_s=0.0))
            stop.set()
        assert not results.failures
        golden = GOLDEN_FIGURE1.read_text(encoding="utf-8")
        assert results.to_json() + "\n" == golden

    def test_wire_worker_disconnect_mid_lease_requeues(self, broker):
        plan = compile_study("figure1", member_overrides=FIGURE1_TRIMS)
        # A raw "worker" takes the first lease and dies without a report.
        conn = connect(broker.address, timeout=5.0)
        send_frame(conn, {"type": "hello", "role": "worker",
                          "worker": "vanishing"})
        send_frame(conn, {"type": "lease", "wait_s": 0.0})

        result = {}

        def _submit():
            result["results"] = execute_plan(
                plan,
                backend=DistributedBackend(broker.address, run_id="requeue"))

        submitter = threading.Thread(target=_submit, daemon=True)
        submitter.start()
        granted = None
        deadline = time.monotonic() + 10.0
        while granted is None and time.monotonic() < deadline:
            reply = recv_frame(conn)
            assert reply is not None
            if reply.get("type") == "job":
                granted = reply
            else:
                send_frame(conn, {"type": "lease", "wait_s": 0.5})
        assert granted is not None and granted["attempt"] == 1
        conn.close()  # mid-lease disconnect: requeue, uncharged

        stop, threads = _start_workers(broker, 2)
        submitter.join(timeout=120.0)
        assert not submitter.is_alive()
        stop.set()
        serial = execute_plan(plan, backend=SerialBackend())
        assert result["results"].to_json() == serial.to_json()


# ----------------------------------------------------------------------
# The always-on service (repro-serve)
# ----------------------------------------------------------------------
@pytest.fixture()
def service(tmp_path):
    server = ServiceServer(listen="127.0.0.1:0", runs_dir=tmp_path / "runs",
                           lease_ttl=5.0)
    server.start()
    yield server
    server.stop()


class TestService:
    def test_submit_study_stream_and_fetch(self, service):
        stop, threads = _start_workers(service, 2)
        conn = connect(service.address, timeout=5.0)
        send_frame(conn, {"type": "submit-study", "study": "figure1",
                          "member_overrides": FIGURE1_TRIMS,
                          "save": "svc-fig1"})
        accepted = recv_frame(conn)
        assert accepted["type"] == "accepted"
        assert accepted["jobs"] == 5

        progress = []
        while True:
            event = recv_frame(conn)
            assert event is not None
            if event["type"] == "progress":
                progress.append(event)
            elif event["type"] == "study-done":
                done = event
                break
        assert len(progress) == 5
        assert progress[-1]["done"] == 5
        assert done["failures"] == 0
        assert done["record"]["name"] == "svc-fig1"
        conn.close()

        # The saved run matches what the submission returned, and the
        # service serves it back by name.
        expected = execute_plan(
            compile_study("figure1", member_overrides=FIGURE1_TRIMS),
            backend=SerialBackend())
        assert service.store.load("svc-fig1").to_json() == expected.to_json()

        conn = connect(service.address, timeout=5.0)
        send_frame(conn, {"type": "fetch-run", "name": "svc-fig1"})
        fetched = recv_frame(conn)
        assert fetched["type"] == "run"
        assert fetched["results"] == json.loads(expected.to_json())
        send_frame(conn, {"type": "list-runs"})
        runs = recv_frame(conn)
        assert [record["name"] for record in runs["runs"]] == ["svc-fig1"]
        conn.close()
        stop.set()

    def test_submitted_units_land_in_service_cache(self, service):
        stop, threads = _start_workers(service, 1)
        conn = connect(service.address, timeout=5.0)
        send_frame(conn, {"type": "submit-study", "study": "figure1",
                          "member_overrides": FIGURE1_TRIMS,
                          "save": "first"})
        while True:
            event = recv_frame(conn)
            if event["type"] == "study-done":
                break
        conn.close()

        # Resubmission resumes entirely from the service's unit cache.
        conn = connect(service.address, timeout=5.0)
        send_frame(conn, {"type": "submit-study", "study": "figure1",
                          "member_overrides": FIGURE1_TRIMS,
                          "save": "second"})
        accepted = recv_frame(conn)
        assert accepted["cached"] == accepted["jobs"] == 5
        while True:
            event = recv_frame(conn)
            if event["type"] == "study-done":
                break
        conn.close()
        assert (service.store.load("first").to_json()
                == service.store.load("second").to_json())
        stop.set()

    def test_unknown_study_is_an_error_frame(self, service):
        conn = connect(service.address, timeout=5.0)
        send_frame(conn, {"type": "submit-study", "study": "nope"})
        reply = recv_frame(conn)
        assert reply["type"] == "error"
        assert "nope" in reply["error"]
        send_frame(conn, {"type": "fetch-run", "name": "missing"})
        reply = recv_frame(conn)
        assert reply["type"] == "error"
        conn.close()


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestCli:
    def test_backend_distributed_requires_broker(self, capsys):
        from repro.run import main as run_main

        with pytest.raises(SystemExit):
            run_main(["study", "figure1", "--backend", "distributed"])

    def test_broker_flag_implies_distributed(self, broker):
        from repro.run import main as run_main

        stop, threads = _start_workers(broker, 2)
        code = run_main(
            ["study", "figure1", "--broker", broker.address, "--quiet",
             "--set", "bitcoin.architecture.duration_blocks=15",
             "--set", "ethereum.architecture.duration_blocks=45",
             "--set", "pbft.duration=1.0", "--set", "fabric.duration=1.0",
             "--set", "edge.duration=1.0"])
        assert code == 0
        stop.set()

    def test_ls_shows_failures_count(self, tmp_path, capsys):
        from repro.run import main as run_main
        from repro.analysis.resultset import ResultSet
        from repro.scenarios import run_scenario

        store = RunStore(tmp_path)
        clean = ResultSet([run_scenario("double-spend")], name="clean")
        store.save(clean, "clean-run")
        failing = ResultSet(
            [run_scenario("double-spend")], name="partial",
            failures=[{"key": "k-s1", "scenario": "x", "seed": 1,
                       "kind": "exception", "error": "boom",
                       "attempts": 2, "elapsed_s": 0.1}])
        store.save(failing, "partial-run")
        assert run_main(["ls", "--runs-dir", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "failures" in output
        clean_row = next(line for line in output.splitlines()
                         if "clean-run" in line)
        partial_row = next(line for line in output.splitlines()
                           if "partial-run" in line)
        # Column order: name | results | failures | labels | ...
        assert [cell.strip() for cell in clean_row.split("|")][2] == "-"
        assert [cell.strip() for cell in partial_row.split("|")][2] == "1"
