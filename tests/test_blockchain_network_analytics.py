"""Tests for the PoW network simulator and the blockchain analytical models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blockchain.attacks import (
    attacker_success_probability,
    confirmations_for_risk,
    cost_of_majority_attack,
    sybil_resistance_table,
)
from repro.blockchain.energy import AUSTRIA_ANNUAL_TWH, EnergyModel, EnergyParams
from repro.blockchain.network import (
    BITCOIN_PROTOCOL,
    ETHEREUM_PROTOCOL,
    PoWNetwork,
    PoWNetworkConfig,
)
from repro.blockchain.pools import PoolFormationConfig, PoolFormationModel
from repro.blockchain.proof_of_stake import (
    NothingAtStakeModel,
    ProofOfStakeParams,
    attack_cost_comparison,
)
from repro.blockchain.selfish import (
    profitability_threshold,
    selfish_mining_revenue,
    simulate_selfish_mining,
)
from repro.blockchain.throughput import REFERENCE_SYSTEMS, ThroughputModel
from repro.blockchain.trilemma import evaluate_designs, built_in_designs, score_design


class TestProtocolParams:
    def test_bitcoin_capacity_in_paper_band(self):
        assert 3.0 <= BITCOIN_PROTOCOL.capacity_tps <= 7.0

    def test_ethereum_capacity_near_fifteen(self):
        assert 10.0 <= ETHEREUM_PROTOCOL.capacity_tps <= 25.0

    def test_max_txs_per_block(self):
        assert BITCOIN_PROTOCOL.max_txs_per_block == 1_000_000 // 400


class TestPoWNetwork:
    @pytest.fixture(scope="class")
    def bitcoin_run(self):
        config = PoWNetworkConfig(
            protocol=BITCOIN_PROTOCOL, miner_count=8, tx_arrival_rate=10.0,
            duration_blocks=60, seed=3,
        )
        return PoWNetwork(config).run()

    def test_throughput_saturates_at_capacity(self, bitcoin_run):
        # With a finite number of blocks the realised interval fluctuates
        # around the target, so allow the ratio a wide but bounded band.
        assert bitcoin_run.throughput_tps <= bitcoin_run.capacity_tps * 1.4
        assert bitcoin_run.throughput_tps >= bitcoin_run.capacity_tps * 0.55

    def test_block_interval_near_target(self, bitcoin_run):
        assert 400.0 <= bitcoin_run.mean_block_interval <= 900.0

    def test_backlog_grows_when_overloaded(self, bitcoin_run):
        assert bitcoin_run.backlog_transactions > 0

    def test_stale_rate_small_for_bitcoin_parameters(self, bitcoin_run):
        assert bitcoin_run.stale_rate < 0.05

    def test_miners_get_blocks_roughly_by_hashrate(self, bitcoin_run):
        assert sum(bitcoin_run.blocks_by_miner.values()) >= 60

    def test_ethereum_faster_blocks_more_stale(self):
        config = PoWNetworkConfig(
            protocol=ETHEREUM_PROTOCOL, miner_count=8, tx_arrival_rate=40.0,
            duration_blocks=250, seed=4,
        )
        result = PoWNetwork(config).run()
        assert 8.0 <= result.mean_block_interval <= 20.0
        assert result.stale_rate >= 0.0
        assert result.throughput_tps > 8.0

    def test_confirmation_latency_positive(self, bitcoin_run):
        assert bitcoin_run.mean_confirmation_latency > 0


class TestSelfishMining:
    def test_analytic_matches_simulation(self):
        for alpha in (0.2, 0.3, 0.4):
            analytic = selfish_mining_revenue(alpha, gamma=0.0)
            simulated = simulate_selfish_mining(alpha, gamma=0.0, blocks=200_000, seed=1)
            assert simulated.relative_revenue == pytest.approx(analytic, abs=0.02)

    def test_below_threshold_unprofitable(self):
        assert selfish_mining_revenue(0.2, gamma=0.0) < 0.2

    def test_above_threshold_profitable(self):
        assert selfish_mining_revenue(0.4, gamma=0.0) > 0.4
        result = simulate_selfish_mining(0.4, gamma=0.0, blocks=200_000, seed=2)
        assert result.advantage > 0.02

    def test_gamma_lowers_threshold(self):
        assert profitability_threshold(0.0) == pytest.approx(1.0 / 3.0)
        assert profitability_threshold(1.0) == pytest.approx(0.0)
        assert profitability_threshold(0.5) < profitability_threshold(0.0)

    def test_gamma_increases_revenue(self):
        low = selfish_mining_revenue(0.3, gamma=0.0)
        high = selfish_mining_revenue(0.3, gamma=0.9)
        assert high > low

    def test_selfish_mining_raises_stale_rate(self):
        honest_like = simulate_selfish_mining(0.0, blocks=50_000, seed=3)
        attacked = simulate_selfish_mining(0.4, blocks=50_000, seed=3)
        assert attacked.stale_rate > honest_like.stale_rate

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            selfish_mining_revenue(0.6)
        with pytest.raises(ValueError):
            selfish_mining_revenue(0.3, gamma=1.5)
        with pytest.raises(ValueError):
            simulate_selfish_mining(-0.1)

    @given(st.floats(min_value=0.05, max_value=0.45), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_revenue_in_unit_interval(self, alpha, gamma):
        revenue = selfish_mining_revenue(alpha, gamma)
        assert -1e-9 <= revenue <= 1.0


class TestDoubleSpend:
    def test_matches_nakamoto_reference_values(self):
        # Values from the Bitcoin paper's table (q=0.1).
        assert attacker_success_probability(0.1, 0) == pytest.approx(1.0)
        assert attacker_success_probability(0.1, 5) == pytest.approx(0.0009137, abs=1e-5)
        assert attacker_success_probability(0.1, 10) == pytest.approx(0.0000012, abs=1e-6)

    def test_majority_always_wins(self):
        assert attacker_success_probability(0.5, 100) == 1.0
        assert attacker_success_probability(0.7, 50) == 1.0

    def test_probability_decreases_with_confirmations(self):
        probabilities = [attacker_success_probability(0.3, z) for z in range(0, 12, 2)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_confirmations_for_risk(self):
        assert confirmations_for_risk(0.1, 0.001) == 5
        assert confirmations_for_risk(0.3, 0.001) > confirmations_for_risk(0.1, 0.001)
        assert confirmations_for_risk(0.6, 0.001) == 10 ** 6

    def test_sybil_identities_do_not_help_against_pow(self):
        rows = sybil_resistance_table(0.2, [1, 10, 1000], confirmations=6)
        success = {row["identities"]: row["success_probability"] for row in rows}
        assert success[1.0] == success[10.0] == success[1000.0]

    def test_majority_attack_cost_positive(self):
        report = cost_of_majority_attack(1e6, 70.0, 0.01)
        assert report["total_cost"] > 0
        assert report["capital_cost"] > report["operating_cost"]

    def test_input_validation(self):
        with pytest.raises(ValueError):
            attacker_success_probability(1.5, 6)
        with pytest.raises(ValueError):
            attacker_success_probability(0.1, -1)
        with pytest.raises(ValueError):
            confirmations_for_risk(0.1, 0.0)


class TestEnergyModel:
    def test_annual_energy_in_paper_band(self):
        model = EnergyModel()
        assert 40.0 <= model.annual_energy_twh() <= 100.0
        assert model.annual_energy_twh() == pytest.approx(AUSTRIA_ANNUAL_TWH, rel=0.35)

    def test_revenue_bound_same_order(self):
        model = EnergyModel()
        bottom_up = model.annual_energy_twh()
        implied = model.revenue_implied_energy_twh()
        assert 0.2 < implied / bottom_up < 5.0

    def test_per_transaction_gap_is_enormous(self):
        model = EnergyModel()
        assert model.per_transaction_ratio() > 1e6

    def test_hardware_mix_must_sum_to_one(self):
        from repro.blockchain.energy import HardwareGeneration

        with pytest.raises(ValueError):
            EnergyModel(hardware_mix=[HardwareGeneration("x", 100.0, 0.5)])

    def test_report_keys(self):
        report = EnergyModel().report()
        for key in ("annual_energy_twh", "energy_per_tx_kwh", "per_tx_ratio"):
            assert key in report

    def test_energy_scales_with_hashrate(self):
        small = EnergyModel(EnergyParams(network_hashrate_th=1e6))
        large = EnergyModel(EnergyParams(network_hashrate_th=4e7))
        assert large.annual_energy_twh() > 10 * small.annual_energy_twh()


class TestMiningPools:
    def test_concentration_reaches_observed_levels(self):
        model = PoolFormationModel(PoolFormationConfig(miners=800, rounds=80, seed=2))
        final = model.run()
        assert final.top_pools_share(6) >= 0.7
        assert model.final_nakamoto_coefficient() <= 6

    def test_trajectory_concentrates_over_time(self):
        model = PoolFormationModel(PoolFormationConfig(miners=600, rounds=60, seed=3))
        model.run()
        trajectory = model.top_k_trajectory(6)
        assert trajectory[-1] > trajectory[0]

    def test_shares_normalised(self):
        model = PoolFormationModel(PoolFormationConfig(miners=300, rounds=10, seed=4))
        snapshot = model.run()
        assert sum(snapshot.shares().values()) == pytest.approx(1.0)


class TestProofOfStake:
    def test_nothing_at_stake_forks_persist(self):
        naive = NothingAtStakeModel(
            ProofOfStakeParams(slashing_enabled=False, multi_vote_fraction=0.9, seed=1)
        ).run()
        slashing = NothingAtStakeModel(
            ProofOfStakeParams(slashing_enabled=True, seed=1)
        ).run()
        assert naive.fork_open_fraction > 5 * slashing.fork_open_fraction
        assert naive.mean_fork_duration_rounds > slashing.mean_fork_duration_rounds

    def test_attack_cost_ordering(self):
        costs = attack_cost_comparison()
        assert costs["naive_pos"]["total_usd"] < costs["slashing_pos"]["total_usd"]
        assert costs["naive_pos"]["total_usd"] < costs["pow"]["total_usd"] / 10.0


class TestThroughputModelAndTrilemma:
    def test_reference_figures_match_paper(self):
        assert REFERENCE_SYSTEMS["bitcoin"].paper_tps_low == pytest.approx(3.3)
        assert REFERENCE_SYSTEMS["visa"].paper_tps_low == pytest.approx(24_000.0)

    def test_modelled_rates_land_in_bands(self):
        model = ThroughputModel()
        rows = {row["system"]: row for row in model.comparison_rows()}
        assert 3.0 <= rows["bitcoin"]["modelled_tps"] <= 7.0
        assert 10.0 <= rows["ethereum"]["modelled_tps"] <= 25.0
        assert rows["visa"]["modelled_tps"] >= 20_000.0

    def test_cloud_scales_with_partitions(self):
        model = ThroughputModel()
        assert model.cloud_capacity_tps(32) == 2 * model.cloud_capacity_tps(16)
        assert model.partitions_needed(24_000.0) * model.partition_tps >= 24_000.0

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            ThroughputModel().cloud_capacity_tps(0)

    def test_no_design_satisfies_all_three(self):
        scores = evaluate_designs()
        assert len(scores) == len(built_in_designs())
        assert all(not score.satisfies_all_three() for score in scores)

    def test_each_corner_has_an_identifiable_sacrifice(self):
        scores = {score.design: score for score in evaluate_designs()}
        assert scores["full-broadcast-pow"].weakest_axis() == "scalability"
        assert scores["bigger-blocks"].weakest_axis() == "decentralization"
        assert scores["sharded"].weakest_axis() == "security"

    def test_scores_are_normalised(self):
        for score in evaluate_designs():
            for value in (score.scalability, score.decentralization, score.security):
                assert 0.0 <= value <= 1.0
