"""RunStore: persistence, unit cache, lifecycle (gc/verify/no-resume), CLI."""

import json

import pytest

from repro.analysis.runstore import RunStore, default_runs_dir, is_run_name
from repro.run import main as run_main
from repro.scenarios import compile_sweep, execute_plan, run_sweep
from repro.scenarios import execution as execution_module

SWEEP_OVERRIDES = {"architecture.steps": 20, "architecture.arrivals_per_step": 20}


def small_sweep(**kwargs):
    return run_sweep("market-concentration", overrides=SWEEP_OVERRIDES, **kwargs)


class TestSaveLoadList:
    def test_round_trip_is_identical(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        results = small_sweep()
        record = store.save(results, "market-demo")
        assert record.name == "market-demo"
        assert record.results == 3
        reloaded = store.load("market-demo")
        assert reloaded.to_json() == results.to_json()
        assert reloaded.name == results.name

    def test_content_addressing_shares_objects(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        results = small_sweep()
        first = store.save(results, "a")
        second = store.save(results, "b")
        assert first.object_hash == second.object_hash
        assert len(list(store.objects_dir.glob("*.json"))) == 1
        assert {record.name for record in store.list()} == {"a", "b"}

    def test_unknown_name_lists_saved_runs(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        store.save(small_sweep(), "present")
        with pytest.raises(KeyError, match="present"):
            store.load("absent")

    def test_invalid_names_rejected(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        for bad in ("../escape", "", "a/b", ".hidden"):
            with pytest.raises((ValueError, KeyError)):
                store.save(small_sweep(), bad)

    def test_corrupted_object_fails_loudly(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        record = store.save(small_sweep(), "demo")
        object_path = store.objects_dir / f"{record.object_hash}.json"
        object_path.write_text(object_path.read_text().replace("market", "corrupt"))
        with pytest.raises(ValueError, match="content-hash"):
            store.load("demo")

    def test_delete_removes_pointer_keeps_object(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        record = store.save(small_sweep(), "demo")
        store.delete("demo")
        assert store.list() == []
        assert (store.objects_dir / f"{record.object_hash}.json").exists()

    def test_default_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "elsewhere"))
        assert default_runs_dir() == tmp_path / "elsewhere"
        assert RunStore().root == tmp_path / "elsewhere"


class TestUnitCache:
    def test_put_get_round_trip(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        assert store.get_unit("abc-s1") is None
        store.put_unit("abc-s1", {"throughput_tps": 3.5})
        assert store.get_unit("abc-s1") == {"throughput_tps": 3.5}
        assert store.completed_units(["abc-s1", "missing"]) == {
            "abc-s1": {"throughput_tps": 3.5}}

    def test_resume_skips_completed_jobs(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path / "runs")
        first = small_sweep(store=store)
        plan = compile_sweep("market-concentration", overrides=SWEEP_OVERRIDES)
        assert set(store.completed_units(plan.job_keys())) == set(plan.job_keys())

        def boom(job):
            raise AssertionError("resume should not re-execute finished jobs")

        monkeypatch.setattr(execution_module, "execute_unit", boom)
        resumed = execute_plan(plan, store=store)
        assert resumed.to_json() == first.to_json()

    def test_torn_unit_file_is_a_cache_miss(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        store.put_unit("abc-s1", {"x": 1.0})
        (store.units_dir / "abc-s1.json").write_text('{"key": "abc-s1", "met')
        assert store.get_unit("abc-s1") is None
        # Recomputing repairs the cache.
        store.put_unit("abc-s1", {"x": 1.0})
        assert store.get_unit("abc-s1") == {"x": 1.0}

    def test_interrupted_run_keeps_finished_units(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path / "runs")
        plan = compile_sweep("market-concentration", overrides=SWEEP_OVERRIDES)
        real = execution_module.execute_unit
        calls = []

        def fail_after_first(job):
            if calls:
                raise RuntimeError("simulated crash mid-grid")
            calls.append(job.key)
            return real(job)

        monkeypatch.setattr(execution_module, "execute_unit", fail_after_first)
        with pytest.raises(RuntimeError, match="mid-grid"):
            execute_plan(plan, store=store)
        # The job that finished before the crash is persisted and resumable.
        assert set(store.completed_units(plan.job_keys())) == set(calls)

    def test_changed_spec_invalidates_resume(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        small_sweep(store=store)
        changed = compile_sweep(
            "market-concentration",
            overrides={**SWEEP_OVERRIDES, "architecture.providers": 10})
        assert store.completed_units(changed.job_keys()) == {}


def snapshot(store):
    """Every file under the store with its content, for mutation checks."""
    return {str(path): path.read_bytes()
            for path in sorted(store.root.rglob("*")) if path.is_file()}


class TestGc:
    def test_never_deletes_reachable_objects_or_units(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        results = small_sweep(store=store)
        store.save(results, "keep-me")
        before = snapshot(store)
        report = store.gc()
        assert report.objects_removed == [] and report.units_removed == []
        assert report.objects_kept == 1 and report.units_kept == 3
        assert snapshot(store) == before

    def test_removes_unreachable_after_delete(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        store.save(small_sweep(store=store), "keep")
        other = run_sweep("market-concentration", store=store, seed=9,
                          overrides=SWEEP_OVERRIDES)
        record = store.save(other, "drop")
        store.delete("drop")
        report = store.gc()
        assert report.objects_removed == [record.object_hash]
        assert len(report.units_removed) == 3  # the seed-9 units
        assert store.load("keep") is not None  # survivor intact

    def test_unsaved_unit_cache_is_garbage(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        small_sweep(store=store)  # cached units, but never --save'd
        report = store.gc()
        assert len(report.units_removed) == 3
        assert not list(store.units_dir.glob("*.json"))

    def test_dry_run_mutates_nothing(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        small_sweep(store=store)  # unreachable units
        store.put_unit("stray-s0", {"x": 1.0})
        before = snapshot(store)
        report = store.gc(dry_run=True)
        assert report.dry_run and len(report.units_removed) == 4
        assert snapshot(store) == before
        assert "would remove" in report.summary()

    def test_sweeps_only_stale_tmp_files(self, tmp_path):
        import os
        import time

        store = RunStore(tmp_path / "runs")
        store.units_dir.mkdir(parents=True)
        stale = store.units_dir / "torn.json.tmp"
        stale.write_text("{")
        os.utime(stale, (time.time() - 7200, time.time() - 7200))
        fresh = store.units_dir / "inflight.json.tmp"
        fresh.write_text("{")  # could be a concurrent run's atomic write
        report = store.gc()
        assert report.units_removed == ["torn.json.tmp"]
        assert not stale.exists() and fresh.exists()

    def test_stale_tmp_swept_on_store_open(self, tmp_path):
        import os
        import time

        store = RunStore(tmp_path / "runs")
        store.units_dir.mkdir(parents=True)
        stale = store.units_dir / "torn.json.tmp"
        stale.write_text("{")
        os.utime(stale, (time.time() - 7200, time.time() - 7200))
        fresh = store.units_dir / "inflight.json.tmp"
        fresh.write_text("{")
        # Opening the store (not just gc) reclaims the stale orphan.
        RunStore(tmp_path / "runs")
        assert not stale.exists() and fresh.exists()

    def test_sweep_tmp_dry_run_reports_without_deleting(self, tmp_path):
        import os
        import time

        store = RunStore(tmp_path / "runs")
        store.units_dir.mkdir(parents=True)
        stale = store.units_dir / "torn.json.tmp"
        stale.write_text("{")
        os.utime(stale, (time.time() - 7200, time.time() - 7200))
        assert store.sweep_tmp(dry_run=True) == ["torn.json.tmp"]
        assert stale.exists()
        assert store.sweep_tmp() == ["torn.json.tmp"]
        assert not stale.exists()


class TestVerify:
    def test_healthy_store_is_clean(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        store.save(small_sweep(store=store), "demo")
        assert store.verify() == []

    def test_flags_bit_flipped_object(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        record = store.save(small_sweep(), "demo")
        object_path = store.objects_dir / f"{record.object_hash}.json"
        object_path.write_text(
            object_path.read_text().replace("market", "mXrket", 1))
        (problem,) = store.verify()
        assert problem.kind == "corrupt-object"
        assert record.object_hash in problem.path

    def test_flags_missing_object_and_bad_unit(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        record = store.save(small_sweep(), "demo")
        (store.objects_dir / f"{record.object_hash}.json").unlink()
        store.put_unit("good-s1", {"x": 1.0})
        (store.units_dir / "good-s1.json").write_text('{"key": "good-s1", ')
        store.put_unit("liar-s1", {"x": 1.0})
        renamed = store.units_dir / "renamed-s1.json"
        (store.units_dir / "liar-s1.json").rename(renamed)
        kinds = sorted(problem.kind for problem in store.verify())
        assert kinds == ["missing-object", "unit-key-mismatch",
                         "unreadable-unit"]


class TestNoResume:
    def test_resume_false_reexecutes_and_overwrites_cache(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        plan = compile_sweep("market-concentration", overrides=SWEEP_OVERRIDES)
        for key in plan.job_keys():
            store.put_unit(key, {"hhi": -1.0})  # poison: resume would trust it
        resumed = execute_plan(plan, store=store)
        assert all(result.metrics == {"hhi": -1.0} for result in resumed)
        fresh = execute_plan(plan, store=store, resume=False)
        assert all(result.metrics["hhi"] > 0 for result in fresh)
        # the recomputed metrics replaced the poisoned cache entries
        assert all(store.get_unit(key)["hhi"] > 0 for key in plan.job_keys())

    def test_cli_no_resume_flag(self, tmp_path, capsys):
        plan = compile_sweep("market-concentration", overrides=SWEEP_OVERRIDES)
        store = RunStore(tmp_path)
        for key in plan.job_keys():
            store.put_unit(key, {"hhi": -1.0})
        argv = ["market-concentration", "--quiet", "--json", "-",
                "--runs-dir", str(tmp_path), "--save", "demo",
                "--set", "architecture.steps=20",
                "--set", "architecture.arrivals_per_step=20"]
        assert run_main(argv + ["--no-resume"]) == 0
        payload = json.loads(capsys.readouterr().out.split("\nsaved run")[0])
        assert all(entry["metrics"]["hhi"] > 0 for entry in payload)


class TestLifecycleCli:
    def test_gc_dry_run_then_real(self, tmp_path, capsys):
        store = RunStore(tmp_path)
        small_sweep(store=store)  # unreachable units
        assert run_main(["gc", "--dry-run", "--runs-dir", str(tmp_path)]) == 0
        assert "would remove" in capsys.readouterr().out
        assert len(list(store.units_dir.glob("*.json"))) == 3
        assert run_main(["gc", "--runs-dir", str(tmp_path)]) == 0
        assert "removed 0 object(s) and 3 unit(s)" in capsys.readouterr().out
        assert not list(store.units_dir.glob("*.json"))

    def test_verify_exit_codes(self, tmp_path, capsys):
        store = RunStore(tmp_path)
        record = store.save(small_sweep(), "demo")
        assert run_main(["verify", "--runs-dir", str(tmp_path)]) == 0
        assert "healthy" in capsys.readouterr().out
        object_path = store.objects_dir / f"{record.object_hash}.json"
        object_path.write_text(object_path.read_text().replace("m", "M", 1))
        assert run_main(["verify", "--runs-dir", str(tmp_path)]) == 1
        assert "corrupt-object" in capsys.readouterr().err


def test_is_run_name():
    assert is_run_name("nightly-2026-07-27")
    assert not is_run_name("runs/a.json")
    assert not is_run_name("-")
    assert not is_run_name(".hidden")


class TestCli:
    def run_and_save(self, tmp_path, capsys):
        argv = ["market-concentration", "--quiet", "--runs-dir", str(tmp_path),
                "--save", "demo",
                "--set", "architecture.steps=20",
                "--set", "architecture.arrivals_per_step=20"]
        assert run_main(argv) == 0
        capsys.readouterr()

    def test_save_ls_show_round_trip(self, tmp_path, capsys):
        self.run_and_save(tmp_path, capsys)
        assert run_main(["ls", "--runs-dir", str(tmp_path)]) == 0
        assert "demo" in capsys.readouterr().out
        assert run_main(["show", "demo", "--quiet", "--json", "-",
                         "--runs-dir", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "market-concentration"
        assert len(payload["results"]) == 3

    def test_save_message_names_the_store(self, tmp_path, capsys):
        argv = ["market-concentration", "--runs-dir", str(tmp_path),
                "--save", "demo",
                "--set", "architecture.steps=10",
                "--set", "architecture.arrivals_per_step=10"]
        assert run_main(argv) == 0
        assert "saved run 'demo'" in capsys.readouterr().out

    def test_ls_empty_store(self, tmp_path, capsys):
        assert run_main(["ls", "--runs-dir", str(tmp_path)]) == 0
        assert "no saved runs" in capsys.readouterr().out

    def test_show_unknown_run_fails(self, tmp_path, capsys):
        assert run_main(["show", "ghost", "--runs-dir", str(tmp_path)]) == 2
        assert "no saved run" in capsys.readouterr().err

    def test_show_without_name_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="saved run name"):
            run_main(["show", "--runs-dir", str(tmp_path)])
