"""The golden-corpus regression gate and the registry determinism sweep.

Two properties over *every* registered scenario and study, trimmed by
:mod:`repro.scenarios.goldens`:

* **Golden match** — a fresh run diffs clean (zero tolerance, via
  :mod:`repro.analysis.diff`) against the committed JSON under
  ``tests/goldens/`` and is byte-identical to it.  The goldens were
  produced by a *different process* (``make goldens``), so this also
  proves cross-process determinism — the class of regression where seed
  derivation leaks through ``PYTHONHASHSEED`` (the historic
  ``SeededRNG.fork``/``hash()`` bug) fails here for the whole registry,
  not just PoW.
* **Determinism** — running the same trimmed configuration twice in one
  process yields byte-identical ``to_json()`` output.

The first run of each configuration is shared between the two tests, so
the whole gate costs roughly two trimmed passes over the registry.
"""

import pytest

from repro.analysis.diff import diff_resultsets
from repro.analysis.resultset import ResultSet
from repro.scenarios import goldens
from repro.scenarios.registry import scenario_names
from repro.scenarios.study import study_names

ENTRIES = goldens.golden_entries()
IDS = [name for _, name in ENTRIES]

#: First-run JSON per (kind, name), shared by the golden and determinism
#: tests so the registry is executed twice, not three times.
_FIRST_RUN: dict = {}


def _run(kind: str, name: str) -> str:
    runner = (goldens.run_golden_scenario if kind == "scenario"
              else goldens.run_golden_study)
    return runner(name).to_json()


def _first_run(kind: str, name: str) -> str:
    key = (kind, name)
    if key not in _FIRST_RUN:
        _FIRST_RUN[key] = _run(kind, name)
    return _FIRST_RUN[key]


def test_trims_cover_the_whole_registry():
    """Registering a scenario or study without a golden trim fails tier-1."""
    assert set(goldens.SCENARIO_TRIMS) == set(scenario_names()), (
        "SCENARIO_TRIMS and the scenario registry disagree; add a trim "
        "entry (and run `make goldens`) for every registered scenario"
    )
    assert set(goldens.STUDY_TRIMS) == set(study_names()), (
        "STUDY_TRIMS and the study registry disagree; add a trim entry "
        "(and run `make goldens`) for every registered study"
    )


@pytest.mark.parametrize("kind,name", ENTRIES, ids=IDS)
def test_matches_committed_golden(kind, name):
    """A fresh trimmed run diffs clean against tests/goldens at tolerance 0."""
    path = goldens.golden_path(kind, name)
    assert path.exists(), (
        f"missing golden {path}; generate the corpus with `make goldens` "
        f"and commit it"
    )
    golden_text = path.read_text(encoding="utf-8").rstrip("\n")
    current_text = _first_run(kind, name)

    report = diff_resultsets(
        ResultSet.from_json(golden_text),
        ResultSet.from_json(current_text),
        a_label=f"golden:{name}",
        b_label=f"run:{name}",
    )
    assert report.identical, (
        f"{kind} {name!r} drifted from its golden; if intentional run "
        f"`make goldens` and commit the diff\n{report.table().render()}"
    )
    # Belt and braces: the structural diff above explains *what* moved,
    # byte equality also catches drift in names/labels/spec echoes.
    assert current_text == golden_text, (
        f"{kind} {name!r} output is not byte-identical to its golden "
        f"(metrics match within structure — check labels/spec fields); "
        f"regenerate with `make goldens` if intentional"
    )


@pytest.mark.parametrize("kind,name", ENTRIES, ids=IDS)
def test_fixed_seed_run_twice_is_byte_identical(kind, name):
    """No hash()-style nondeterminism anywhere in the registry."""
    assert _first_run(kind, name) == _run(kind, name)
