"""Tests for concentration metrics, market dynamics, pricing and mining economics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.economics.concentration import (
    concentration_report,
    gini_coefficient,
    herfindahl_hirschman_index,
    nakamoto_coefficient,
    normalize_shares,
    top_k_share,
)
from repro.economics.incentives import (
    HARDWARE_PROFILES,
    MinerProfile,
    MiningEconomics,
    MiningEconomicsParams,
)
from repro.economics.market import MarketModel, MarketParams, observed_market_reference
from repro.economics.pricing import (
    CloudPricingModel,
    TokenPricingModel,
    compare_cost_stability,
)


class TestConcentrationMetrics:
    def test_normalize(self):
        assert normalize_shares([1, 1, 2]) == [0.25, 0.25, 0.5]
        assert normalize_shares([]) == []
        assert normalize_shares([0, 0]) == [0.0, 0.0]

    def test_negative_shares_rejected(self):
        with pytest.raises(ValueError):
            normalize_shares([-1, 2])

    def test_top_k(self):
        shares = [0.5, 0.3, 0.1, 0.1]
        assert top_k_share(shares, 1) == pytest.approx(0.5)
        assert top_k_share(shares, 2) == pytest.approx(0.8)
        assert top_k_share(shares, 10) == pytest.approx(1.0)

    def test_top_k_accepts_mapping(self):
        assert top_k_share({"a": 3.0, "b": 1.0}, 1) == pytest.approx(0.75)

    def test_hhi_monopoly_and_uniform(self):
        assert herfindahl_hirschman_index([1.0]) == pytest.approx(10_000.0)
        uniform = herfindahl_hirschman_index([1.0] * 100)
        assert uniform == pytest.approx(100.0)

    def test_gini_extremes(self):
        assert gini_coefficient([1.0, 1.0, 1.0, 1.0]) == pytest.approx(0.0, abs=1e-9)
        unequal = gini_coefficient([0.0] * 99 + [1.0])
        assert unequal > 0.9

    def test_nakamoto_coefficient(self):
        assert nakamoto_coefficient([0.6, 0.2, 0.2]) == 1
        assert nakamoto_coefficient([0.3, 0.3, 0.2, 0.2]) == 2
        assert nakamoto_coefficient([0.25] * 4) == 3
        assert nakamoto_coefficient([]) == 0

    def test_nakamoto_threshold_validation(self):
        with pytest.raises(ValueError):
            nakamoto_coefficient([0.5, 0.5], threshold=0.0)

    def test_report_keys(self):
        report = concentration_report([0.4, 0.3, 0.2, 0.1])
        for key in ("top1", "top3", "top5", "hhi", "gini", "nakamoto"):
            assert key in report

    @given(st.lists(st.floats(min_value=0.001, max_value=1000.0), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_top_k_monotone_in_k(self, shares):
        assert top_k_share(shares, 1) <= top_k_share(shares, 3) <= top_k_share(shares, 10) + 1e-9

    @given(st.lists(st.floats(min_value=0.001, max_value=1000.0), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_gini_in_unit_interval(self, shares):
        value = gini_coefficient(shares)
        assert -1e-9 <= value < 1.0

    @given(st.lists(st.floats(min_value=0.001, max_value=1000.0), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_nakamoto_at_least_one(self, shares):
        assert 1 <= nakamoto_coefficient(shares) <= len(shares)


class TestMarketModel:
    def test_preferential_attachment_concentrates(self):
        model = MarketModel(MarketParams(providers=20), seed=1)
        final = model.run(steps=200, arrivals_per_step=200)
        metrics = final.concentration()
        assert metrics["top3"] > 0.6
        assert metrics["nakamoto"] <= 5

    def test_uniform_attachment_stays_fragmented(self):
        model = MarketModel(
            MarketParams(providers=20, preferential_exponent=0.0, scale_advantage=0.0),
            seed=1,
        )
        final = model.run(steps=120, arrivals_per_step=200)
        assert final.concentration()["top3"] < 0.35

    def test_preferential_beats_uniform(self):
        preferential = MarketModel(MarketParams(), seed=2).run(100, 200)
        uniform = MarketModel(
            MarketParams(preferential_exponent=0.0, scale_advantage=0.0), seed=2
        ).run(100, 200)
        assert preferential.concentration()["top3"] > uniform.concentration()["top3"]

    def test_shares_sum_to_one(self):
        model = MarketModel(seed=3)
        model.run(steps=10, arrivals_per_step=50)
        assert sum(model.shares().values()) == pytest.approx(1.0)

    def test_history_grows_per_step(self):
        model = MarketModel(seed=4)
        model.run(steps=5, arrivals_per_step=10)
        assert len(model.history) == 6
        assert len(model.share_trajectory(3)) == 6

    def test_needs_at_least_one_provider(self):
        with pytest.raises(ValueError):
            MarketModel(MarketParams(providers=0))

    def test_reference_numbers_present(self):
        reference = observed_market_reference()
        assert reference["cdn"]["top3_share"] == pytest.approx(0.75)
        assert reference["cloud"]["top5_share"] == pytest.approx(0.60)


class TestPricing:
    def test_token_volatility_is_high(self):
        series = TokenPricingModel(annual_volatility=0.8).generate(365, seed=1)
        assert series.annualized_volatility() > 0.4
        assert 0 < series.max_drawdown() <= 1.0

    def test_cloud_prices_decline_slowly(self):
        series = CloudPricingModel().generate(730, seed=1)
        assert series.prices[-1] <= series.prices[0]
        assert series.annualized_volatility() < 0.1

    def test_comparison_ratio_large(self):
        report = compare_cost_stability(periods=365, seed=3)
        assert report["comparison"]["volatility_ratio"] > 5.0
        assert report["token"]["coefficient_of_variation"] > report["cloud"]["coefficient_of_variation"]

    def test_price_series_returns_length(self):
        series = TokenPricingModel().generate(100, seed=2)
        assert len(series.prices) == 101
        assert len(series.returns()) <= 100


class TestMiningEconomics:
    def test_hardware_profiles_ordering(self):
        economics = MiningEconomics()
        cpu = economics.expected_daily_revenue_usd(HARDWARE_PROFILES["desktop-cpu"])
        farm = economics.expected_daily_revenue_usd(HARDWARE_PROFILES["asic-farm"])
        assert farm > cpu * 1e6

    def test_desktop_cpu_is_hopeless(self):
        economics = MiningEconomics()
        profile = HARDWARE_PROFILES["desktop-cpu"]
        assert economics.daily_profit_usd(profile) < 0
        assert not economics.solo_mining_viable(profile, horizon_days=365 * 100)

    def test_asic_farm_profitable(self):
        economics = MiningEconomics()
        assert economics.daily_profit_usd(HARDWARE_PROFILES["asic-farm"]) > 0

    def test_hashrate_share_scales_with_units(self):
        economics = MiningEconomics()
        profile = HARDWARE_PROFILES["asic-miner"]
        assert economics.hashrate_share(profile, 10) == pytest.approx(
            10 * economics.hashrate_share(profile, 1)
        )

    def test_breakeven_price_positive(self):
        economics = MiningEconomics()
        assert economics.breakeven_electricity_price(HARDWARE_PROFILES["asic-miner"]) > 0

    def test_profitability_report_rows(self):
        rows = MiningEconomics().profitability_report()
        assert len(rows) == len(HARDWARE_PROFILES)
        assert all("profit_per_day_usd" in row for row in rows)

    def test_zero_hashrate_network_rejected(self):
        with pytest.raises(ValueError):
            MiningEconomics(MiningEconomicsParams(network_hashrate=0.0))
