"""repro-run error paths: one-line nonzero exits, never a traceback.

Every case here either returns a nonzero exit code with a single
explanatory line on stderr or raises ``SystemExit`` with a message (the
argparse convention — the interpreter prints the message and exits
nonzero).  An uncaught adapter/spec exception would surface as a plain
Python exception and fail these tests, so passing means no traceback.
"""

import pytest

from repro.run import EXIT_DRIFT, EXIT_OK, EXIT_PARTIAL, EXIT_USAGE
from repro.run import main as run_main


def one_line(text: str) -> bool:
    return len(text.strip().splitlines()) == 1


class TestExitCodeMatrix:
    """The documented exit-code contract: 0 ok, 1 drift, 2 usage, 3 partial.

    One representative invocation per code, so any change to the mapping
    (or a new code colliding with an old meaning) fails here first.
    """

    ARGS = ["--quiet", "--set", "architecture.steps=20",
            "--set", "architecture.arrivals_per_step=20"]

    def test_constants_are_distinct_and_stable(self):
        assert (EXIT_OK, EXIT_DRIFT, EXIT_USAGE, EXIT_PARTIAL) == (0, 1, 2, 3)

    def test_success_is_0(self, capsys):
        assert run_main(["market-concentration"] + self.ARGS) == EXIT_OK

    def test_usage_error_is_2(self, capsys):
        assert run_main(["no-such-scenario"]) == EXIT_USAGE
        capsys.readouterr()

    def test_drift_is_1(self, tmp_path, capsys):
        base = ["market-concentration", "--runs-dir", str(tmp_path)] + self.ARGS
        assert run_main(base + ["--save", "a"]) == EXIT_OK
        assert run_main(base + ["--save", "b", "--seed", "9",
                                "--no-resume"]) == EXIT_OK
        args = ["diff", "a", "b", "--quiet", "--runs-dir", str(tmp_path)]
        assert run_main(args) == EXIT_DRIFT
        capsys.readouterr()

    def test_partial_failure_is_3(self, monkeypatch, capsys):
        from repro.scenarios.execution import FAULT_PLAN_ENV
        from repro.scenarios.faults import FaultPlan, FaultSpec

        monkeypatch.setenv(FAULT_PLAN_ENV, FaultPlan(
            [FaultSpec(match="", action="raise")]).to_json())
        assert run_main(["market-concentration", "--keep-going"]
                        + self.ARGS) == EXIT_PARTIAL
        capsys.readouterr()


class TestUnknownNames:
    def test_unknown_scenario(self, capsys):
        assert run_main(["no-such-scenario"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err and one_line(err)

    def test_unknown_scenario_via_run(self, capsys):
        assert run_main(["run", "no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_unknown_study(self, capsys):
        assert run_main(["study", "no-such-study"]) == 2
        err = capsys.readouterr().err
        assert "unknown study" in err and one_line(err)

    def test_unknown_study_member(self, capsys):
        assert run_main(["study", "figure1", "--set", "ghost.duration=1"]) == 2
        assert "unknown member" in capsys.readouterr().err


class TestMalformedOverrides:
    def test_set_without_equals(self):
        with pytest.raises(SystemExit, match="PATH=VALUE"):
            run_main(["kad-lookup", "--set", "topology.size"])

    def test_set_unknown_spec_field(self, capsys):
        assert run_main(["kad-lookup", "--set", "nosuch.field=1"]) == 2
        err = capsys.readouterr().err
        assert "unknown spec field" in err and one_line(err)

    def test_set_path_through_non_dict(self, capsys):
        assert run_main(["kad-lookup", "--set", "seed.deeper=1"]) == 2
        assert "not a dict" in capsys.readouterr().err

    def test_study_set_without_member(self):
        with pytest.raises(SystemExit, match="MEMBER.PATH=VALUE"):
            run_main(["study", "figure1", "--set", "duration=1"])


class TestMalformedSweeps:
    def test_sweep_without_equals(self):
        with pytest.raises(SystemExit, match="PATH=VALUE"):
            run_main(["kad-lookup", "--sweep", "topology.size"])

    def test_sweep_with_empty_values(self):
        with pytest.raises(SystemExit, match="V1,V2"):
            run_main(["kad-lookup", "--sweep", "topology.size="])

    def test_sweep_bad_dotted_path(self, capsys):
        assert run_main(["kad-lookup", "--sweep", "bogus.axis=1,2"]) == 2
        err = capsys.readouterr().err
        assert "unknown spec field" in err and one_line(err)

    def test_sweep_on_study_rejected(self):
        with pytest.raises(SystemExit, match="studies declare"):
            run_main(["study", "figure1", "--sweep", "seed=1,2"])


class TestStoreCommands:
    def test_show_missing_run(self, tmp_path, capsys):
        assert run_main(["show", "ghost", "--runs-dir", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "no saved run" in err and one_line(err)

    def test_diff_needs_two_operands(self, tmp_path):
        with pytest.raises(SystemExit, match="two runs"):
            run_main(["diff", "only-one", "--runs-dir", str(tmp_path)])

    def test_diff_missing_run(self, tmp_path):
        with pytest.raises(SystemExit, match="neither a saved run"):
            run_main(["diff", "ghost-a", "ghost-b",
                      "--runs-dir", str(tmp_path)])

    def test_diff_double_stdin_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="stdin"):
            run_main(["diff", "-", "-", "--runs-dir", str(tmp_path)])

    def test_diff_non_json_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json {")
        with pytest.raises(SystemExit, match="not valid JSON"):
            run_main(["diff", str(bad), str(bad),
                      "--runs-dir", str(tmp_path)])

    def test_bad_tolerance_flag(self, tmp_path):
        with pytest.raises(SystemExit, match="--tol"):
            run_main(["diff", "a", "b", "--tol", "tps",
                      "--runs-dir", str(tmp_path)])

    def test_gc_rejects_positional(self, tmp_path):
        with pytest.raises(SystemExit, match="no positional"):
            run_main(["gc", "extra", "--runs-dir", str(tmp_path)])

    def test_verify_rejects_positional(self, tmp_path):
        with pytest.raises(SystemExit, match="no positional"):
            run_main(["verify", "extra", "--runs-dir", str(tmp_path)])


class TestArgumentShape:
    def test_extra_positional_for_non_diff(self):
        with pytest.raises(SystemExit, match="only diff"):
            run_main(["show", "name", "surplus"])

    def test_bare_second_name_suggests_study(self):
        with pytest.raises(SystemExit, match="did you mean"):
            run_main(["figure1", "extra"])

    def test_members_on_scenario_rejected(self):
        with pytest.raises(SystemExit, match="--members applies to studies"):
            run_main(["kad-lookup", "--members", "a,b"])
