"""Unit tests for the discrete-event simulation engine."""

import time

import pytest

from repro.sim.engine import (
    INTERRUPTED,
    Event,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)


class TestScheduling:
    def test_schedule_runs_callback_at_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "a")
        sim.run()
        assert fired == ["a"]
        assert sim.now == 5.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, 3)
        sim.schedule(1.0, order.append, 1)
        sim.schedule(2.0, order.append, 2)
        sim.run()
        assert order == [1, 2, 3]

    def test_same_time_events_run_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for index in range(10):
            sim.schedule(1.0, order.append, index)
        sim.run()
        assert order == list(range(10))

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_run_until_stops_clock_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, "late")
        sim.run(until=5.0)
        assert fired == []
        assert sim.now == 5.0
        sim.run()
        assert fired == ["late"]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(7.5, fired.append, "x")
        sim.run()
        assert sim.now == 7.5

    def test_max_events_limits_processing(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        processed = sim.run(max_events=4)
        assert processed == 4
        assert sim.pending == 6

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        results = []

        def outer():
            results.append(("outer", sim.now))
            sim.schedule(2.0, inner)

        def inner():
            results.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert results == [("outer", 1.0), ("inner", 3.0)]

    def test_drain_discards_pending(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.drain()
        assert sim.pending == 0

    def test_processed_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.processed == 2


class TestFastPathAccounting:
    def test_pending_reflects_cancels_without_running(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert sim.pending == 10
        handles[3].cancel()
        handles[7].cancel()
        assert sim.pending == 8
        handles[3].cancel()  # idempotent
        assert sim.pending == 8
        sim.run()
        assert sim.pending == 0
        assert sim.processed == 8

    def test_cancel_is_o1(self):
        # Cancelling must not scan the queue: 50k cancels against a
        # 100k-entry queue finish in well under a second, where an O(n)
        # scan per cancel would take minutes.
        sim = Simulator()
        noop = lambda: None
        handles = [sim.schedule(float(i + 1), noop) for i in range(100_000)]
        start = time.perf_counter()
        for handle in handles[::2]:
            handle.cancel()
        elapsed = time.perf_counter() - start
        assert sim.pending == 50_000
        assert elapsed < 1.0

    def test_pending_is_o1(self):
        sim = Simulator()
        for i in range(50_000):
            sim.schedule(float(i + 1), lambda: None)
        start = time.perf_counter()
        for _ in range(10_000):
            sim.pending
        elapsed = time.perf_counter() - start
        assert elapsed < 0.5

    def test_zero_delay_entry_ordered_against_same_time_heap_entry(self):
        # A timer that lands at t=1 was scheduled before the zero-delay
        # callback created at t=1, so it must run first.
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(0.0, order.append, "zero")

        sim.schedule(1.0, first)
        sim.schedule(1.0, order.append, "second")
        sim.run()
        assert order == ["first", "second", "zero"]

    def test_raising_callback_does_not_corrupt_pending(self):
        sim = Simulator()

        def boom():
            raise RuntimeError("boom")

        sim.schedule(1.0, boom)
        with pytest.raises(RuntimeError):
            sim.run()
        assert sim.pending == 0
        assert sim.processed == 0

    def test_drain_from_inside_callback(self):
        sim = Simulator()
        fired = []

        def drain_now():
            fired.append("a")
            sim.drain()

        sim.schedule(1.0, drain_now)
        sim.schedule(2.0, fired.append, "never")
        sim.run()
        assert fired == ["a"]
        assert sim.pending == 0

    def test_pending_is_accurate_mid_run(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.pending))
        sim.schedule(2.0, lambda: seen.append(sim.pending))
        sim.run()
        # While the first callback runs only the second entry is queued;
        # while the second runs the queue is empty.
        assert seen == [1, 0]

    def test_cancelled_zero_delay_entry_skipped(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(0.0, fired.append, "x")
        sim.schedule(0.0, fired.append, "y")
        handle.cancel()
        assert sim.pending == 1
        sim.run()
        assert fired == ["y"]


class TestRunEdgeCases:
    def test_cancelled_head_entries_are_skipped_under_until(self):
        sim = Simulator()
        fired = []
        first = sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        last = sim.schedule(3.0, fired.append, "c")
        first.cancel()
        last.cancel()
        processed = sim.run(until=5.0)
        assert processed == 1
        assert fired == ["b"]
        assert sim.now == 5.0
        assert sim.pending == 0

    def test_until_exactly_on_event_time_runs_the_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "on-horizon")
        sim.schedule(5.5, fired.append, "late")
        processed = sim.run(until=5.0)
        assert processed == 1
        assert fired == ["on-horizon"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["on-horizon", "late"]

    def test_clock_advances_to_until_on_empty_queue(self):
        sim = Simulator()
        assert sim.run(until=10.0) == 0
        assert sim.now == 10.0
        # A later horizon advances again; an earlier one does not rewind.
        assert sim.run(until=25.0) == 0
        assert sim.now == 25.0
        assert sim.run(until=5.0) == 0
        assert sim.now == 25.0

    def test_max_events_zero_processes_nothing(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.run(max_events=0) == 0
        assert sim.pending == 1
        assert sim.now == 0.0

    def test_max_events_skips_cancelled_heads_for_free(self):
        sim = Simulator()
        fired = []
        first = sim.schedule(1.0, fired.append, "a")
        second = sim.schedule(2.0, fired.append, "b")
        sim.schedule(3.0, fired.append, "c")
        first.cancel()
        second.cancel()
        processed = sim.run(max_events=1)
        assert processed == 1
        assert fired == ["c"]
        assert sim.pending == 0

    def test_step_merges_bucket_and_heap_order(self):
        sim = Simulator()
        order = []
        sim.schedule(0.0, order.append, "bucket")
        sim.schedule(1.0, order.append, "heap")
        assert sim.step() is True
        assert order == ["bucket"]
        assert sim.step() is True
        assert order == ["bucket", "heap"]
        assert sim.step() is False


class TestEvents:
    def test_event_triggers_once(self):
        sim = Simulator()
        event = sim.event("once")
        event.succeed(42)
        with pytest.raises(SimulationError):
            event.succeed(43)

    def test_event_delivers_value_to_waiter(self):
        sim = Simulator()
        event = sim.event()
        got = []

        def waiter():
            value = yield event
            got.append(value)

        sim.spawn(waiter())
        sim.schedule(3.0, event.succeed, "payload")
        sim.run()
        assert got == ["payload"]

    def test_waiting_on_already_triggered_event(self):
        sim = Simulator()
        event = sim.event()
        event.succeed("early")
        got = []

        def waiter():
            value = yield event
            got.append(value)

        sim.spawn(waiter())
        sim.run()
        assert got == ["early"]

    def test_all_of_waits_for_every_event(self):
        sim = Simulator()
        events = [sim.event(str(i)) for i in range(3)]
        combined = sim.all_of(events)
        for index, event in enumerate(events):
            sim.schedule(float(index + 1), event.succeed, index)
        sim.run()
        assert combined.triggered
        assert combined.value == [0, 1, 2]

    def test_all_of_empty_triggers_immediately(self):
        sim = Simulator()
        combined = sim.all_of([])
        assert combined.triggered

    def test_any_of_triggers_on_first(self):
        sim = Simulator()
        events = [sim.event(str(i)) for i in range(3)]
        combined = sim.any_of(events)
        sim.schedule(2.0, events[1].succeed, "second")
        sim.schedule(5.0, events[0].succeed, "first-late")
        sim.run()
        assert combined.triggered
        assert combined.value == "second"


class TestProcesses:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        log = []

        def proc():
            yield Timeout(5.0)
            log.append(sim.now)
            yield Timeout(2.5)
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [5.0, 7.5]

    def test_process_return_value_on_done_event(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            return "finished"

        process = sim.spawn(proc())
        sim.run()
        assert process.done.triggered
        assert process.done.value == "finished"

    def test_process_waits_on_another_process(self):
        sim = Simulator()
        log = []

        def child():
            yield Timeout(4.0)
            return "child-result"

        def parent():
            child_process = sim.spawn(child())
            value = yield child_process
            log.append((sim.now, value))

        sim.spawn(parent())
        sim.run()
        assert log == [(4.0, "child-result")]

    def test_interrupted_process_never_resumes(self):
        sim = Simulator()
        log = []

        def proc():
            yield Timeout(1.0)
            log.append("should not happen")

        process = sim.spawn(proc())
        process.interrupt()
        sim.run()
        assert log == []
        assert not process.alive

    def test_invalid_yield_raises(self):
        sim = Simulator()

        def proc():
            yield "not a timeout"

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()


class TestInterrupt:
    def test_interrupt_triggers_done_with_sentinel(self):
        sim = Simulator()

        def proc():
            yield Timeout(10.0)

        process = sim.spawn(proc())
        sim.schedule(1.0, process.interrupt)
        sim.run()
        assert not process.alive
        assert process.done.triggered
        assert process.done.value is INTERRUPTED

    def test_waiter_on_interrupted_process_is_released(self):
        sim = Simulator()
        got = []

        def child():
            yield Timeout(100.0)

        def parent():
            value = yield child_process
            got.append((sim.now, value))

        child_process = sim.spawn(child())
        sim.spawn(parent())
        sim.schedule(5.0, child_process.interrupt)
        sim.run()
        assert got == [(5.0, INTERRUPTED)]

    def test_all_of_over_interrupted_process_does_not_hang(self):
        sim = Simulator()

        def quick():
            yield Timeout(1.0)
            return "ok"

        def stuck():
            yield Timeout(1000.0)

        quick_process = sim.spawn(quick())
        stuck_process = sim.spawn(stuck())
        combined = sim.all_of([quick_process.done, stuck_process.done])
        sim.schedule(2.0, stuck_process.interrupt)
        sim.run(until=10.0)
        assert combined.triggered
        assert combined.value[0] == "ok"
        assert combined.value[1] is INTERRUPTED

    def test_interrupt_after_completion_is_noop(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            return "finished"

        process = sim.spawn(proc())
        sim.run()
        process.interrupt()
        assert process.done.value == "finished"


class TestEventCallbacks:
    def test_add_callback_on_pending_event(self):
        sim = Simulator()
        event = sim.event()
        got = []
        event.add_callback(got.append)
        sim.schedule(3.0, event.succeed, "payload")
        sim.run()
        assert got == ["payload"]

    def test_add_callback_on_triggered_event(self):
        sim = Simulator()
        event = sim.event()
        event.succeed("early")
        got = []
        event.add_callback(got.append)
        sim.run()
        assert got == ["early"]

    def test_callbacks_run_in_registration_order(self):
        sim = Simulator()
        event = sim.event()
        order = []
        event.add_callback(lambda value: order.append("first"))
        event.add_callback(lambda value: order.append("second"))
        event.succeed(None)
        sim.run()
        assert order == ["first", "second"]

    def test_all_of_does_not_spawn_processes(self):
        # all_of must register direct callbacks, not one generator process
        # per waited event: for n events only the n succeed() calls plus one
        # callback each hit the scheduler.
        sim = Simulator()
        events = [sim.event(str(i)) for i in range(10)]
        combined = sim.all_of(events)
        before = sim.pending
        assert before == 0
        for event in events:
            event.succeed(None)
        sim.run()
        assert combined.triggered
        assert sim.processed == 10
