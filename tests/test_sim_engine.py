"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import Event, Process, SimulationError, Simulator, Timeout


class TestScheduling:
    def test_schedule_runs_callback_at_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "a")
        sim.run()
        assert fired == ["a"]
        assert sim.now == 5.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, 3)
        sim.schedule(1.0, order.append, 1)
        sim.schedule(2.0, order.append, 2)
        sim.run()
        assert order == [1, 2, 3]

    def test_same_time_events_run_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for index in range(10):
            sim.schedule(1.0, order.append, index)
        sim.run()
        assert order == list(range(10))

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_run_until_stops_clock_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, "late")
        sim.run(until=5.0)
        assert fired == []
        assert sim.now == 5.0
        sim.run()
        assert fired == ["late"]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(7.5, fired.append, "x")
        sim.run()
        assert sim.now == 7.5

    def test_max_events_limits_processing(self):
        sim = Simulator()
        for _ in range(10):
            sim.schedule(1.0, lambda: None)
        processed = sim.run(max_events=4)
        assert processed == 4
        assert sim.pending == 6

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        results = []

        def outer():
            results.append(("outer", sim.now))
            sim.schedule(2.0, inner)

        def inner():
            results.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert results == [("outer", 1.0), ("inner", 3.0)]

    def test_drain_discards_pending(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.drain()
        assert sim.pending == 0

    def test_processed_counter(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.processed == 2


class TestEvents:
    def test_event_triggers_once(self):
        sim = Simulator()
        event = sim.event("once")
        event.succeed(42)
        with pytest.raises(SimulationError):
            event.succeed(43)

    def test_event_delivers_value_to_waiter(self):
        sim = Simulator()
        event = sim.event()
        got = []

        def waiter():
            value = yield event
            got.append(value)

        sim.spawn(waiter())
        sim.schedule(3.0, event.succeed, "payload")
        sim.run()
        assert got == ["payload"]

    def test_waiting_on_already_triggered_event(self):
        sim = Simulator()
        event = sim.event()
        event.succeed("early")
        got = []

        def waiter():
            value = yield event
            got.append(value)

        sim.spawn(waiter())
        sim.run()
        assert got == ["early"]

    def test_all_of_waits_for_every_event(self):
        sim = Simulator()
        events = [sim.event(str(i)) for i in range(3)]
        combined = sim.all_of(events)
        for index, event in enumerate(events):
            sim.schedule(float(index + 1), event.succeed, index)
        sim.run()
        assert combined.triggered
        assert combined.value == [0, 1, 2]

    def test_all_of_empty_triggers_immediately(self):
        sim = Simulator()
        combined = sim.all_of([])
        assert combined.triggered

    def test_any_of_triggers_on_first(self):
        sim = Simulator()
        events = [sim.event(str(i)) for i in range(3)]
        combined = sim.any_of(events)
        sim.schedule(2.0, events[1].succeed, "second")
        sim.schedule(5.0, events[0].succeed, "first-late")
        sim.run()
        assert combined.triggered
        assert combined.value == "second"


class TestProcesses:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        log = []

        def proc():
            yield Timeout(5.0)
            log.append(sim.now)
            yield Timeout(2.5)
            log.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert log == [5.0, 7.5]

    def test_process_return_value_on_done_event(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)
            return "finished"

        process = sim.spawn(proc())
        sim.run()
        assert process.done.triggered
        assert process.done.value == "finished"

    def test_process_waits_on_another_process(self):
        sim = Simulator()
        log = []

        def child():
            yield Timeout(4.0)
            return "child-result"

        def parent():
            child_process = sim.spawn(child())
            value = yield child_process
            log.append((sim.now, value))

        sim.spawn(parent())
        sim.run()
        assert log == [(4.0, "child-result")]

    def test_interrupted_process_never_resumes(self):
        sim = Simulator()
        log = []

        def proc():
            yield Timeout(1.0)
            log.append("should not happen")

        process = sim.spawn(proc())
        process.interrupt()
        sim.run()
        assert log == []
        assert not process.alive

    def test_invalid_yield_raises(self):
        sim = Simulator()

        def proc():
            yield "not a timeout"

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()
