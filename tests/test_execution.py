"""The execution API: plans, unit jobs, backends, and parallel==serial goldens."""

import json

import pytest

from repro.run import main as run_main
from repro.scenarios import (
    ExecutionPlan,
    ProcessPoolBackend,
    SerialBackend,
    UnitJob,
    backend_for,
    compile_scenario,
    compile_study,
    compile_sweep,
    execute_plan,
    get_scenario,
    run_study,
    run_sweep,
)
from repro.scenarios import execution as execution_module

#: Dotted-path trims that make the figure1 study run in well under a second.
FIGURE1_TRIMS = {
    "bitcoin": {"architecture.duration_blocks": 15},
    "ethereum": {"architecture.duration_blocks": 45},
    "pbft": {"duration": 1.0},
    "fabric": {"duration": 1.0},
    "edge": {"duration": 1.0},
}

FIGURE1_TRIM_ARGS = [
    "--set", "bitcoin.architecture.duration_blocks=15",
    "--set", "ethereum.architecture.duration_blocks=45",
    "--set", "pbft.duration=1.0",
    "--set", "fabric.duration=1.0",
    "--set", "edge.duration=1.0",
]


class TestSpecHash:
    def test_stable_across_copies_and_round_trips(self):
        spec = get_scenario("pow-baseline")
        assert spec.spec_hash() == spec.copy().spec_hash()
        assert spec.spec_hash() == type(spec).from_dict(spec.to_dict()).spec_hash()

    def test_sensitive_to_every_override(self):
        spec = get_scenario("pow-baseline")
        assert spec.spec_hash() != spec.with_overrides(
            {"architecture.miner_count": 11}).spec_hash()
        assert spec.spec_hash() != spec.with_overrides({"seed": 2}).spec_hash()

    def test_canonical_json_is_key_sorted_and_minimal(self):
        payload = get_scenario("pow-baseline").canonical_json()
        assert ": " not in payload
        assert json.loads(payload)["name"] == "pow-baseline"


class TestPlans:
    def test_scenario_plan_one_slot_one_job_per_replicate(self):
        plan = compile_scenario("pos-slashing", replicates=3)
        assert len(plan) == 1
        assert [job.seed for job in plan.slots[0].jobs] == [1, 2, 3]
        assert len(plan.jobs) == 3
        assert all(job.spec.replicates == 1 for job in plan.jobs)

    def test_sweep_plan_one_slot_per_point(self):
        plan = compile_sweep("market-concentration")
        assert len(plan) == 3
        assert len(plan.jobs) == 3

    def test_study_plan_labels_and_member_jobs(self):
        plan = compile_study("figure1", member_overrides=FIGURE1_TRIMS)
        assert [slot.label for slot in plan.slots] == [
            "bitcoin", "ethereum", "pbft", "fabric", "edge"]
        assert len(plan.jobs) == 5

    def test_duplicate_units_deduplicate_by_key(self):
        # Two members running the identical computation share one unit job.
        from repro.scenarios import StudyMember, StudySpec

        spec = StudySpec(name="dup", members=[
            StudyMember("a", "pos-slashing", {"architecture.rounds": 100}),
            StudyMember("b", "pos-slashing", {"architecture.rounds": 100}),
        ])
        plan = compile_study(spec)
        assert len(plan.slots) == 2
        assert len(plan.jobs) == 1
        results = execute_plan(plan)
        assert results.labels() == ["a", "b"]
        assert results[0].metrics == results[1].metrics

    def test_assemble_rejects_missing_metrics(self):
        plan = compile_scenario("pos-slashing")
        with pytest.raises(KeyError, match="missing metrics"):
            plan.assemble({})

    def test_unit_job_key_embeds_seed_and_hash(self):
        spec = get_scenario("pos-slashing")
        job = UnitJob.for_spec(spec, seed=9)
        assert job.key.endswith("-s9")
        assert job.spec.seed == 9 and job.spec.replicates == 1


class TestBackends:
    def test_backend_for_mapping(self):
        assert isinstance(backend_for(None), SerialBackend)
        assert isinstance(backend_for(0), SerialBackend)
        assert isinstance(backend_for(1), SerialBackend)
        pool = backend_for(4)
        assert isinstance(pool, ProcessPoolBackend) and pool.jobs == 4

    def test_pool_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(-2)

    def test_parallel_sweep_equals_serial(self):
        overrides = {"architecture.steps": 30, "architecture.arrivals_per_step": 40}
        serial = run_sweep("market-concentration", overrides=overrides)
        parallel = run_sweep("market-concentration", overrides=overrides,
                             backend=ProcessPoolBackend(3))
        assert serial.to_json() == parallel.to_json()

    def test_progress_callback_sees_every_job(self):
        ticks = []
        run_sweep("market-concentration",
                  overrides={"architecture.steps": 10,
                             "architecture.arrivals_per_step": 10},
                  progress=lambda done, total, job: ticks.append((done, total)))
        assert ticks == [(1, 3), (2, 3), (3, 3)]

    def test_completed_jobs_are_skipped(self, monkeypatch):
        plan = compile_scenario("pos-slashing",
                                overrides={"architecture.rounds": 100},
                                replicates=2)
        first = execute_plan(plan)
        metrics = {job.key: dict(replicate.metrics)
                   for job, replicate in zip(plan.jobs, first[0].replicates)}

        def boom(job):
            raise AssertionError(f"unit job {job.key} should have been skipped")

        monkeypatch.setattr(execution_module, "execute_unit", boom)
        resumed = SerialBackend().execute(plan, completed=metrics)
        assert resumed == {}
        assert plan.assemble(metrics).to_json() == first.to_json()


class TestGoldenFigure1:
    def test_figure1_study_json_byte_identical_under_jobs_4(self):
        serial = run_study("figure1", replicates=2,
                           member_overrides=FIGURE1_TRIMS)
        parallel = run_study("figure1", replicates=2,
                             member_overrides=FIGURE1_TRIMS,
                             backend=ProcessPoolBackend(4))
        assert serial.to_json() == parallel.to_json()

    def test_cli_jobs_flag_byte_identical(self, capsys):
        argv = ["study", "figure1", "--quiet", "--json", "-"] + FIGURE1_TRIM_ARGS
        assert run_main(argv) == 0
        serial = capsys.readouterr().out
        assert run_main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel


class TestCliSubcommands:
    def test_run_subcommand_matches_legacy_spelling(self, capsys):
        legacy = ["pos-slashing", "--set", "architecture.rounds=150",
                  "--quiet", "--json", "-"]
        assert run_main(legacy) == 0
        first = capsys.readouterr().out
        assert run_main(["run"] + legacy) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_run_subcommand_drops_registered_sweeps(self, capsys):
        assert run_main(["run", "double-spend", "--quiet", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        # Base configuration only: one result object, not a 6-point list.
        assert isinstance(payload, dict)
        assert payload["scenario"] == "double-spend"
        assert payload["spec"]["sweeps"] == {}

    def test_sweep_subcommand(self, capsys):
        argv = ["sweep", "pos-slashing", "--set", "architecture.rounds=100",
                "--sweep", "architecture.multi_vote_fraction=0.5,1.0",
                "--quiet", "--json", "-"]
        assert run_main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [point["label"] for point in payload] == [
            "multi_vote_fraction=0.5", "multi_vote_fraction=1.0"]

    def test_run_without_name_fails(self):
        with pytest.raises(SystemExit, match="registered scenario"):
            run_main(["run"])

    def test_help_documents_jobs_and_save(self, capsys):
        with pytest.raises(SystemExit):
            run_main(["--help"])
        out = capsys.readouterr().out
        assert "--jobs" in out and "--save" in out
        assert "repro-run study figure1 --save fig1-nightly" in out
