"""Tests for the edge model, workloads, the comparison harness and the decision framework."""

import pytest

from repro.blockchain.primitives import Transaction
from repro.core.claims import CLAIMS, claims_by_id
from repro.core.comparison import compare_architectures
from repro.core.decision import DecisionInput, decision_matrix, recommend_architecture
from repro.edge.islands import BlockchainIsland, IslandFederation, VERTICAL_DOMAINS
from repro.edge.placement import PlacementStrategy, compare_placements
from repro.edge.topology import EdgeTopology, EdgeTopologyConfig, TIER_LATENCIES
from repro.workloads.generators import (
    LookupWorkload,
    PaymentWorkload,
    VerticalWorkload,
    ZipfObjectWorkload,
)


class TestEdgeTopology:
    def test_tiers_built(self):
        topology = EdgeTopology(EdgeTopologyConfig(regions=2, organizations_per_region=2,
                                                   devices_per_organization=10))
        assert len(topology.devices) == 40
        assert len(topology.edge_sites) == 4
        assert len(topology.regional_sites) == 2
        assert len(topology.central_sites) == 1

    def test_latency_ordering_edge_regional_central(self):
        topology = EdgeTopology(EdgeTopologyConfig(seed=1))
        device = topology.devices[0]
        edge = topology.edge_site_of(device.organization)
        regional = topology.nearest_regional(device)
        central = topology.central()
        edge_latency = topology.latency(device, edge, jitter=False)
        regional_latency = topology.latency(device, regional, jitter=False)
        central_latency = topology.latency(device, central, jitter=False)
        assert edge_latency < regional_latency < central_latency

    def test_cross_region_penalty(self):
        topology = EdgeTopology(EdgeTopologyConfig(regions=2, seed=2))
        device = topology.devices[0]
        local_dc = topology.nearest_regional(device)
        remote_dc = next(s for s in topology.regional_sites if s.region != device.region)
        assert topology.latency(device, remote_dc, jitter=False) > topology.latency(
            device, local_dc, jitter=False
        )

    def test_invalid_tier_rejected(self):
        from repro.edge.topology import Site

        with pytest.raises(ValueError):
            Site(name="x", tier="orbital", region="r", organization="o")

    def test_tier_latency_table_ordered(self):
        assert (
            TIER_LATENCIES["device"]
            < TIER_LATENCIES["edge"]
            < TIER_LATENCIES["regional"]
            < TIER_LATENCIES["central"]
        )


class TestPlacement:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_placements(requests=800, seed=3)

    def test_edge_latency_several_fold_lower(self, comparison):
        assert comparison.speedup("cloud-only", "edge-centric") > 3.0

    def test_edge_trust_is_decentralized(self, comparison):
        assert comparison.results["cloud-only"].trust_nakamoto == 1
        assert comparison.results["edge-centric"].trust_nakamoto > 1

    def test_edge_keeps_data_local(self, comparison):
        assert comparison.results["edge-centric"].control_locality > 0.8
        assert comparison.results["cloud-only"].control_locality == 0.0

    def test_regional_between_edge_and_central(self, comparison):
        edge = comparison.results["edge-centric"].p50_latency
        regional = comparison.results["regional-cloud"].p50_latency
        central = comparison.results["cloud-only"].p50_latency
        assert edge < regional < central

    def test_summaries_have_keys(self, comparison):
        for result in comparison.results.values():
            summary = result.summary()
            for key in ("p50_latency_ms", "p99_latency_ms", "trust_nakamoto", "control_locality"):
                assert key in summary

    def test_strategy_presets(self):
        assert PlacementStrategy.cloud_only().name == "cloud-only"
        assert PlacementStrategy.edge_centric().overflow_probability > 0


class TestIslands:
    def test_island_runs_workload(self):
        island = BlockchainIsland(name="supply", domain="supply-chain", organizations=3, seed=1)
        metrics = island.run_intra_island_workload(request_rate=150, duration=2)
        assert metrics.committed_valid > 100
        assert metrics.latencies.mean() < 1.0

    def test_federation_interop_overhead_bounded(self):
        federation = IslandFederation(seed=2)
        federation.add_island(BlockchainIsland(name="trade", domain="supply-chain", seed=3))
        federation.add_island(BlockchainIsland(name="health", domain="healthcare", seed=4))
        federation.connect("trade", "health")
        report = federation.interoperability_overhead("trade", "health",
                                                      request_rate=120, duration=2)
        assert report["cross_island_latency_s"] > report["intra_island_latency_s"]
        assert report["overhead_factor"] < 6.0

    def test_duplicate_island_rejected(self):
        federation = IslandFederation()
        federation.add_island(BlockchainIsland(name="a", domain="finance", organizations=3, seed=5))
        with pytest.raises(ValueError):
            federation.add_island(BlockchainIsland(name="a", domain="finance", organizations=3, seed=6))

    def test_gateway_requires_member_islands(self):
        federation = IslandFederation()
        with pytest.raises(KeyError):
            federation.connect("x", "y")

    def test_federation_trust_spreads_across_orgs(self):
        federation = IslandFederation(seed=7)
        federation.add_island(BlockchainIsland(name="a", domain="finance", organizations=3, seed=8))
        federation.add_island(BlockchainIsland(name="b", domain="energy", organizations=3, seed=9))
        entities = federation.federation_trust_entities()
        assert len(entities) == 6
        assert sum(entities.values()) == pytest.approx(1.0)

    def test_vertical_domains_listed(self):
        assert "healthcare" in VERTICAL_DOMAINS
        assert "supply-chain" in VERTICAL_DOMAINS


class TestWorkloads:
    def test_payment_workload_rate(self):
        events = list(PaymentWorkload(rate_tps=20, seed=1).events(duration=100.0))
        assert 1500 < len(events) < 2500
        assert all(event.timestamp <= 100.0 for event in events)

    def test_payment_transactions_valid(self):
        txs = PaymentWorkload(rate_tps=5, seed=2).transactions(duration=20.0)
        assert all(isinstance(tx, Transaction) for tx in txs)
        assert all(tx.amount > 0 for tx in txs)

    def test_payment_rate_must_be_positive(self):
        with pytest.raises(ValueError):
            PaymentWorkload(rate_tps=0.0)

    def test_lookup_workload_keys(self):
        events = list(LookupWorkload(rate_per_second=10, keys=100, seed=3).events(duration=30.0))
        assert all(event.kind == "lookup" for event in events)
        assert len(events) > 100

    def test_zipf_objects_skewed(self):
        workload = ZipfObjectWorkload(objects=1000, zipf_exponent=1.1, seed=4)
        requests = workload.requests(2000)
        popular = sum(1 for r in requests if int(str(r["object_id"]).split("-")[1]) <= 100)
        assert popular / len(requests) > 0.4

    def test_vertical_workload_domains(self):
        for domain in VerticalWorkload.DOMAINS:
            invocation = VerticalWorkload(domain, seed=5).invocation()
            assert "chaincode" in invocation
            assert "args" in invocation

    def test_vertical_workload_unknown_domain(self):
        with pytest.raises(ValueError):
            VerticalWorkload("gaming")

    def test_vertical_workload_event_stream(self):
        events = list(VerticalWorkload("supply-chain", rate_tps=30, seed=6).events(duration=10.0))
        assert len(events) > 100
        assert all(event.kind == "supply-chain" for event in events)


class TestDecisionFramework:
    def test_consortium_without_mutual_trust_gets_permissioned(self):
        result = recommend_architecture(DecisionInput(
            participants_known=True, participants_mutually_trusting=False,
        ))
        assert result.architecture == "permissioned-blockchain"
        assert result.is_blockchain()

    def test_latency_sensitive_consortium_gets_edge_centric(self):
        result = recommend_architecture(DecisionInput(
            participants_known=True, participants_mutually_trusting=False,
            latency_sensitive=True,
        ))
        assert result.architecture == "edge-centric-permissioned-blockchain"

    def test_trusted_operator_gets_cloud(self):
        result = recommend_architecture(DecisionInput(single_trusted_operator_acceptable=True))
        assert result.architecture in ("centralized-cloud", "edge-plus-cloud")
        assert not result.is_blockchain()

    def test_open_anonymous_participation_gets_permissionless_with_warnings(self):
        result = recommend_architecture(DecisionInput(
            open_anonymous_participation_required=True,
            throughput_tps_required=1000,
            latency_sensitive=True,
        ))
        assert result.architecture == "permissionless-blockchain"
        assert len(result.warnings) >= 2

    def test_decision_matrix_covers_section_v_use_cases(self):
        rows = decision_matrix()
        by_case = {row["use_case"]: row["recommendation"] for row in rows}
        assert by_case["supply-chain"] == "permissioned-blockchain"
        assert "permissioned" in by_case["smart-grid"]
        assert by_case["consumer-web-app"] in ("centralized-cloud", "edge-plus-cloud")
        assert by_case["censorship-resistant-currency"] == "permissionless-blockchain"


class TestClaimsRegistry:
    def test_sixteen_claims_registered(self):
        assert len(CLAIMS) == 16
        assert set(claims_by_id().keys()) == {f"E{i}" for i in range(1, 17)}

    def test_every_claim_names_a_benchmark_and_modules(self):
        for claim in CLAIMS:
            assert claim.benchmark.startswith("benchmarks/test_")
            assert len(claim.modules) >= 1
            assert claim.section
            assert claim.statement


class TestArchitectureComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return compare_architectures(seed=2, pow_blocks=25, fabric_rate=1000, fabric_duration=3)

    def test_all_architectures_present(self, comparison):
        names = {row["architecture"] for row in comparison.rows()}
        assert names == {
            "bitcoin-pow", "ethereum-pow", "permissioned-fabric",
            "centralized-cloud", "edge-federation",
        }

    def test_throughput_ordering_matches_paper(self, comparison):
        profiles = comparison.profiles
        assert profiles["bitcoin-pow"].throughput_tps < profiles["ethereum-pow"].throughput_tps * 2
        assert profiles["ethereum-pow"].throughput_tps < 50
        assert profiles["permissioned-fabric"].throughput_tps > 100
        assert profiles["centralized-cloud"].throughput_tps > profiles["permissioned-fabric"].throughput_tps

    def test_permissionless_energy_dwarfs_everything(self, comparison):
        profiles = comparison.profiles
        assert profiles["bitcoin-pow"].energy_per_tx_kwh > 1e5 * profiles["permissioned-fabric"].energy_per_tx_kwh

    def test_trust_decentralization(self, comparison):
        profiles = comparison.profiles
        assert profiles["centralized-cloud"].trust_nakamoto == 1
        assert profiles["permissioned-fabric"].trust_nakamoto > 1
        assert profiles["edge-federation"].trust_nakamoto > 1

    def test_finality_gap(self, comparison):
        profiles = comparison.profiles
        assert profiles["bitcoin-pow"].finality_latency_s > 1000
        assert profiles["permissioned-fabric"].finality_latency_s < 1.0

    def test_throughput_gap_is_orders_of_magnitude(self, comparison):
        assert comparison.throughput_gap("permissioned-fabric", "bitcoin-pow") > 20
