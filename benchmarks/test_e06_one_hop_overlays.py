"""E6 — one-hop overlays are the right call for stable 10K-100K networks (Section II-B).

Paper (citing Gupta/Liskov/Rodrigues [24]): "for networks between 10K and
100K it is possible to have full membership routing information and provide
one-hop routing.  If the overlay is relatively stable like a corporate
network, then O(1) routing and full membership is the right decision."
"""

from repro.analysis.tables import ResultTable
from repro.p2p.onehop import OverlayCostModel


def _run_sweep():
    model = OverlayCostModel()
    rows = []
    for size in (10_000, 50_000, 100_000, 1_000_000):
        for churn_label, churn_rate in (("corporate (0.2/h)", 0.2), ("open p2p (4/h)", 4.0)):
            comparison = model.compare(size, churn_rate)
            comparison["churn"] = churn_label
            comparison["feasible"] = model.onehop_feasible(size, churn_rate)
            rows.append(comparison)
    return rows


def test_e06_one_hop_overlays(once):
    rows = once(_run_sweep)

    table = ResultTable(
        ["size", "churn", "1hop_state_MB", "1hop_kbps", "1hop_latency_s",
         "dht_latency_s", "1hop_feasible"],
        title="E6: one-hop (full membership) vs multi-hop DHT",
    )
    for row in rows:
        table.add_row(int(row["size"]), row["churn"], row["onehop_state_mb"],
                      row["onehop_maintenance_kbps"], row["onehop_lookup_latency_s"],
                      row["multihop_lookup_latency_s"], row["feasible"])
    table.print()

    corporate = [row for row in rows if "corporate" in row["churn"]]
    open_p2p = [row for row in rows if "open" in row["churn"]]
    # Shape: for 10K-100K nodes under corporate churn, one-hop is feasible and
    # strictly faster than the multi-hop DHT.
    for row in corporate:
        if row["size"] <= 100_000:
            assert row["feasible"]
            assert row["onehop_lookup_latency_s"] < row["multihop_lookup_latency_s"]
    # Shape: at a million nodes under open-P2P churn the maintenance bandwidth
    # overwhelms the per-node budget — full membership stops being sensible.
    worst = next(row for row in open_p2p if row["size"] == 1_000_000)
    assert not worst["feasible"]
    assert worst["onehop_maintenance_kbps"] > 100.0
