"""E15 — permissioned/BFT blockchains versus permissionless PoW (Section IV).

Paper: permissioned blockchains avoid "costly proof-of-work by using
different consensus algorithms such as crash fault-tolerant (CFT) or
byzantine fault tolerant (BFT) protocols", and "consensus or replication can
be configured between a subset of the nodes of the network".
"""

from repro.analysis.tables import ResultTable
from repro.blockchain.network import BITCOIN_PROTOCOL, PoWNetwork, PoWNetworkConfig
from repro.consensus.pbft import PBFTCluster, PBFTConfig
from repro.consensus.raft import RaftCluster, RaftConfig
from repro.permissioned.chaincode import asset_transfer_chaincode
from repro.permissioned.fabric import FabricNetwork, FabricNetworkConfig


def _run_all():
    pow_result = PoWNetwork(
        PoWNetworkConfig(protocol=BITCOIN_PROTOCOL, miner_count=10,
                         tx_arrival_rate=12.0, duration_blocks=60, seed=1)
    ).run()
    pbft = PBFTCluster(PBFTConfig(replicas=4, batch_size=100, seed=1)).run_workload(
        request_rate=3000, duration=5
    )
    raft = RaftCluster(RaftConfig(replicas=5, batch_size=200, seed=1)).run_workload(
        request_rate=4000, duration=5
    )
    fabric = FabricNetwork(FabricNetworkConfig(organizations=4, peers_per_org=2, seed=1))
    fabric.install_chaincode("default", asset_transfer_chaincode())
    fabric_metrics = fabric.run_workload("default", "asset-transfer",
                                         request_rate=1500, duration=5, key_space=20_000)
    return pow_result, pbft, raft, fabric_metrics


def test_e15_permissioned_throughput(once):
    pow_result, pbft, raft, fabric = once(_run_all)
    pow_finality = (
        BITCOIN_PROTOCOL.confirmations_for_finality * BITCOIN_PROTOCOL.target_block_interval
    )

    table = ResultTable(
        ["system", "throughput_tps", "latency_s", "membership"],
        title="E15: permissioned (BFT/CFT) vs permissionless (PoW)",
    )
    table.add_row("bitcoin-like PoW", pow_result.throughput_tps, pow_finality, "open")
    table.add_row("PBFT (n=4)", pbft.throughput_tps, pbft.mean_latency, "known consortium")
    table.add_row("Raft ordering (n=5)", raft.throughput_tps, raft.mean_latency, "known consortium")
    table.add_row("Fabric execute-order-validate", fabric.throughput_tps,
                  fabric.latencies.mean(), "known consortium (channel)")
    table.print()

    # Shape: on the same simulation substrate, the permissioned stack sustains
    # thousands of requests per second at sub-second latency while PoW stays in
    # single-digit tps with minutes-to-hour finality.
    assert pow_result.throughput_tps < 20.0
    assert pow_finality >= 3600.0
    assert pbft.throughput_tps > 1000.0
    assert pbft.mean_latency < 1.0
    assert raft.throughput_tps > 1000.0
    assert fabric.throughput_tps > 500.0
    assert fabric.latencies.mean() < 1.0
    assert fabric.throughput_tps / max(pow_result.throughput_tps, 1e-9) > 50.0
