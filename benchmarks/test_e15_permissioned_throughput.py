"""E15 — permissioned/BFT blockchains versus permissionless PoW (Section IV).

Paper: permissioned blockchains avoid "costly proof-of-work by using
different consensus algorithms such as crash fault-tolerant (CFT) or
byzantine fault tolerant (BFT) protocols", and "consensus or replication can
be configured between a subset of the nodes of the network".

All four systems run through the scenario framework into one
:class:`~repro.analysis.resultset.ResultSet` — the same registry entries E7
and the examples use, with one dotted-path override trimming the PoW run to
this experiment's length — and the rows are pulled from its query surface.
"""

from repro.analysis.resultset import ResultSet
from repro.analysis.tables import ResultTable
from repro.scenarios import run_scenario


def _run_all():
    return ResultSet(
        [
            run_scenario("pow-baseline",
                         overrides={"architecture.duration_blocks": 60}),
            run_scenario("pbft-consortium"),
            run_scenario("raft-ordering"),
            run_scenario("fabric-consortium"),
        ],
        name="e15",
        description="permissioned (BFT/CFT) vs permissionless (PoW)",
    )


def test_e15_permissioned_throughput(once):
    results = once(_run_all)
    pow_metrics = results.only(scenario="pow-baseline").metrics
    pbft = results.only(scenario="pbft-consortium").metrics
    raft = results.only(scenario="raft-ordering").metrics
    fabric = results.only(scenario="fabric-consortium").metrics
    pow_finality = pow_metrics["finality_nominal_s"]

    table = ResultTable(
        ["system", "throughput_tps", "latency_s", "membership"],
        title="E15: permissioned (BFT/CFT) vs permissionless (PoW)",
    )
    table.add_row("bitcoin-like PoW", pow_metrics["throughput_tps"], pow_finality, "open")
    table.add_row("PBFT (n=4)", pbft["throughput_tps"], pbft["mean_latency_s"],
                  "known consortium")
    table.add_row("Raft ordering (n=5)", raft["throughput_tps"], raft["mean_latency_s"],
                  "known consortium")
    table.add_row("Fabric execute-order-validate", fabric["throughput_tps"],
                  fabric["mean_latency_s"], "known consortium (channel)")
    table.print()

    # Shape: on the same simulation substrate, the permissioned stack sustains
    # thousands of requests per second at sub-second latency while PoW stays in
    # single-digit tps with minutes-to-hour finality.
    assert pow_metrics["throughput_tps"] < 20.0
    assert pow_finality >= 3600.0
    assert pbft["throughput_tps"] > 1000.0
    assert pbft["mean_latency_s"] < 1.0
    assert raft["throughput_tps"] > 1000.0
    assert fabric["throughput_tps"] > 500.0
    assert fabric["mean_latency_s"] < 1.0
    assert fabric["throughput_tps"] / max(pow_metrics["throughput_tps"], 1e-9) > 50.0
    # The consortium families agree on who holds trust: a known quorum.
    assert results.filter(family=["consensus", "permissioned"]).axis_values(
        "trust_nakamoto") == [3.0]
