"""A1 — block size vs stale rate: why "just raise the block size" is not free.

Design-choice ablation called out in DESIGN.md: larger blocks raise the
throughput ceiling but propagate more slowly, so the fork/stale rate grows,
weakening security and favouring well-connected (centralized) miners.
"""

from repro.analysis.tables import ResultTable
from repro.blockchain.network import PoWNetwork, PoWNetworkConfig, ProtocolParams


def _run_sweep():
    rows = []
    for block_mb in (0.25, 1.0, 8.0, 32.0):
        protocol = ProtocolParams(
            name=f"block-{block_mb}mb",
            target_block_interval=120.0,          # compressed interval keeps runs short
            max_block_bytes=int(block_mb * 1_000_000),
            avg_tx_bytes=400,
            retarget_window=10_000,
        )
        config = PoWNetworkConfig(
            protocol=protocol,
            miner_count=12,
            tx_arrival_rate=protocol.capacity_tps * 2.0,
            validation_seconds_per_mb=4.0,
            duration_blocks=150,
            seed=2,
        )
        result = PoWNetwork(config).run()
        rows.append((block_mb, result))
    return rows


def test_a01_blocksize_ablation(once):
    rows = once(_run_sweep)

    table = ResultTable(
        ["block_mb", "capacity_tps", "throughput_tps", "stale_rate", "propagation_s"],
        title="A1: block size vs throughput vs stale rate",
    )
    for block_mb, result in rows:
        table.add_row(block_mb, result.capacity_tps, result.throughput_tps,
                      result.stale_rate, result.mean_propagation_delay)
    table.print()

    smallest = rows[0][1]
    largest = rows[-1][1]
    # Shape: capacity and throughput grow with the block size...
    assert largest.capacity_tps > 10 * smallest.capacity_tps
    assert largest.throughput_tps > smallest.throughput_tps
    # ...but propagation slows and the stale rate rises with it.
    assert largest.mean_propagation_delay > smallest.mean_propagation_delay
    assert largest.stale_rate >= smallest.stale_rate
    assert largest.stale_rate > 0.02
