"""Microbenchmarks for the fast-path simulation core.

Unlike the ``test_e*`` experiment benchmarks (which reproduce paper claims),
these measure the *harness itself*: engine events/sec, network messages/sec
and end-to-end PoW blocks/sec.  ``benchmarks.perf_report`` runs the same
workloads at full size and maintains the committed ``BENCH_core.json``
trajectory; here they run at reduced size so the whole suite stays fast,
and the assertions are structural (work completed, accounting consistent)
rather than wall-clock thresholds, which would flake on shared CI hosts.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.perf_core import (
    engine_events,
    engine_waiters,
    network_messages,
    pow_blocks,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"


class TestEngineMicrobench:
    def test_engine_events_blend(self, once):
        total = 40_000
        processed, elapsed = once(engine_events, total=total, ring=256)
        # Every budgeted event runs, plus the ring warm-up entries.
        assert processed >= total
        assert elapsed > 0
        print(f"\nengine events/sec: {processed / elapsed:,.0f}")

    def test_engine_waiters_fan_in(self, once):
        completions, elapsed = once(engine_waiters, total=8_000)
        assert completions == 8_000
        assert elapsed > 0
        print(f"\nwaiter completions/sec: {completions / elapsed:,.0f}")


class TestNetworkMicrobench:
    def test_network_message_ring(self, once):
        delivered, elapsed = once(network_messages, total=20_000)
        assert delivered >= 20_000
        assert elapsed > 0
        print(f"\nnetwork messages/sec: {delivered / elapsed:,.0f}")


class TestEndToEndMicrobench:
    def test_pow_blocks(self, once):
        blocks, elapsed = once(pow_blocks, blocks=40, miners=8)
        assert blocks >= 40
        assert elapsed > 0
        print(f"\npow blocks/sec: {blocks / elapsed:,.0f}")


class TestCommittedBaseline:
    def test_bench_core_json_schema(self):
        document = json.loads(BENCH_PATH.read_text())
        assert document["schema"] == "bench-core/v1"
        for key in (
            "engine_events_per_sec",
            "engine_waiters_per_sec",
            "network_messages_per_sec",
            "pow_blocks_per_sec",
        ):
            assert document["results"][key] > 0
            assert document["seed_baseline"][key] > 0

    def test_engine_speedup_vs_seed_is_at_least_3x(self):
        # The committed trajectory must show the slotted-engine rewrite
        # delivering >= 3x events/sec over the PR-1 seed implementation.
        document = json.loads(BENCH_PATH.read_text())
        assert document["speedup_vs_seed"]["engine_events_per_sec"] >= 3.0
