"""E4 — free riding and tit-for-tat incentives (Section II-B, Problem 1).

Paper: free riding "was extensively reported in the Gnutella overlay";
"BitTorrent mitigated the free riding problem by designing the protocol
including incentives (tit-for-tat) ... But again, collaboration is only
enforced during the download process."
"""

from repro.analysis.tables import ResultTable
from repro.p2p.bittorrent import SwarmConfig, TitForTatSwarm
from repro.p2p.freeriding import (
    GNUTELLA_2000_REFERENCE,
    ContributionModel,
    analyze_contributions,
    incentive_sensitivity,
)


def _run_models():
    gnutella = analyze_contributions(
        ContributionModel(peers=10_000, free_rider_fraction=0.70).generate(seed=1)
    )
    sensitivity = incentive_sensitivity([0.0, 0.5, 1.0], peers=4000, seed=2)
    swarm = TitForTatSwarm(
        SwarmConfig(leechers=50, seeds=4, file_pieces=250, free_rider_fraction=0.3,
                    seed_lingering_rounds=2),
        seed=3,
    ).run()
    return gnutella, sensitivity, swarm


def test_e04_free_riding(once):
    gnutella, sensitivity, swarm = once(_run_models)

    table = ResultTable(
        ["quantity", "measured", "reference"],
        title="E4: free riding (Adar & Huberman shape) and tit-for-tat",
    )
    table.add_row("free rider fraction", gnutella.free_rider_fraction,
                  GNUTELLA_2000_REFERENCE["free_rider_fraction"])
    table.add_row("top 1% share of files", gnutella.top_1pct_share,
                  GNUTELLA_2000_REFERENCE["top_1pct_share_of_files"])
    table.add_row("top 25% share of files", gnutella.top_25pct_share,
                  GNUTELLA_2000_REFERENCE["top_25pct_share_of_files"])
    table.add_row("free-rider completion penalty (x)", swarm.free_rider_penalty(), ">1")
    table.add_row("seeds remaining at end", swarm.seeds_over_time[-1], "few (seeding collapses)")
    table.add_row("peers that completed", len(swarm.completion_rounds), "-")
    table.print()

    # Shape 1: the no-incentive overlay matches the measured Gnutella distribution.
    assert gnutella.matches_reference()
    assert gnutella.top_1pct_share >= GNUTELLA_2000_REFERENCE["top_1pct_share_of_files"] - 0.15
    # Shape 2: stronger incentives monotonically reduce free riding.
    fractions = [report.free_rider_fraction for report in sensitivity]
    assert fractions[0] > fractions[1] > fractions[2]
    # Shape 3: tit-for-tat penalises free riders during the download, but the
    # seeding population still collapses once downloads complete — only a small
    # fraction of the swarm sticks around to maintain the service.
    assert swarm.free_rider_penalty() > 1.1
    assert swarm.seeds_over_time[-1] < 0.3 * (50 + 4)
