"""E2 — DHT lookup latency: eMule KAD vs BitTorrent Mainline (Section II-A).

Paper (citing Jiménez et al. [20]): "lookups were performed within 5 seconds
90% of the time in Emule's Kad, but the median lookup time was around a
minute in both BitTorrent DHTs".

Runs through the scenario framework: the ``kad-lookup`` and
``mainline-lookup`` registry entries carry the exact parameters this
experiment used before the refactor.
"""

from repro.analysis.tables import ResultTable
from repro.scenarios import run_scenario


def _run_both():
    kad = run_scenario("kad-lookup").metrics
    mainline = run_scenario("mainline-lookup").metrics
    return kad, mainline


def test_e02_dht_lookup_latency(once):
    kad, mainline = once(_run_both)

    table = ResultTable(
        ["client", "median_s", "p90_s", "within_5s", "failure_rate", "timeouts/lookup"],
        title="E2: DHT lookup latency (paper: Kad 90% < 5 s; Mainline median ~ 1 minute)",
    )
    table.add_row("kad-like", kad["median_latency_s"], kad["p90_latency_s"],
                  kad["fraction_within_5s"], kad["failure_rate"], kad["timeouts_per_lookup"])
    table.add_row("mainline-like", mainline["median_latency_s"], mainline["p90_latency_s"],
                  mainline["fraction_within_5s"], mainline["failure_rate"],
                  mainline["timeouts_per_lookup"])
    table.print()

    # Shape: Kad completes within seconds (p90 <= ~5 s, most lookups < 5 s);
    # Mainline's median is an order of magnitude worse (tens of seconds to minutes).
    assert kad["p90_latency_s"] <= 6.0
    assert kad["fraction_within_5s"] >= 0.85
    assert mainline["median_latency_s"] >= 30.0
    assert mainline["median_latency_s"] >= 10.0 * kad["median_latency_s"]
