"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one of the paper's quantitative claims (see
DESIGN.md section 3 and ``repro.core.claims``).  Benchmarks run the
underlying experiment exactly once through ``benchmark.pedantic`` (the
numbers of interest are the experiment's outputs, not the wall-clock of the
harness) and print a :class:`repro.analysis.tables.ResultTable` so that
``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's rows.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture-style wrapper around :func:`run_once`."""

    def _run(function, *args, **kwargs):
        return run_once(benchmark, function, *args, **kwargs)

    return _run
