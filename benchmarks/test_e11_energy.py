"""E11 — proof-of-work energy consumption (Section III-B).

Paper: "the Bitcoin energy consumption peaked at 70TWh in 2018, which is
roughly what a country like Austria consumes."
"""

from repro.analysis.tables import ResultTable
from repro.blockchain.energy import AUSTRIA_ANNUAL_TWH, EnergyModel


def _run_model():
    model = EnergyModel()
    return model.report()


def test_e11_energy(once):
    report = once(_run_model)

    table = ResultTable(
        ["quantity", "value", "paper / reference"],
        title="E11: Bitcoin energy consumption (2018-era parameters)",
    )
    table.add_row("network power (GW)", report["network_power_gw"], "~7-9")
    table.add_row("annual energy (TWh/yr)", report["annual_energy_twh"],
                  f"~{AUSTRIA_ANNUAL_TWH} (Austria)")
    table.add_row("revenue-implied bound (TWh/yr)", report["revenue_implied_energy_twh"], "same order")
    table.add_row("energy per transaction (kWh)", report["energy_per_tx_kwh"], "~hundreds")
    table.add_row("cloud OLTP tx energy (kWh)", report["cloud_energy_per_tx_kwh"], "~1e-7")
    table.add_row("per-tx ratio (PoW / cloud)", report["per_tx_ratio"], ">1e6")
    table.print()

    # Shape: the bottom-up estimate lands in the tens-of-TWh band around the
    # paper's 70 TWh figure, the revenue-implied bound agrees to within a small
    # factor, and a PoW transaction costs many orders of magnitude more energy
    # than a cloud transaction.
    assert 40.0 <= report["annual_energy_twh"] <= 110.0
    assert abs(report["annual_energy_twh"] - AUSTRIA_ANNUAL_TWH) / AUSTRIA_ANNUAL_TWH < 0.4
    assert 0.2 < report["revenue_implied_energy_twh"] / report["annual_energy_twh"] < 5.0
    assert report["per_tx_ratio"] > 1e6
