"""E5 — churn degrades open-overlay performance (Section II-B, Problem 2).

Paper: "P2P networks show high heterogeneity and high degrees of churn ...
this can cause performance problems and latency.  When one needs any kind
of guaranteed quality of service ... stable cloud servers have no rival in
P2P networks."
"""

from repro.analysis.tables import ResultTable
from repro.p2p.kademlia import KademliaConfig
from repro.p2p.lookup import LookupExperiment, LookupExperimentConfig
from repro.sim.churn import ChurnModel


def _run_sweep():
    # The stable scenario models consortium/cloud membership: nobody leaves, so
    # routing tables never go stale.  The churny scenarios share the same
    # client behaviour and differ only in membership dynamics.
    stable_client = KademliaConfig.kad_like()
    stable_client.initial_stale_fraction = 0.0
    scenarios = [
        ("stable (cloud-like)", None, stable_client),
        ("moderate churn", ChurnModel.kad_like(), KademliaConfig.kad_like()),
        ("heavy churn", ChurnModel.bittorrent_like(), KademliaConfig.kad_like()),
        ("extreme churn", ChurnModel.aggressive(), KademliaConfig.kad_like()),
    ]
    rows = []
    for label, churn, client in scenarios:
        stats = LookupExperiment(
            LookupExperimentConfig(
                network_size=300, lookups=80, kademlia=client, churn=churn, seed=4,
            )
        ).run()
        rows.append((label, stats.summary()))
    return rows


def test_e05_churn_performance(once):
    rows = once(_run_sweep)

    table = ResultTable(
        ["membership", "median_s", "p90_s", "failure_rate", "timeouts/lookup", "staleness"],
        title="E5: lookup performance vs churn (stable membership has no rival)",
    )
    for label, summary in rows:
        table.add_row(label, summary["median_latency_s"], summary["p90_latency_s"],
                      summary["failure_rate"], summary["timeouts_per_lookup"],
                      summary["routing_staleness"])
    table.print()

    stable = rows[0][1]
    extreme = rows[-1][1]
    # Shape: latency and timeouts rise with churn; the stable configuration is flat.
    assert stable["median_latency_s"] < 1.0
    assert stable["failure_rate"] <= 0.02
    assert extreme["median_latency_s"] > 2.0 * stable["median_latency_s"]
    assert extreme["timeouts_per_lookup"] > stable["timeouts_per_lookup"]
    medians = [summary["median_latency_s"] for _, summary in rows]
    assert medians[-1] > medians[0]
