"""E5 — churn degrades open-overlay performance (Section II-B, Problem 2).

Paper: "P2P networks show high heterogeneity and high degrees of churn ...
this can cause performance problems and latency.  When one needs any kind
of guaranteed quality of service ... stable cloud servers have no rival in
P2P networks."

Runs through the scenario framework: the ``churn-ladder`` registry entry
declares the four membership rungs as variants (the stable rung differs in
both churn and routing-table freshness) over one shared client/workload.
"""

from repro.scenarios import run_sweep


def _run_sweep():
    return run_sweep("churn-ladder")


def test_e05_churn_performance(once):
    points = once(_run_sweep)

    points.to_table(
        metrics=["median_latency_s", "p90_latency_s", "failure_rate",
                 "timeouts_per_lookup", "routing_staleness"],
        title="E5: lookup performance vs churn (stable membership has no rival)",
    ).print()

    stable = points[0].metrics
    extreme = points[-1].metrics
    # Shape: latency and timeouts rise with churn; the stable configuration is flat.
    assert stable["median_latency_s"] < 1.0
    assert stable["failure_rate"] <= 0.02
    assert extreme["median_latency_s"] > 2.0 * stable["median_latency_s"]
    assert extreme["timeouts_per_lookup"] > stable["timeouts_per_lookup"]
    medians = [point.metrics["median_latency_s"] for point in points]
    assert medians[-1] > medians[0]
