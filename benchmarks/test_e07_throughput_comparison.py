"""E7 — throughput: Bitcoin vs Ethereum vs a partitioned cloud (Section III-C, Problem 2).

Paper: "While VISA is processing 24,000 transactions per second, Bitcoin can
process between 3.3 and 7 transactions per second, and Ethereum around 15
per second."

The two PoW networks run as members of the ``figure1`` study — the same
matched offered payment load every architecture family sees — and are pulled
out of the study's ResultSet; the cloud side is the analytic
partitioned-OLTP ceiling, which needs no simulation.
"""

from repro.analysis.tables import ResultTable
from repro.blockchain.throughput import REFERENCE_SYSTEMS, ThroughputModel
from repro.scenarios import run_study


def _run_networks():
    networks = run_study("figure1", members=["bitcoin", "ethereum"])
    cloud_tps = ThroughputModel().cloud_capacity_tps(partitions=16)
    return (networks.only(label="bitcoin").metrics,
            networks.only(label="ethereum").metrics, cloud_tps)


def test_e07_throughput_comparison(once):
    bitcoin, ethereum, cloud_tps = once(_run_networks)

    table = ResultTable(
        ["system", "measured_tps", "paper_tps", "architecture"],
        title="E7: sustained throughput (paper: 3.3-7 / ~15 / 24,000 tps)",
    )
    table.add_row("bitcoin (simulated)", bitcoin["throughput_tps"],
                  f"{REFERENCE_SYSTEMS['bitcoin'].paper_tps_low}-{REFERENCE_SYSTEMS['bitcoin'].paper_tps_high}",
                  "global broadcast validation")
    table.add_row("ethereum (simulated)", ethereum["throughput_tps"],
                  REFERENCE_SYSTEMS["ethereum"].paper_tps_low, "global broadcast validation")
    table.add_row("partitioned cloud (model)", cloud_tps,
                  REFERENCE_SYSTEMS["visa"].paper_tps_low, "shared-nothing partitions")
    table.print()

    # Shape: Bitcoin lands in the paper's 3.3-7 band (allow simulation noise),
    # Ethereum around 10-25, and the cloud is three orders of magnitude above.
    assert 3.0 <= bitcoin["throughput_tps"] <= 7.5
    assert 9.0 <= ethereum["throughput_tps"] <= 25.0
    assert cloud_tps >= 20_000.0
    assert cloud_tps / bitcoin["throughput_tps"] > 1000.0
    assert ethereum["throughput_tps"] > bitcoin["throughput_tps"]
