"""Perf-trajectory runner for the simulation core.

Measures the core microbenchmarks (see :mod:`benchmarks.perf_core`) plus
the execution-layer sweep workload (serial vs ``--jobs 4`` process-pool
wall clock over a 4-point scenario sweep, and the serial sweep again
under an active ``JobPolicy`` to bound supervision overhead) plus the
large-N fast-path workload (the full ``kademlia-churn-100k`` scale
proof in a subprocess: overlay events/sec over ``run()`` and the
subprocess peak RSS, which guards that streaming metrics keep memory
flat at 10^5 nodes) and maintains ``BENCH_core.json`` at the
repository root:

``python -m benchmarks.perf_report``
    Measure and compare against the committed baseline.  Exits non-zero if
    engine events/sec regresses more than 20% (other workloads warn only).
``python -m benchmarks.perf_report --update``
    Measure and rewrite the ``results`` section of ``BENCH_core.json``
    (the ``seed_baseline`` section is preserved — it records the PR-1 seed
    engine once and is the fixed origin of the perf trajectory).

The whole suite finishes in well under 60 seconds; every rate is the best
of several repeats to damp scheduler noise.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from datetime import date
from pathlib import Path
from typing import Dict

from benchmarks.perf_core import (
    engine_events,
    engine_waiters,
    network_messages,
    pow_blocks,
    rate,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"
SCHEMA = "bench-core/v1"
#: Engine events/sec may not drop more than this fraction below the
#: committed baseline before the check fails.
REGRESSION_TOLERANCE = 0.20

#: Workload descriptions recorded alongside the numbers so the JSON is
#: self-explaining for future PRs.
WORKLOAD_NOTES = {
    "engine_events_per_sec": (
        "Simulator event loop: 200k events, half a 1024-timer ring (heap "
        "discipline), half a zero-delay cascade (now-bucket discipline); "
        "best of 5"
    ),
    "engine_waiters_per_sec": (
        "all_of fan-in barriers, 8 events per round, 20k logical waiter "
        "completions; best of 3"
    ),
    "network_messages_per_sec": (
        "Network.send ping ring, 32 nodes in 2 regions, 60k deliveries "
        "with jitter sampling; best of 3"
    ),
    "pow_blocks_per_sec": (
        "End-to-end PoWNetwork, 8 miners, 150 main-chain blocks, seed 0; "
        "best of 5"
    ),
    "sweep_points_per_sec_serial": (
        "Execution layer: 4-point pos-nothing-at-stake sweep (1.5M rounds "
        "per point) on the SerialBackend, points per wall-clock second"
    ),
    "sweep_points_per_sec_jobs4": (
        "Same 4-point sweep on ProcessPoolBackend(4) (repro-run --jobs 4); "
        "output is byte-identical to serial, only wall clock differs"
    ),
    "sweep_parallel_speedup_x4": (
        "Serial over --jobs 4 wall clock for the sweep workload; bounded "
        "by host core count (a 1-core host shows <1.0)"
    ),
    "sweep_points_per_sec_supervised": (
        "Same serial sweep under an active JobPolicy (retries + timeout + "
        "keep_going); guards that the supervision plumbing stays off the "
        "hot path (<5% below the plain serial rate fails the check)"
    ),
    "overlay_events_per_sec_100k": (
        "Vectorized Kademlia fast path at full scale: 100k-node overlay "
        "under kad churn, 10k lookups in 1024-lookup waves with streaming "
        "metrics (the kademlia-churn-100k scenario), run in a subprocess; "
        "overlay events per second of run() wall clock (build excluded); "
        "single run"
    ),
    "peak_rss_mb_100k": (
        "Peak RSS (ru_maxrss) of that same 100k-node subprocess in MB; "
        "LOWER is better — guards that the streaming sketches keep memory "
        "flat at 10^5 nodes instead of accumulating per-lookup lists"
    ),
}

#: Supervised serial throughput may not drop more than this fraction below
#: the plain serial rate measured in the same process (same-host, same-run
#: comparison, so the guard is meaningful even though the committed
#: absolute numbers are host-dependent).
SUPERVISION_OVERHEAD_TOLERANCE = 0.05

#: The execution-layer sweep workload: CPU-bound, deterministic, 4 points
#: of roughly half a second each, so pool startup is amortised and a
#: 4-core host shows close to 4x.
SWEEP_POINTS = [0.25, 0.5, 0.75, 1.0]
SWEEP_ROUNDS = 1_500_000


def _sweep_spec():
    from repro.scenarios import get_scenario

    spec = get_scenario("pos-nothing-at-stake")
    spec.architecture["rounds"] = SWEEP_ROUNDS
    spec.sweeps = {"architecture.multi_vote_fraction": SWEEP_POINTS}
    return spec


def sweep_rates(jobs: int = 4) -> Dict[str, float]:
    """Wall-clock rates of the sweep workload, serial vs a process pool."""
    import time

    from repro.scenarios import ProcessPoolBackend, SerialBackend, run_sweep

    from repro.scenarios import JobPolicy

    supervised = JobPolicy(max_retries=2, timeout_s=600.0, keep_going=True)
    timings = {}
    for key, backend, policy in (
            ("serial", SerialBackend(), None),
            (f"jobs{jobs}", ProcessPoolBackend(jobs), None),
            ("supervised", SerialBackend(), supervised)):
        start = time.perf_counter()
        results = run_sweep(_sweep_spec(), backend=backend, policy=policy)
        timings[key] = time.perf_counter() - start
        assert len(results) == len(SWEEP_POINTS)
    return {
        "sweep_points_per_sec_serial": len(SWEEP_POINTS) / timings["serial"],
        f"sweep_points_per_sec_jobs{jobs}": len(SWEEP_POINTS) / timings[f"jobs{jobs}"],
        f"sweep_parallel_speedup_x{jobs}": timings["serial"] / timings[f"jobs{jobs}"],
        "sweep_points_per_sec_supervised":
            len(SWEEP_POINTS) / timings["supervised"],
    }


#: The large-N fast-path workload: the kademlia-churn-100k scenario shape
#: at full scale.  It runs in a subprocess so ru_maxrss measures only this
#: workload's footprint, not whatever the suite allocated before it.
OVERLAY_100K_SIZE = 100_000
OVERLAY_100K_LOOKUPS = 10_000

_OVERLAY_100K_SCRIPT = """\
import json, resource, sys, time

from repro.p2p.fastkad import FastKademliaConfig, FastKademliaOverlay
from repro.p2p.kademlia import KademliaConfig
from repro.sim.churn import ChurnModel
from repro.sim.network import NetworkParams

config = FastKademliaConfig(
    network_size=int(sys.argv[1]),
    lookups=int(sys.argv[2]),
    lookup_interval=0.05,
    kademlia=KademliaConfig.kad_like(),
    churn=ChurnModel.kad_like(),
    network_params=NetworkParams.by_name("wan"),
    seed=7,
    warmup=600.0,
    wave_size=1024,
    metrics="streaming",
)
overlay = FastKademliaOverlay(config)
start = time.perf_counter()
summary = overlay.run()
elapsed = time.perf_counter() - start
print(json.dumps({
    "events": summary["events_processed"],
    "elapsed": elapsed,
    "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
}))
"""


def overlay_100k_rates(size: int = OVERLAY_100K_SIZE,
                       lookups: int = OVERLAY_100K_LOOKUPS) -> Dict[str, float]:
    """Throughput and peak RSS of the 100k-node fast-path workload."""
    import os
    import subprocess

    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    output = subprocess.run(
        [sys.executable, "-c", _OVERLAY_100K_SCRIPT, str(size), str(lookups)],
        check=True, capture_output=True, text=True, env=env,
    ).stdout
    sample = json.loads(output)
    # ru_maxrss is KB on Linux (bytes on macOS, where these numbers are
    # host-local anyway and the committed baseline is Linux).
    divisor = 1024.0 if sys.platform != "darwin" else 1024.0 * 1024.0
    return {
        "overlay_events_per_sec_100k": sample["events"] / sample["elapsed"],
        "peak_rss_mb_100k": sample["ru_maxrss_kb"] / divisor,
    }


def measure() -> Dict[str, float]:
    """Run every core workload and return work-units-per-second rates."""
    results = {
        "engine_events_per_sec": rate(engine_events, repeats=5),
        "engine_waiters_per_sec": rate(engine_waiters, repeats=3),
        "network_messages_per_sec": rate(network_messages, repeats=3),
        "pow_blocks_per_sec": rate(pow_blocks, repeats=5, blocks=150),
    }
    results.update(sweep_rates())
    results.update(overlay_100k_rates())
    return results


def load_baseline() -> Dict:
    if BENCH_PATH.exists():
        return json.loads(BENCH_PATH.read_text())
    return {}


def check(results: Dict[str, float], baseline: Dict) -> int:
    """Compare fresh results against the committed baseline; 0 == pass."""
    committed = baseline.get("results", {})
    if not committed:
        print("no committed BENCH_core.json baseline; nothing to check")
        return 0
    status = 0
    for key, fresh in results.items():
        reference = committed.get(key)
        if not reference:
            continue
        change = fresh / reference - 1.0
        # ``peak_*`` keys record a footprint, not a rate: growth is the
        # regression direction there.
        worse = (change > REGRESSION_TOLERANCE if key.startswith("peak_")
                 else change < -REGRESSION_TOLERANCE)
        marker = "ok"
        if worse:
            if key == "engine_events_per_sec":
                marker = "FAIL"
                status = 1
            else:
                marker = "warn"
        print(
            f"{key:28s} {fresh:12.0f} vs baseline {reference:12.0f} "
            f"({change:+.1%}) {marker}"
        )
    # Supervision-overhead guard: compares two rates measured in THIS run
    # (not against the committed file), so it is host-independent.
    plain = results.get("sweep_points_per_sec_serial")
    supervised = results.get("sweep_points_per_sec_supervised")
    if plain and supervised:
        overhead = 1.0 - supervised / plain
        marker = "ok"
        if overhead > SUPERVISION_OVERHEAD_TOLERANCE:
            marker = "FAIL"
            status = 1
        print(f"{'supervision_overhead':28s} {overhead:+12.1%} of the serial "
              f"sweep rate (tolerance {SUPERVISION_OVERHEAD_TOLERANCE:.0%}) "
              f"{marker}")
    return status


def write(results: Dict[str, float], baseline: Dict) -> None:
    document = {
        "schema": SCHEMA,
        "updated": date.today().isoformat(),
        "python": platform.python_version(),
        "seed_baseline": baseline.get("seed_baseline", {}),
        "results": {key: round(value, 1 if value >= 100 else 4)
                    for key, value in results.items()},
        "workloads": WORKLOAD_NOTES,
    }
    seed = document["seed_baseline"]
    if seed:
        document["speedup_vs_seed"] = {
            key: round(results[key] / seed[key], 2)
            for key in results
            if seed.get(key)
        }
    BENCH_PATH.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BENCH_PATH}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the BENCH_core.json results section with fresh numbers",
    )
    args = parser.parse_args(argv)

    baseline = load_baseline()
    results = measure()
    for key, value in results.items():
        print(f"{key:28s} {value:12.0f}")
    if args.update:
        write(results, baseline)
        return 0
    return check(results, baseline)


if __name__ == "__main__":
    sys.exit(main())
