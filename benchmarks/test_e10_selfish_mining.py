"""E10 — selfish mining: a minority pool earns more than its fair share (Section III-C).

Paper (citing Eyal & Sirer [30]): "They present an attack where a minority
colluding pool can obtain more revenue than the pool's fair share."
"""

from repro.analysis.tables import ResultTable
from repro.blockchain.selfish import (
    profitability_threshold,
    revenue_curve,
    selfish_mining_revenue,
)


def _run_curves():
    alphas = [0.1, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45]
    return {
        "gamma0": revenue_curve(alphas, gamma=0.0, blocks=120_000, seed=1),
        "gamma05": revenue_curve(alphas, gamma=0.5, blocks=120_000, seed=1),
    }


def test_e10_selfish_mining(once):
    curves = once(_run_curves)

    table = ResultTable(
        ["alpha", "honest", "analytic g=0", "simulated g=0", "analytic g=0.5", "simulated g=0.5"],
        title="E10: selfish-mining relative revenue (Eyal-Sirer)",
    )
    for row0, row05 in zip(curves["gamma0"], curves["gamma05"]):
        table.add_row(row0["alpha"], row0["honest_revenue"], row0["analytic_revenue"],
                      row0["simulated_revenue"], row05["analytic_revenue"],
                      row05["simulated_revenue"])
    table.print()

    threshold_g0 = profitability_threshold(0.0)
    # Shape 1: Monte-Carlo matches the closed form.
    for row in curves["gamma0"]:
        assert abs(row["simulated_revenue"] - row["analytic_revenue"]) < 0.025
    # Shape 2: below the 1/3 threshold (gamma=0) the attack loses; above it wins.
    below = next(row for row in curves["gamma0"] if row["alpha"] == 0.25)
    above = next(row for row in curves["gamma0"] if row["alpha"] == 0.4)
    assert below["simulated_revenue"] < below["alpha"]
    assert above["simulated_revenue"] > above["alpha"] + 0.03
    assert abs(threshold_g0 - 1.0 / 3.0) < 1e-9
    # Shape 3: better propagation control (gamma) lowers the profitability bar.
    assert profitability_threshold(0.5) < threshold_g0
    assert selfish_mining_revenue(0.3, 0.5) > selfish_mining_revenue(0.3, 0.0)
