"""E3 — Sybil attacks on open DHTs (Section II-B, Problem 3).

Paper: "open networks where peers can assign their identities are prone to
Sybil attacks.  In a Sybil attack, the idea is to impersonate thousands of
identifiers with a few powerful nodes"; "massive identity problems were
reported in eMule KAD and in Bittorrent DHTs".
"""

from repro.analysis.tables import ResultTable
from repro.p2p.identifiers import key_for
from repro.p2p.sybil import SybilAttackConfig, run_sybil_attack


def _run_attacks():
    sweep = []
    for identities_per_machine in (5, 25, 50, 100):
        sweep.append(
            run_sybil_attack(
                SybilAttackConfig(
                    honest_nodes=200, attacker_machines=4,
                    identities_per_machine=identities_per_machine,
                    lookups=60, seed=1,
                )
            )
        )
    targeted = run_sybil_attack(
        SybilAttackConfig(
            honest_nodes=200, attacker_machines=2, identities_per_machine=16,
            lookups=40, targeted_key=key_for("censored-content"), seed=2,
        )
    )
    return sweep, targeted


def test_e03_sybil_attack(once):
    sweep, targeted = once(_run_attacks)

    table = ResultTable(
        ["attack", "machines", "identities", "identity_share", "physical_share", "hijack_rate"],
        title="E3: Sybil attacks on an open Kademlia overlay",
    )
    for result in sweep:
        table.add_row("uniform", result.attacker_machines, result.sybil_identities,
                      result.identity_share, result.physical_share, result.hijack_rate)
    table.add_row("targeted key", targeted.attacker_machines, targeted.sybil_identities,
                  targeted.identity_share, targeted.physical_share, targeted.hijack_rate)
    table.print()

    hijack_rates = [result.hijack_rate for result in sweep]
    # Shape: hijack grows (superlinearly) with the identity share even though
    # the physical resources are constant, and a targeted attack from ~1% of
    # physical nodes intercepts essentially all lookups for the victim key.
    assert hijack_rates[-1] > hijack_rates[0]
    assert hijack_rates[-1] > 0.4
    assert sweep[-1].amplification > 5.0
    assert targeted.physical_share < 0.02
    assert targeted.hijack_rate > 0.9
