"""A2 — BFT committee size vs throughput/latency: why consortia stay small.

Design-choice ablation: PBFT's all-to-all phases cost O(n^2) messages, so the
per-request CPU and latency grow with the committee; this is the quantitative
reason permissioned networks are run by tens, not thousands, of validators.

Runs through the scenario framework: the ``bft-committee-sweep`` registry
entry declares the committee sizes as a sweep axis over one base cluster.
"""

from repro.analysis.tables import ResultTable
from repro.scenarios import run_sweep


def _run_sweep():
    # run_sweep returns a ResultSet; .rows() is its labelled-metrics view.
    return run_sweep("bft-committee-sweep").rows()


def test_a02_bft_scaling(once):
    rows = once(_run_sweep)

    table = ResultTable(
        ["replicas", "throughput_tps", "p50_latency_s", "p99_latency_s", "messages_per_request"],
        title="A2: PBFT committee size scaling",
    )
    for row in rows:
        table.add_row(int(row["replicas"]), row["throughput_tps"], row["p50_latency_s"],
                      row["p99_latency_s"], row["messages_per_request"])
    table.print()

    first, last = rows[0], rows[-1]
    # Shape: message cost per request grows super-linearly with the committee,
    # latency rises, and the sustainable throughput falls.
    assert last["messages_per_request"] > 5 * first["messages_per_request"]
    assert last["p50_latency_s"] > first["p50_latency_s"]
    assert last["throughput_tps"] < first["throughput_tps"] * 1.05
    message_costs = [row["messages_per_request"] for row in rows]
    assert message_costs == sorted(message_costs)
