"""A4 — sensitivity of the DHT results to the churn model (Weibull vs exponential).

Design-choice ablation: the E2/E5 conclusions should not hinge on the exact
session-length distribution — heavy-tailed (Weibull) and memoryless
(exponential) churn with the same mean availability produce the same
qualitative gap between well-maintained and stale clients.
"""

from repro.analysis.tables import ResultTable
from repro.p2p.kademlia import KademliaConfig
from repro.p2p.lookup import LookupExperiment, LookupExperimentConfig
from repro.sim.churn import ChurnModel


def _run_sweep():
    churn_models = {
        "weibull (heavy tail)": ChurnModel(session_distribution="weibull", mean_session=3600.0,
                                           mean_downtime=3600.0, weibull_shape=0.5),
        "exponential": ChurnModel(session_distribution="exponential", mean_session=3600.0,
                                  mean_downtime=3600.0),
        "pareto": ChurnModel(session_distribution="pareto", mean_session=3600.0,
                             mean_downtime=3600.0),
    }
    rows = []
    for label, churn in churn_models.items():
        kad = LookupExperiment(
            LookupExperimentConfig(network_size=300, lookups=70,
                                   kademlia=KademliaConfig.kad_like(), churn=churn, seed=5)
        ).run()
        mainline = LookupExperiment(
            LookupExperimentConfig(network_size=300, lookups=70,
                                   kademlia=KademliaConfig.mainline_like(), churn=churn, seed=5)
        ).run()
        rows.append((label, kad.summary(), mainline.summary()))
    return rows


def test_a04_churn_models(once):
    rows = once(_run_sweep)

    table = ResultTable(
        ["churn model", "kad median_s", "kad p90_s", "mainline median_s", "gap (x)"],
        title="A4: DHT lookup results under different churn distributions",
    )
    for label, kad, mainline in rows:
        gap = mainline["median_latency_s"] / max(kad["median_latency_s"], 1e-9)
        table.add_row(label, kad["median_latency_s"], kad["p90_latency_s"],
                      mainline["median_latency_s"], gap)
    table.print()

    # Shape: regardless of the session distribution, the well-maintained client
    # answers in seconds and the stale/conservative client is an order of
    # magnitude slower — the E2 conclusion is not an artifact of the Weibull fit.
    for label, kad, mainline in rows:
        assert kad["median_latency_s"] < 8.0
        assert mainline["median_latency_s"] > 5.0 * kad["median_latency_s"]
