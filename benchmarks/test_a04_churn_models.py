"""A4 — sensitivity of the DHT results to the churn model (Weibull vs exponential).

Design-choice ablation: the E2/E5 conclusions should not hinge on the exact
session-length distribution — heavy-tailed (Weibull) and memoryless
(exponential) churn with the same mean availability produce the same
qualitative gap between well-maintained and stale clients.

Runs through the scenario framework: the ``churn-model-ablation`` registry
entry crosses three churn-distribution variants with a kad/mainline client
sweep (variants outer, sweep inner), so consecutive result pairs share a
churn model.
"""

from repro.analysis.tables import ResultTable
from repro.scenarios import run_sweep


def _run_sweep():
    # The sweep ResultSet partitions cleanly on the churn distribution (a
    # dotted spec axis); inside each group the client sweep is one filter.
    points = run_sweep("churn-model-ablation")
    rows = []
    for group in points.group_by("churn.session_distribution").values():
        kad = group.only(**{"architecture.overlay": "kad"})
        mainline = group.only(**{"architecture.overlay": "mainline"})
        label = kad.label.split(", overlay=")[0]
        rows.append((label, kad.metrics, mainline.metrics))
    return rows


def test_a04_churn_models(once):
    rows = once(_run_sweep)

    table = ResultTable(
        ["churn model", "kad median_s", "kad p90_s", "mainline median_s", "gap (x)"],
        title="A4: DHT lookup results under different churn distributions",
    )
    for label, kad, mainline in rows:
        gap = mainline["median_latency_s"] / max(kad["median_latency_s"], 1e-9)
        table.add_row(label, kad["median_latency_s"], kad["p90_latency_s"],
                      mainline["median_latency_s"], gap)
    table.print()

    # Shape: regardless of the session distribution, the well-maintained client
    # answers in seconds and the stale/conservative client is an order of
    # magnitude slower — the E2 conclusion is not an artifact of the Weibull fit.
    assert len(rows) == 3
    for label, kad, mainline in rows:
        assert kad["median_latency_s"] < 8.0
        assert mainline["median_latency_s"] > 5.0 * kad["median_latency_s"]
