"""E14 — proof-of-stake, nothing-at-stake and cheap attacks (Section III-C, Problem 2).

Paper: "Alternative approaches based on proof-of-X, where X could be stake,
space, activity, etc. seem not be able to fully address this problem so far",
citing Houy's "It will cost you nothing to 'kill' a proof-of-stake
crypto-currency".

The two validator-behaviour runs go through the scenario framework
(``pos-nothing-at-stake`` and ``pos-slashing``); the attack-cost comparison
is analytic.
"""

from repro.analysis.tables import ResultTable
from repro.blockchain.proof_of_stake import attack_cost_comparison
from repro.scenarios import run_scenario


def _run_models():
    naive = run_scenario("pos-nothing-at-stake").metrics
    slashing = run_scenario("pos-slashing").metrics
    costs = attack_cost_comparison()
    return naive, slashing, costs


def test_e14_proof_of_stake(once):
    naive, slashing, costs = once(_run_models)

    table = ResultTable(
        ["protocol variant", "fork-open fraction", "mean fork duration (rounds)"],
        title="E14: nothing-at-stake fork persistence",
    )
    table.add_row("naive PoS (no slashing)", naive["fork_open_fraction"],
                  naive["mean_fork_duration_rounds"])
    table.add_row("PoS with slashing", slashing["fork_open_fraction"],
                  slashing["mean_fork_duration_rounds"])
    table.print()

    cost_table = ResultTable(
        ["attack", "capital_usd", "operating_usd", "total_usd"],
        title="E14b: out-of-pocket cost of acquiring a majority",
    )
    for name, row in costs.items():
        cost_table.add_row(name, row["capital_usd"], row["operating_usd"], row["total_usd"])
    cost_table.print()

    # Shape: without slashing, rational multi-voting keeps forks open most of
    # the time; slashing restores fast convergence.
    assert naive["fork_open_fraction"] > 0.5
    assert slashing["fork_open_fraction"] < 0.2
    assert naive["mean_fork_duration_rounds"] > slashing["mean_fork_duration_rounds"]
    # Shape: buying up old keys under naive PoS costs orders of magnitude less
    # than matching PoW hardware+energy (Houy's "costs you nothing" argument).
    assert costs["naive_pos"]["total_usd"] < costs["pow"]["total_usd"] / 10.0
    assert costs["naive_pos"]["total_usd"] < costs["slashing_pos"]["total_usd"]
