"""E8 — 10-minute intervals via difficulty retargeting; ephemeral forks (Section III-A).

Paper: "The difficulty target is periodically adjusted in such a way that a
new block is generated every 10 minutes"; "the blockchain may occasionally
fork ... such ephemeral forks quickly disappear".

The retargeting half stays analytic (a difficulty adjuster fed synthetic
timestamps); the fork/stale half runs through the scenario framework via
the ``pow-fork-dynamics`` registry entry.
"""

from repro.analysis.stats import mean
from repro.analysis.tables import ResultTable
from repro.blockchain.mining import DifficultyAdjuster
from repro.scenarios import run_scenario
from repro.sim.rng import SeededRNG


def _run_retarget_and_forks():
    # Part 1: difficulty retargeting after a 4x hashrate increase.
    adjuster = DifficultyAdjuster(target_interval=600.0, retarget_window=144, initial_hashrate=1.0)
    rng = SeededRNG(1)
    hashrate = 4.0                       # the network just quadrupled its hash power
    timestamp = 0.0
    intervals_before, intervals_after = [], []
    retargets = 0
    for _ in range(600):
        interval = rng.exponential(adjuster.difficulty / hashrate)
        timestamp += interval
        (intervals_after if retargets >= 1 else intervals_before).append(interval)
        if adjuster.record_block(timestamp):
            retargets += 1

    # Part 2: fork/stale behaviour of the simulated Bitcoin-like network.
    forks = run_scenario("pow-fork-dynamics").metrics
    return mean(intervals_before), mean(intervals_after), retargets, forks


def test_e08_mining_difficulty(once):
    before, after, retargets, forks = once(_run_retarget_and_forks)

    table = ResultTable(
        ["quantity", "value", "target"],
        title="E8: difficulty retargeting and ephemeral forks",
    )
    table.add_row("mean interval before retarget (s)", before, "150 (4x too fast)")
    table.add_row("mean interval after retargets (s)", after, 600)
    table.add_row("retargets fired", retargets, ">=1")
    table.add_row("simulated mean block interval (s)", forks["mean_block_interval_s"], 600)
    table.add_row("stale/orphan rate", forks["stale_rate"], "~1%")
    table.add_row("max reorg depth", forks["max_reorg_depth"], "small")
    table.print()

    # Shape: before the retarget blocks arrive ~4x too fast; afterwards the
    # interval converges back to the 10-minute target.
    assert before < 300.0
    assert retargets >= 1
    assert 400.0 <= after <= 800.0
    # Shape: forks are rare and shallow at Bitcoin-like propagation/interval ratios.
    assert forks["stale_rate"] <= 0.05
    assert forks["max_reorg_depth"] <= 2
    assert 400.0 <= forks["mean_block_interval_s"] <= 850.0
