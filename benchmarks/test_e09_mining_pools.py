"""E9 — mining-pool concentration and the hopeless desktop miner (Section III-C, Problem 1).

Paper: "In 2013 six mining pools controlled 75% of overall Bitcoin hashing
power.  Nowadays it is almost impossible for a normal user to mine bitcoins
with a normal desktop computer."
"""

from repro.analysis.tables import ResultTable
from repro.blockchain.pools import PoolFormationConfig, PoolFormationModel
from repro.economics.incentives import HARDWARE_PROFILES, MiningEconomics


def _run_models():
    pools = PoolFormationModel(
        PoolFormationConfig(
            miners=1200,
            rounds=120,
            size_preference_exponent=1.12,
            exploration_rate=0.12,
            solo_threshold_share=0.03,
            seed=3,
        )
    )
    final = pools.run()
    economics = MiningEconomics()
    profitability = economics.profitability_report()
    return pools, final, profitability


def test_e09_mining_pools(once):
    pools, final, profitability = once(_run_models)

    table = ResultTable(
        ["quantity", "value", "paper / expectation"],
        title="E9: hash-power concentration and miner economics",
    )
    table.add_row("top-6 pools hash share", final.top_pools_share(6), ">= 0.75 (2013 observation)")
    table.add_row("top-1 pool hash share", final.top_pools_share(1), "~0.3-0.45 (GHash.io era)")
    table.add_row("Nakamoto coefficient", pools.final_nakamoto_coefficient(), "<= 6")
    table.print()

    hardware = ResultTable(
        ["hardware", "revenue_usd_day", "electricity_usd_day", "profit_usd_day", "days_per_block_solo"],
        title="E9b: expected mining economics per hardware class",
    )
    by_name = {row["name"]: row for row in profitability}
    for name in ("desktop-cpu", "gaming-gpu", "asic-miner", "asic-farm"):
        row = by_name[name]
        hardware.add_row(name, row["revenue_per_day_usd"], row["electricity_per_day_usd"],
                         row["profit_per_day_usd"], row["days_per_block_solo"])
    hardware.print()

    # Shape: concentration reaches the 2013 observation; a handful of pools
    # control a majority of the hash power.
    assert final.top_pools_share(6) >= 0.70
    assert pools.final_nakamoto_coefficient() <= 6
    trajectory = pools.top_k_trajectory(6)
    assert trajectory[-1] > trajectory[0]
    # Shape: the desktop CPU miner loses money and would wait millennia for a
    # block, while the industrial farm remains profitable.
    assert by_name["desktop-cpu"]["profit_per_day_usd"] < 0
    assert by_name["desktop-cpu"]["days_per_block_solo"] > 365_000
    assert by_name["asic-farm"]["profit_per_day_usd"] > 0
