"""E12 — the scalability trilemma (Section III-C, Problem 2).

Paper: "a blockchain technology can only address two of the three
challenges: scalability, decentralization, and security", scalability being
"able to process O(n) > O(c) transactions".

The design-space scores stay analytic (they reason about hypothetical
designs), but the axes themselves are also measured: the registered
``trilemma`` study runs one scenario per family and reports throughput
(scalability) and trust/hash-power concentration (decentralization) from
actual runs.
"""

from repro.analysis.tables import ResultTable
from repro.blockchain.trilemma import evaluate_designs
from repro.scenarios import run_study


def _run_all():
    scores = evaluate_designs()
    measured = run_study("trilemma", member_overrides={
        "pow": {"architecture.duration_blocks": 30},
        "committee": {"duration": 2.0},
        "fabric": {"duration": 2.0},
        "pools": {"architecture.miners": 600, "architecture.rounds": 60},
    })
    return scores, measured


def test_e12_trilemma(once):
    scores, measured = once(_run_all)

    table = ResultTable(
        ["design", "throughput_tps", "x over c", "scalability", "decentralization",
         "security", "sacrifices"],
        title="E12: the scalability trilemma across the design space",
    )
    for score in scores:
        table.add_row(score.design, score.throughput_tps, score.throughput_over_c,
                      score.scalability, score.decentralization, score.security,
                      score.weakest_axis())
    table.print()

    measured.to_table(
        metrics=["throughput_tps", "trust_nakamoto", "nakamoto"],
        title="E12b: the axes measured (trilemma study)",
    ).print()

    by_name = {score.design: score for score in scores}
    # Shape: no design gets all three; each corner has a recognisable sacrifice.
    assert all(not score.satisfies_all_three() for score in scores)
    assert by_name["full-broadcast-pow"].weakest_axis() == "scalability"
    assert by_name["bigger-blocks"].weakest_axis() == "decentralization"
    assert by_name["small-committee-layer2"].weakest_axis() == "decentralization"
    assert by_name["sharded"].weakest_axis() == "security"
    # Buterin's definition: the broadcast design never processes more than O(c).
    assert by_name["full-broadcast-pow"].throughput_over_c <= 1.5
    assert by_name["sharded"].throughput_over_c > 10.0

    # The measured axes agree with the analytic story: the scalable systems
    # (committee/consortium) beat the broadcast chain by orders of magnitude,
    # and the open ecosystem's hash power concentrates onto a handful of pools.
    pow_tps = measured.only(label="pow").metric("throughput_tps")
    assert measured.only(label="committee").metric("throughput_tps") > 50 * pow_tps
    assert measured.only(label="fabric").metric("throughput_tps") > 50 * pow_tps
    assert measured.only(label="pools").metric("nakamoto") <= 6
    assert measured.only(label="pools").metric("top6") >= 0.6
