"""E12 — the scalability trilemma (Section III-C, Problem 2).

Paper: "a blockchain technology can only address two of the three
challenges: scalability, decentralization, and security", scalability being
"able to process O(n) > O(c) transactions".
"""

from repro.analysis.tables import ResultTable
from repro.blockchain.trilemma import evaluate_designs


def _run_scores():
    return evaluate_designs()


def test_e12_trilemma(once):
    scores = once(_run_scores)

    table = ResultTable(
        ["design", "throughput_tps", "x over c", "scalability", "decentralization",
         "security", "sacrifices"],
        title="E12: the scalability trilemma across the design space",
    )
    for score in scores:
        table.add_row(score.design, score.throughput_tps, score.throughput_over_c,
                      score.scalability, score.decentralization, score.security,
                      score.weakest_axis())
    table.print()

    by_name = {score.design: score for score in scores}
    # Shape: no design gets all three; each corner has a recognisable sacrifice.
    assert all(not score.satisfies_all_three() for score in scores)
    assert by_name["full-broadcast-pow"].weakest_axis() == "scalability"
    assert by_name["bigger-blocks"].weakest_axis() == "decentralization"
    assert by_name["small-committee-layer2"].weakest_axis() == "decentralization"
    assert by_name["sharded"].weakest_axis() == "security"
    # Buterin's definition: the broadcast design never processes more than O(c).
    assert by_name["full-broadcast-pow"].throughput_over_c <= 1.5
    assert by_name["sharded"].throughput_over_c > 10.0
