"""A3 — propagation delay vs connectivity/bandwidth in the broadcast network.

Design-choice ablation: the broadcast network's propagation delay (and hence
the stale rate, see A1) is governed by link bandwidth and validation cost —
the same knobs that, turned up, favour datacenter-class relay networks over
home connections.
"""

from repro.analysis.tables import ResultTable
from repro.blockchain.network import BITCOIN_PROTOCOL, PoWNetwork, PoWNetworkConfig
from repro.sim.network import NetworkParams


def _run_sweep():
    scenarios = [
        ("home links (10 Mbps)", NetworkParams(base_latency=0.1, inter_region_latency=0.25,
                                               bandwidth_bps=10e6, latency_jitter=0.3), 4.0),
        ("well-provisioned (100 Mbps)", NetworkParams(base_latency=0.08, inter_region_latency=0.2,
                                                      bandwidth_bps=100e6, latency_jitter=0.3), 2.0),
        ("relay network (1 Gbps)", NetworkParams(base_latency=0.05, inter_region_latency=0.12,
                                                 bandwidth_bps=1e9, latency_jitter=0.2), 0.5),
    ]
    rows = []
    for label, params, validation in scenarios:
        config = PoWNetworkConfig(
            protocol=BITCOIN_PROTOCOL,
            miner_count=12,
            tx_arrival_rate=8.0,
            network_params=params,
            validation_seconds_per_mb=validation,
            duration_blocks=80,
            seed=3,
        )
        rows.append((label, PoWNetwork(config).run()))
    return rows


def test_a03_gossip_fanout(once):
    rows = once(_run_sweep)

    table = ResultTable(
        ["connectivity", "propagation_s", "stale_rate", "throughput_tps"],
        title="A3: block propagation vs connectivity class",
    )
    for label, result in rows:
        table.add_row(label, result.mean_propagation_delay, result.stale_rate,
                      result.throughput_tps)
    table.print()

    home = rows[0][1]
    relay = rows[-1][1]
    # Shape: better-provisioned networks propagate blocks faster, and the
    # stale rate never gets worse as propagation improves.
    assert relay.mean_propagation_delay < home.mean_propagation_delay
    assert relay.stale_rate <= home.stale_rate + 0.01
