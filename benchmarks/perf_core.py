"""Core-engine microbenchmark workloads.

Each workload drives one hot path of the simulation core and returns a
``(work_units, elapsed_seconds)`` pair:

* :func:`engine_events` — the event-loop blend: a timer ring (heap
  discipline: every event pushes a future event) plus a zero-delay cascade
  (now-bucket discipline: event triggers / process resumes).  Work units are
  engine events processed, and the schedule-call sequence is identical under
  the seed and current engines, so events/sec is directly comparable.
* :func:`engine_waiters` — fan-in synchronisation: ``all_of`` over batches
  of events, each triggered once.  Work units are *logical* waiter
  completions (not engine events), so it credits engines that need fewer
  internal events per wait.
* :func:`network_messages` — message passing over :class:`Network` with a
  ping-forwarding ring across two regions.  Work units are deliveries.
* :func:`pow_blocks` — end-to-end proof-of-work run.  Work units are
  main-chain blocks.

All workloads accept an optional ``sim_factory`` so the same harness can be
pointed at an alternative :class:`Simulator` implementation (this is how the
seed baseline in ``BENCH_core.json`` was produced).
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Optional, Tuple

from repro.sim.engine import Simulator


def engine_events(
    total: int = 200_000,
    ring: int = 1024,
    sim_factory: Callable[[], Simulator] = Simulator,
) -> Tuple[int, float]:
    """Blended event-loop workload: half timer ring, half zero-delay cascade.

    ``ring`` is the number of concurrently outstanding timers, i.e. the
    steady-state heap size.  The default of 1024 models a network of ~1k
    nodes each holding a live timer, which is the scale the DHT and
    blockchain experiments run at.
    """
    sim = sim_factory()
    schedule = sim.schedule
    ring_budget = total // 2
    cascade_budget = total - ring_budget
    state = {"ring": ring_budget, "cascade": cascade_budget}

    def tick(slot):
        remaining = state["ring"]
        if remaining > 0:
            state["ring"] = remaining - 1
            schedule(1.0, tick, slot)

    def cascade():
        remaining = state["cascade"]
        if remaining > 0:
            state["cascade"] = remaining - 1
            schedule(0.0, cascade)

    for slot in range(ring):
        schedule(0.0, tick, slot)
    schedule(0.0, cascade)
    start = perf_counter()
    processed = sim.run()
    elapsed = perf_counter() - start
    return processed, elapsed


def engine_waiters(
    total: int = 20_000,
    fan_in: int = 8,
    sim_factory: Callable[[], Simulator] = Simulator,
) -> Tuple[int, float]:
    """Fan-in workload: repeated ``all_of`` barriers over ``fan_in`` events."""
    sim = sim_factory()
    completions = {"count": 0}
    rounds = max(1, total // fan_in)

    def one_round(_value=None):
        if completions["count"] >= rounds:
            return
        completions["count"] += 1
        events = [sim.event(f"e{i}") for i in range(fan_in)]
        combined = sim.all_of(events)
        _chain(combined, one_round)
        for event in events:
            event.succeed(None)

    def _chain(event, callback):
        add = getattr(event, "add_callback", None)
        if add is not None:
            add(callback)
        else:  # seed engine: waiter process per callback
            def _waiter():
                value = yield event
                callback(value)

            sim.spawn(_waiter())

    sim.schedule(0.0, one_round)
    start = perf_counter()
    sim.run()
    elapsed = perf_counter() - start
    return rounds * fan_in, elapsed


def network_messages(
    total: int = 60_000,
    nodes: int = 32,
    sim_factory: Callable[[], Simulator] = Simulator,
) -> Tuple[int, float]:
    """Ping-forwarding ring over the latency/bandwidth network model."""
    from repro.sim.network import Network, NetworkParams
    from repro.sim.rng import SeededRNG

    sim = sim_factory()
    net = Network(sim, NetworkParams(latency_jitter=0.25), rng=SeededRNG(1))
    ids = [f"n{i}" for i in range(nodes)]
    nxt = {ids[i]: ids[(i + 1) % nodes] for i in range(nodes)}
    state = {"remaining": total}

    def handler(msg):
        remaining = state["remaining"]
        if remaining > 0:
            state["remaining"] = remaining - 1
            net.send(msg.recipient, nxt[msg.recipient], "ping", size_bytes=256)

    for index, node_id in enumerate(ids):
        net.register(node_id, handler, region="eu" if index % 2 else "us")
    for node_id in ids:
        net.send(node_id, nxt[node_id], "ping", size_bytes=256)
    start = perf_counter()
    sim.run()
    elapsed = perf_counter() - start
    return net.messages_delivered, elapsed


def pow_blocks(blocks: int = 60, miners: int = 8, seed: int = 0) -> Tuple[int, float]:
    """End-to-end proof-of-work network run (blocks mined per wall second)."""
    from repro.blockchain.network import PoWNetwork, PoWNetworkConfig

    config = PoWNetworkConfig(miner_count=miners, duration_blocks=blocks, seed=seed)
    network = PoWNetwork(config)
    start = perf_counter()
    result = network.run()
    elapsed = perf_counter() - start
    return result.chain.main_chain_length, elapsed


WORKLOADS = {
    "engine_events": engine_events,
    "engine_waiters": engine_waiters,
    "network_messages": network_messages,
    "pow_blocks": pow_blocks,
}


def rate(workload: Callable[..., Tuple[int, float]], repeats: int = 3, **kwargs) -> float:
    """Best work-units-per-second over ``repeats`` runs (minimises noise)."""
    best = 0.0
    for _ in range(repeats):
        units, elapsed = workload(**kwargs)
        if elapsed > 0:
            best = max(best, units / elapsed)
    return best
