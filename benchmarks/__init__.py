"""Benchmark package: paper-claim experiments plus the core perf suite.

``python -m benchmarks.perf_report`` runs the core microbenchmarks and
checks them against the committed ``BENCH_core.json`` baseline.
"""
