"""E16 — edge-centric computing plus permissioned blockchains (Section V, Figure 1).

Paper: control and data should sit at the edge ("everything is in the
edge"), with permissioned blockchains providing decentralized trust and the
cloud acting as a utility; blockchain islands interoperate across domains.

The placement comparison and the island federation run through the scenario
framework (``edge-placement`` and ``edge-federation``); the whole-stack
comparison (E16c) comes from ``compare_architectures``, which is now a shim
over the registered ``figure1`` study — every family through one code path.
"""

from repro.analysis.tables import ResultTable
from repro.core.comparison import compare_architectures
from repro.scenarios import run_scenario


def _run_all():
    placements = run_scenario("edge-placement").metrics
    interop = run_scenario("edge-federation").metrics
    architectures = compare_architectures(seed=3, pow_blocks=25, fabric_rate=1000,
                                          fabric_duration=4)
    return placements, interop, architectures


def test_e16_edge_vs_cloud(once):
    placements, interop, architectures = once(_run_all)

    table = ResultTable(
        ["placement", "p50_ms", "p99_ms", "trust_nakamoto", "data stays local"],
        title="E16: Figure 1 as numbers — centralized cloud vs edge-centric federation",
    )
    for name in ("cloud-only", "regional-cloud", "edge-centric"):
        table.add_row(name, placements[f"{name}.p50_latency_ms"],
                      placements[f"{name}.p99_latency_ms"],
                      placements[f"{name}.trust_nakamoto"],
                      placements[f"{name}.control_locality"])
    table.print()

    interop_table = ResultTable(
        ["quantity", "value"],
        title="E16b: blockchain-island interoperability overhead",
    )
    interop_table.add_row("intra-island latency (s)", interop["intra_island_latency_s"])
    interop_table.add_row("cross-island latency (s)", interop["cross_island_latency_s"])
    interop_table.add_row("overhead factor", interop["overhead_factor"])
    interop_table.print()

    arch_table = ResultTable(
        ["architecture", "throughput_tps", "finality_s", "trust_nakamoto"],
        title="E16c: whole-architecture comparison",
    )
    for row in architectures.rows():
        arch_table.add_row(row["architecture"], row["throughput_tps"],
                           row["finality_latency_s"], row["trust_nakamoto"])
    arch_table.print()

    # Shape: edge placement is several-fold faster, keeps data local, and its
    # trust is spread over the federation instead of one provider.
    assert placements["speedup_cloud_to_edge"] > 3.0
    assert placements["edge-centric.trust_nakamoto"] > 1
    assert placements["cloud-only.trust_nakamoto"] == 1
    assert placements["edge-centric.control_locality"] > 0.8
    # Shape: interoperability costs roughly one extra island transaction, not more.
    assert 1.5 < interop["overhead_factor"] < 6.0
    # Shape: the proposed stack keeps multi-party trust while being orders of
    # magnitude faster than the permissionless chains.
    profiles = architectures.profiles
    assert profiles["edge-federation"].trust_nakamoto > 1
    assert profiles["edge-federation"].throughput_tps > 50 * profiles["bitcoin-pow"].throughput_tps
