"""E1 — market concentration from preferential attachment (Section I).

Paper: "more than 75% of the CDN market is controlled by three providers,
while five cloud service providers control around 60% of the cloud market
share ... Amazon alone controls almost 33% of the cloud infrastructure
market share", and this is "likely a natural effect of market dynamics such
as preferential attachment".
"""

from repro.analysis.tables import ResultTable
from repro.economics.market import MarketModel, MarketParams, observed_market_reference


def _run_markets():
    preferential = MarketModel(MarketParams(providers=20), seed=1).run(
        steps=250, arrivals_per_step=200
    )
    uniform = MarketModel(
        MarketParams(providers=20, preferential_exponent=0.0, scale_advantage=0.0), seed=1
    ).run(steps=250, arrivals_per_step=200)
    return preferential.concentration(), uniform.concentration()


def test_e01_market_concentration(once):
    preferential, uniform = once(_run_markets)
    reference = observed_market_reference()

    table = ResultTable(
        ["market", "top1", "top3", "top5", "hhi", "nakamoto"],
        title="E1: market concentration (paper: CDN top3>0.75, cloud top5~0.60, top1~0.33-0.40)",
    )
    table.add_row("preferential (model)", preferential["top1"], preferential["top3"],
                  preferential["top5"], preferential["hhi"], preferential["nakamoto"])
    table.add_row("uniform baseline", uniform["top1"], uniform["top3"],
                  uniform["top5"], uniform["hhi"], uniform["nakamoto"])
    table.add_row("paper (CDN)", reference["cdn"]["top1_share"], reference["cdn"]["top3_share"],
                  "-", "-", "-")
    table.add_row("paper (cloud)", reference["cloud"]["top1_share"], "-",
                  reference["cloud"]["top5_share"], "-", "-")
    table.print()

    # Shape: preferential attachment reproduces the observed concentration,
    # the uniform baseline does not.
    assert preferential["top3"] >= 0.75
    assert preferential["top5"] >= 0.60
    assert preferential["top1"] >= 0.30
    assert uniform["top3"] < 0.40
    assert preferential["hhi"] > 2500        # "highly concentrated" by the HHI convention
