"""E13 — 51%/double-spend security and Sybil-proofness of PoW (Section III-A).

Paper: rewriting history is "a feat possible only if the attacker possesses
more than half of the computing power.  Having multiple (anonymous)
identities, as in sybil attacks, is thus useless."
"""

from repro.analysis.tables import ResultTable
from repro.blockchain.attacks import (
    attacker_success_probability,
    confirmations_for_risk,
    sybil_resistance_table,
)


def _run_tables():
    shares = (0.1, 0.25, 0.4, 0.51)
    confirmations = (1, 3, 6, 12)
    matrix = {
        q: {z: attacker_success_probability(q, z) for z in confirmations} for q in shares
    }
    needed = {q: confirmations_for_risk(q, 0.001) for q in (0.1, 0.25, 0.4)}
    sybil = sybil_resistance_table(0.25, [1, 100, 10_000], confirmations=6)
    return matrix, needed, sybil


def test_e13_double_spend(once):
    matrix, needed, sybil = once(_run_tables)

    table = ResultTable(
        ["attacker share", "z=1", "z=3", "z=6", "z=12"],
        title="E13: double-spend success probability (Nakamoto catch-up)",
    )
    for share, row in matrix.items():
        table.add_row(share, row[1], row[3], row[6], row[12])
    table.print()

    sybil_table = ResultTable(
        ["identities", "hash share", "success probability"],
        title="E13b: Sybil identities do not help against proof-of-work",
    )
    for row in sybil:
        sybil_table.add_row(int(row["identities"]), row["hash_share"], row["success_probability"])
    sybil_table.print()

    # Shape: success decays geometrically with confirmations for q < 0.5 and is
    # certain for a majority attacker.
    assert matrix[0.1][6] < 1e-3
    assert matrix[0.25][6] < matrix[0.25][1]
    assert matrix[0.51][12] == 1.0
    assert needed[0.1] <= 6 <= needed[0.4]
    # Shape: splitting the same hash power over any number of identities leaves
    # the success probability untouched.
    probabilities = {row["success_probability"] for row in sybil}
    assert len(probabilities) == 1
