"""Classical fault-tolerant replication substrates (Section IV).

"Once blockchains are disentangled from cryptocurrencies ..., an old problem
resurfaces, which has kept busy ranks of researchers for over two decades:
byzantine fault tolerance."

* :mod:`~repro.consensus.pbft` — PBFT-style three-phase byzantine
  state-machine replication (the BFT-SMaRt lineage used by permissioned
  blockchains), with quadratic message complexity and a per-replica CPU
  model so committee-size scaling can be measured (ablation A2).
* :mod:`~repro.consensus.raft` — Raft-style crash-fault-tolerant
  replication (the CFT ordering option in Hyperledger Fabric).
* :mod:`~repro.consensus.cluster` — a harness that drives either protocol
  with a client workload and reports throughput/latency, used by the
  permissioned blockchain of :mod:`repro.permissioned` and Experiment E15.
"""

from repro.consensus.base import ConsensusMetrics, ReplicaParams
from repro.consensus.pbft import PBFTCluster, PBFTConfig, PBFTReplica
from repro.consensus.raft import RaftCluster, RaftConfig, RaftNode
from repro.consensus.cluster import ConsensusBenchmark, ConsensusBenchmarkConfig

__all__ = [
    "ConsensusMetrics",
    "ReplicaParams",
    "PBFTCluster",
    "PBFTConfig",
    "PBFTReplica",
    "RaftCluster",
    "RaftConfig",
    "RaftNode",
    "ConsensusBenchmark",
    "ConsensusBenchmarkConfig",
]
