"""Shared machinery for the consensus replicas.

Both PBFT and Raft replicas inherit :class:`CpuBoundNode`, which serialises
message processing through a per-node CPU: every message costs a configurable
amount of compute, and messages queue when the node is busy.  This is what
makes message complexity *matter* — PBFT's O(n²) all-to-all traffic saturates
replica CPUs as the committee grows, which is the quantitative reason
permissioned consortia stay small (ablation A2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

from repro.sim.engine import Simulator
from repro.sim.metrics import Sample
from repro.sim.network import Message, Network
from repro.sim.node import Node


@dataclass
class ReplicaParams:
    """Per-replica resource model."""

    cpu_time_per_message: float = 0.0002      # seconds of CPU per protocol message
    cpu_time_per_request_byte: float = 2e-8   # extra CPU per payload byte (hashing, app execution)
    message_bytes: int = 512                  # size of protocol messages on the wire


@dataclass
class ConsensusMetrics:
    """Outcome of driving a consensus cluster with a client workload."""

    committed_requests: int
    duration: float
    commit_latencies: Sample
    messages_sent: int
    bytes_sent: int
    replicas: int

    @property
    def throughput_tps(self) -> float:
        """Committed requests per second of virtual time."""
        return self.committed_requests / self.duration if self.duration > 0 else 0.0

    @property
    def mean_latency(self) -> float:
        """Mean client-observed commit latency."""
        return self.commit_latencies.mean()

    @property
    def p99_latency(self) -> float:
        """99th percentile commit latency."""
        return self.commit_latencies.percentile(99)

    @property
    def messages_per_request(self) -> float:
        """Protocol messages sent per committed request."""
        return self.messages_sent / self.committed_requests if self.committed_requests else 0.0

    def summary(self) -> Dict[str, float]:
        """Headline numbers for experiment tables."""
        return {
            "replicas": float(self.replicas),
            "throughput_tps": self.throughput_tps,
            "mean_latency_s": self.mean_latency,
            "p50_latency_s": self.commit_latencies.percentile(50),
            "p99_latency_s": self.p99_latency,
            "messages_per_request": self.messages_per_request,
            "committed": float(self.committed_requests),
        }


class CpuBoundNode(Node):
    """A node whose message handling is serialised through a finite CPU."""

    def __init__(
        self,
        node_id: Hashable,
        sim: Simulator,
        network: Network,
        params: Optional[ReplicaParams] = None,
        region: str = "default",
    ) -> None:
        super().__init__(node_id, sim, network, region=region)
        self.params = params or ReplicaParams()
        self._busy_until = 0.0
        self.cpu_busy_time = 0.0

    def receive(self, message: Message) -> None:
        """Queue the message through the CPU before dispatching it."""
        if not self.online:
            return
        cost = self.params.cpu_time_per_message
        payload_bytes = getattr(message, "size_bytes", 0)
        cost += self.params.cpu_time_per_request_byte * payload_bytes
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + cost
        self.cpu_busy_time += cost
        delay = self._busy_until - self.sim.now
        self.sim.schedule(delay, self._dispatch, message)

    def _dispatch(self, message: Message) -> None:
        if not self.online:
            return
        handler = getattr(self, f"on_{message.msg_type}", None)
        if handler is not None:
            handler(message)
        else:
            self.on_unknown(message)

    def cpu_utilisation(self, elapsed: float) -> float:
        """Fraction of the elapsed virtual time this node's CPU was busy."""
        return min(1.0, self.cpu_busy_time / elapsed) if elapsed > 0 else 0.0
