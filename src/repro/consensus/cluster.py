"""Benchmark harness comparing consensus protocols across committee sizes.

Used by ablation A2 ("PBFT committee size vs. throughput/latency") and by
Experiment E15's permissioned-vs-permissionless comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.consensus.base import ConsensusMetrics, ReplicaParams
from repro.consensus.pbft import PBFTCluster, PBFTConfig
from repro.consensus.raft import RaftCluster, RaftConfig


@dataclass
class ConsensusBenchmarkConfig:
    """Workload and cluster parameters for one benchmark point."""

    protocol: str = "pbft"                 # "pbft" or "raft"
    replicas: int = 4
    request_rate: float = 2000.0
    duration: float = 10.0
    batch_size: int = 100
    replica_params: ReplicaParams = field(default_factory=ReplicaParams)
    seed: int = 0


class ConsensusBenchmark:
    """Runs one protocol configuration and reports its metrics."""

    def __init__(self, config: Optional[ConsensusBenchmarkConfig] = None) -> None:
        self.config = config or ConsensusBenchmarkConfig()

    def run(self) -> ConsensusMetrics:
        """Build the cluster, drive the workload and return the metrics."""
        config = self.config
        if config.protocol == "pbft":
            cluster = PBFTCluster(
                PBFTConfig(
                    replicas=config.replicas,
                    batch_size=config.batch_size,
                    replica_params=config.replica_params,
                    seed=config.seed,
                )
            )
            return cluster.run_workload(config.request_rate, config.duration)
        if config.protocol == "raft":
            cluster = RaftCluster(
                RaftConfig(
                    replicas=config.replicas,
                    batch_size=config.batch_size,
                    replica_params=config.replica_params,
                    seed=config.seed,
                )
            )
            return cluster.run_workload(config.request_rate, config.duration)
        raise ValueError(f"unknown protocol {config.protocol!r}")


def committee_size_sweep(
    sizes: List[int],
    protocol: str = "pbft",
    request_rate: float = 2000.0,
    duration: float = 5.0,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Throughput/latency as the committee grows (ablation A2)."""
    rows: List[Dict[str, float]] = []
    for size in sizes:
        metrics = ConsensusBenchmark(
            ConsensusBenchmarkConfig(
                protocol=protocol,
                replicas=size,
                request_rate=request_rate,
                duration=duration,
                seed=seed,
            )
        ).run()
        row = {"protocol": protocol}
        row.update(metrics.summary())
        rows.append(row)
    return rows
