"""Raft-style crash-fault-tolerant replication.

Hyperledger Fabric's default ordering service is Raft; the paper's Section IV
mentions crash fault-tolerant (CFT) consensus as the cheaper alternative to
BFT when the ordering nodes are trusted not to be malicious (only to crash).

The implementation covers leader election (randomised election timeouts,
term-based voting) and log replication with batching (the leader appends a
batch, replicates it with ``append_entries``, and commits once a majority
acknowledges).  Log entries carry request arrival times so the harness can
report client-observed commit latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.consensus.base import ConsensusMetrics, CpuBoundNode, ReplicaParams
from repro.sim.engine import Simulator
from repro.sim.metrics import Sample
from repro.sim.network import Network, NetworkParams
from repro.sim.rng import SeededRNG


@dataclass
class RaftConfig:
    """Cluster-level configuration."""

    replicas: int = 5
    batch_size: int = 200
    batch_timeout: float = 0.02
    heartbeat_interval: float = 0.05
    election_timeout_min: float = 0.15
    election_timeout_max: float = 0.3
    request_bytes: int = 200
    replica_params: ReplicaParams = field(default_factory=ReplicaParams)
    network_params: Optional[NetworkParams] = None
    seed: int = 0

    @property
    def majority(self) -> int:
        """Votes/acknowledgements needed to win an election or commit."""
        return self.replicas // 2 + 1


@dataclass
class _LogEntry:
    """One replicated batch."""

    term: int
    index: int
    request_times: List[float]


class RaftNode(CpuBoundNode):
    """One Raft participant (follower, candidate or leader)."""

    def __init__(self, index: int, sim: Simulator, network: Network, cluster: "RaftCluster") -> None:
        super().__init__(f"raft-{index}", sim, network, params=cluster.config.replica_params)
        self.index = index
        self.cluster = cluster
        self.term = 0
        self.role = "follower"
        self.voted_for: Optional[int] = None
        self.log: List[_LogEntry] = []
        self.commit_index = -1
        self.votes: Set[int] = set()
        self.ack_counts: Dict[int, Set[int]] = {}
        self.pending_requests: List[float] = []
        self._batch_timer_armed = False
        self._election_deadline = 0.0
        self.rng = cluster.rng.fork(f"raft-node-{index}")

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the first election timer."""
        self._reset_election_timer()

    def _reset_election_timer(self) -> None:
        timeout = self.rng.uniform(
            self.cluster.config.election_timeout_min,
            self.cluster.config.election_timeout_max,
        )
        self._election_deadline = self.sim.now + timeout
        self.sim.schedule(timeout, self._election_timeout, self._election_deadline)

    def _election_timeout(self, deadline: float) -> None:
        if not self.online or self.role == "leader":
            return
        if deadline != self._election_deadline:
            return      # the timer was reset in the meantime
        self._start_election()

    def _start_election(self) -> None:
        self.term += 1
        self.role = "candidate"
        self.voted_for = self.index
        self.votes = {self.index}
        payload = {"term": self.term, "candidate": self.index}
        self.broadcast(self._peers(), "request_vote", payload, size_bytes=self.params.message_bytes)
        self._reset_election_timer()

    def _peers(self) -> List[str]:
        return [node.node_id for node in self.cluster.nodes if node.node_id != self.node_id]

    # ------------------------------------------------------------------
    # Elections
    # ------------------------------------------------------------------
    def on_request_vote(self, message) -> None:
        payload = message.payload
        term, candidate = payload["term"], payload["candidate"]
        if term > self.term:
            self.term = term
            self.role = "follower"
            self.voted_for = None
        grant = term >= self.term and self.voted_for in (None, candidate)
        if grant:
            self.voted_for = candidate
            self._reset_election_timer()
        self.send(
            message.sender,
            "vote",
            {"term": self.term, "granted": grant, "voter": self.index},
            size_bytes=self.params.message_bytes,
        )

    def on_vote(self, message) -> None:
        payload = message.payload
        if self.role != "candidate" or payload["term"] != self.term:
            return
        if payload["granted"]:
            self.votes.add(payload["voter"])
            if len(self.votes) >= self.cluster.config.majority:
                self._become_leader()

    def _become_leader(self) -> None:
        self.role = "leader"
        self.cluster.leader_index = self.index
        self.cluster.leader_elected_at = self.sim.now
        self._send_heartbeats()

    def _send_heartbeats(self) -> None:
        if self.role != "leader" or not self.online:
            return
        payload = {"term": self.term, "leader": self.index, "entries": [], "commit_index": self.commit_index}
        self.broadcast(self._peers(), "append_entries", payload, size_bytes=self.params.message_bytes)
        self.sim.schedule(self.cluster.config.heartbeat_interval, self._send_heartbeats)

    # ------------------------------------------------------------------
    # Log replication
    # ------------------------------------------------------------------
    def submit_request(self, arrival_time: float) -> None:
        """Leader-side entry point for client requests."""
        if self.role != "leader":
            return
        self.pending_requests.append(arrival_time)
        if len(self.pending_requests) >= self.cluster.config.batch_size:
            self._replicate_batch()
        elif not self._batch_timer_armed:
            self._batch_timer_armed = True
            self.sim.schedule(self.cluster.config.batch_timeout, self._batch_deadline)

    def _batch_deadline(self) -> None:
        self._batch_timer_armed = False
        if self.pending_requests and self.role == "leader":
            self._replicate_batch()

    def _replicate_batch(self) -> None:
        batch = self.pending_requests[: self.cluster.config.batch_size]
        del self.pending_requests[: self.cluster.config.batch_size]
        entry = _LogEntry(term=self.term, index=len(self.log), request_times=batch)
        self.log.append(entry)
        self.ack_counts[entry.index] = {self.index}
        payload = {
            "term": self.term,
            "leader": self.index,
            "entries": [(entry.term, entry.index, entry.request_times)],
            "commit_index": self.commit_index,
        }
        size = self.params.message_bytes + self.cluster.config.request_bytes * len(batch)
        self.broadcast(self._peers(), "append_entries", payload, size_bytes=size)

    def on_append_entries(self, message) -> None:
        payload = message.payload
        term = payload["term"]
        if term < self.term:
            return
        self.term = term
        self.role = "follower"
        self._reset_election_timer()
        appended = []
        for entry_term, entry_index, request_times in payload["entries"]:
            while len(self.log) <= entry_index:
                self.log.append(_LogEntry(entry_term, len(self.log), []))
            self.log[entry_index] = _LogEntry(entry_term, entry_index, request_times)
            appended.append(entry_index)
        self.commit_index = max(self.commit_index, min(payload["commit_index"], len(self.log) - 1))
        if appended:
            self.send(
                message.sender,
                "append_ack",
                {"term": self.term, "follower": self.index, "indexes": appended},
                size_bytes=self.params.message_bytes,
            )

    def on_append_ack(self, message) -> None:
        if self.role != "leader":
            return
        payload = message.payload
        for index in payload["indexes"]:
            acks = self.ack_counts.setdefault(index, {self.index})
            acks.add(payload["follower"])
            if len(acks) >= self.cluster.config.majority and index > self.commit_index:
                self._advance_commit(index)

    def _advance_commit(self, index: int) -> None:
        for commit_idx in range(self.commit_index + 1, index + 1):
            entry = self.log[commit_idx]
            self.cluster.record_commit(entry)
        self.commit_index = index


class RaftCluster:
    """Builds the Raft group and drives it with a client workload."""

    def __init__(self, config: Optional[RaftConfig] = None, sim: Optional[Simulator] = None) -> None:
        self.config = config or RaftConfig()
        if self.config.replicas < 3:
            raise ValueError("Raft needs at least 3 nodes to tolerate a crash")
        self.sim = sim or Simulator()
        self.rng = SeededRNG(self.config.seed)
        params = self.config.network_params or NetworkParams(
            base_latency=0.002, inter_region_latency=0.03, bandwidth_bps=1e9, latency_jitter=0.2
        )
        self.network = Network(self.sim, params, rng=self.rng.fork("net"))
        self.nodes: List[RaftNode] = [
            RaftNode(index, self.sim, self.network, self) for index in range(self.config.replicas)
        ]
        self.leader_index: Optional[int] = None
        self.leader_elected_at: Optional[float] = None
        self.commit_latencies = Sample("raft_commit_latency")
        self.committed_requests = 0
        self._started = False

    def start(self) -> None:
        """Arm every node's election timer."""
        if self._started:
            return
        self._started = True
        for node in self.nodes:
            node.start()

    @property
    def leader(self) -> Optional[RaftNode]:
        """The node currently acting as leader, if any."""
        if self.leader_index is None:
            return None
        return self.nodes[self.leader_index]

    def submit(self) -> bool:
        """Submit one client request; returns ``False`` if no leader exists yet."""
        leader = self.leader
        if leader is None or not leader.online or leader.role != "leader":
            return False
        leader.submit_request(self.sim.now)
        return True

    def crash_leader(self) -> Optional[int]:
        """Crash the current leader; returns its index."""
        leader = self.leader
        if leader is None:
            return None
        leader.go_offline()
        return leader.index

    def record_commit(self, entry: _LogEntry) -> None:
        """Account a committed batch."""
        self.committed_requests += len(entry.request_times)
        for arrival in entry.request_times:
            self.commit_latencies.observe(self.sim.now - arrival)

    def run_workload(
        self, request_rate: float, duration: float, warmup: float = 1.0
    ) -> ConsensusMetrics:
        """Elect a leader, then drive a Poisson request stream."""
        self.start()
        self.sim.run(until=self.sim.now + warmup)
        interval = 1.0 / request_rate if request_rate > 0 else float("inf")
        deadline = self.sim.now + duration

        def _submit_next() -> None:
            if self.sim.now >= deadline:
                return
            self.submit()
            self.sim.schedule(self.rng.exponential(interval), _submit_next)

        self.sim.schedule(0.0, _submit_next)
        self.sim.run(until=deadline + 5.0)
        return ConsensusMetrics(
            committed_requests=self.committed_requests,
            duration=duration,
            commit_latencies=self.commit_latencies,
            messages_sent=self.network.messages_sent,
            bytes_sent=self.network.bytes_sent,
            replicas=self.config.replicas,
        )
