"""PBFT-style byzantine fault-tolerant state-machine replication.

The protocol follows Castro & Liskov's normal-case operation, which is also
what BFT-SMaRt (the consensus library the paper cites via Hyperledger
Fabric) implements:

1. clients send requests to the primary;
2. the primary batches requests and multicasts ``PRE-PREPARE``;
3. replicas multicast ``PREPARE``; a replica is *prepared* once it has
   2f matching prepares plus the pre-prepare;
4. replicas multicast ``COMMIT``; a batch commits at a replica once it has
   2f+1 matching commits;
5. replicas execute the batch and reply to the clients.

Tolerates ``f = (n - 1) // 3`` byzantine replicas.  View changes are modelled
as a timeout-triggered primary rotation with a configurable outage, enough to
measure the availability effect of a primary crash without reproducing the
full view-change sub-protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.consensus.base import ConsensusMetrics, CpuBoundNode, ReplicaParams
from repro.sim.engine import Simulator
from repro.sim.metrics import Sample
from repro.sim.network import Network, NetworkParams
from repro.sim.rng import SeededRNG


@dataclass
class PBFTConfig:
    """Cluster-level configuration."""

    replicas: int = 4
    batch_size: int = 100
    batch_timeout: float = 0.05           # max time the primary waits to fill a batch
    request_bytes: int = 200
    replica_params: ReplicaParams = field(default_factory=ReplicaParams)
    network_params: Optional[NetworkParams] = None
    view_change_timeout: float = 2.0
    seed: int = 0

    @property
    def f(self) -> int:
        """Number of byzantine faults tolerated."""
        return (self.replicas - 1) // 3

    @property
    def quorum(self) -> int:
        """Size of a prepare/commit quorum (2f + 1)."""
        return 2 * self.f + 1


@dataclass
class _BatchState:
    """Per-replica bookkeeping for one (view, sequence) batch."""

    pre_prepared: bool = False
    prepares: Set[str] = field(default_factory=set)
    commits: Set[str] = field(default_factory=set)
    prepared: bool = False
    committed: bool = False
    request_times: List[float] = field(default_factory=list)
    request_count: int = 0


class PBFTReplica(CpuBoundNode):
    """One PBFT replica."""

    def __init__(
        self,
        index: int,
        sim: Simulator,
        network: Network,
        cluster: "PBFTCluster",
    ) -> None:
        super().__init__(
            f"replica-{index}", sim, network, params=cluster.config.replica_params
        )
        self.index = index
        self.cluster = cluster
        self.view = 0
        self.batches: Dict[Tuple[int, int], _BatchState] = {}
        self.executed_up_to = -1
        self.byzantine = False     # a byzantine replica here simply stays silent

    # ------------------------------------------------------------------
    # Roles
    # ------------------------------------------------------------------
    @property
    def is_primary(self) -> bool:
        """Whether this replica is the primary of its current view."""
        return self.index == self.view % self.cluster.config.replicas

    def _batch(self, view: int, sequence: int) -> _BatchState:
        return self.batches.setdefault((view, sequence), _BatchState())

    def _peers(self) -> List[str]:
        return [
            replica.node_id
            for replica in self.cluster.replicas
            if replica.node_id != self.node_id
        ]

    # ------------------------------------------------------------------
    # Primary: batching and pre-prepare
    # ------------------------------------------------------------------
    def submit_request(self, arrival_time: float) -> None:
        """Primary-side entry point: queue a client request for batching."""
        self.cluster.pending_requests.append(arrival_time)
        if len(self.cluster.pending_requests) >= self.cluster.config.batch_size:
            self._send_pre_prepare()
        elif not self.cluster.batch_timer_armed:
            self.cluster.batch_timer_armed = True
            self.sim.schedule(self.cluster.config.batch_timeout, self._batch_timeout)

    def _batch_timeout(self) -> None:
        self.cluster.batch_timer_armed = False
        if self.cluster.pending_requests and self.is_primary:
            self._send_pre_prepare()

    def _send_pre_prepare(self) -> None:
        if not self.is_primary or self.byzantine:
            return
        config = self.cluster.config
        batch_requests = self.cluster.pending_requests[: config.batch_size]
        del self.cluster.pending_requests[: config.batch_size]
        if not batch_requests:
            return
        sequence = self.cluster.next_sequence
        self.cluster.next_sequence += 1
        payload = {
            "view": self.view,
            "sequence": sequence,
            "request_times": batch_requests,
        }
        size = config.request_bytes * len(batch_requests) + self.params.message_bytes
        state = self._batch(self.view, sequence)
        state.pre_prepared = True
        state.request_times = batch_requests
        state.request_count = len(batch_requests)
        state.prepares.add(self.node_id)
        self.broadcast(self._peers(), "pre_prepare", payload, size_bytes=size)
        # The primary also participates in the prepare phase.
        self._broadcast_prepare(self.view, sequence)

    # ------------------------------------------------------------------
    # Replica message handlers
    # ------------------------------------------------------------------
    def on_pre_prepare(self, message) -> None:
        if self.byzantine:
            return
        payload = message.payload
        view, sequence = payload["view"], payload["sequence"]
        if view != self.view:
            return
        state = self._batch(view, sequence)
        state.pre_prepared = True
        state.request_times = payload["request_times"]
        state.request_count = len(payload["request_times"])
        state.prepares.add(message.sender)
        self._broadcast_prepare(view, sequence)
        self._check_prepared(view, sequence)

    def _broadcast_prepare(self, view: int, sequence: int) -> None:
        state = self._batch(view, sequence)
        state.prepares.add(self.node_id)
        payload = {"view": view, "sequence": sequence}
        self.broadcast(self._peers(), "prepare", payload, size_bytes=self.params.message_bytes)
        self._check_prepared(view, sequence)

    def on_prepare(self, message) -> None:
        if self.byzantine:
            return
        payload = message.payload
        view, sequence = payload["view"], payload["sequence"]
        state = self._batch(view, sequence)
        state.prepares.add(message.sender)
        self._check_prepared(view, sequence)

    def _check_prepared(self, view: int, sequence: int) -> None:
        state = self._batch(view, sequence)
        if state.prepared or not state.pre_prepared:
            return
        if len(state.prepares) >= self.cluster.config.quorum:
            state.prepared = True
            state.commits.add(self.node_id)
            payload = {"view": view, "sequence": sequence}
            self.broadcast(self._peers(), "commit", payload, size_bytes=self.params.message_bytes)
            self._check_committed(view, sequence)

    def on_commit(self, message) -> None:
        if self.byzantine:
            return
        payload = message.payload
        view, sequence = payload["view"], payload["sequence"]
        state = self._batch(view, sequence)
        state.commits.add(message.sender)
        self._check_committed(view, sequence)

    def _check_committed(self, view: int, sequence: int) -> None:
        state = self._batch(view, sequence)
        if state.committed or not state.prepared:
            return
        if len(state.commits) >= self.cluster.config.quorum:
            state.committed = True
            self.executed_up_to = max(self.executed_up_to, sequence)
            self.cluster.record_commit(self.index, sequence, state)


class PBFTCluster:
    """Builds the replica group and drives it with a client workload."""

    def __init__(self, config: Optional[PBFTConfig] = None, sim: Optional[Simulator] = None) -> None:
        self.config = config or PBFTConfig()
        if self.config.replicas < 4:
            raise ValueError("PBFT needs at least 4 replicas (f >= 1)")
        self.sim = sim or Simulator()
        self.rng = SeededRNG(self.config.seed)
        params = self.config.network_params or NetworkParams(
            base_latency=0.002, inter_region_latency=0.03, bandwidth_bps=1e9, latency_jitter=0.2
        )
        self.network = Network(self.sim, params, rng=self.rng.fork("net"))
        self.replicas: List[PBFTReplica] = []
        for index in range(self.config.replicas):
            self.replicas.append(PBFTReplica(index, self.sim, self.network, self))
        self.pending_requests: List[float] = []
        self.batch_timer_armed = False
        self.next_sequence = 0
        self.commit_latencies = Sample("pbft_commit_latency")
        self.committed_requests = 0
        self._committed_sequences: Set[int] = set()
        self._commit_votes: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def make_byzantine(self, count: int) -> List[int]:
        """Silence ``count`` replicas (never the primary of view 0)."""
        candidates = [replica.index for replica in self.replicas if replica.index != 0]
        chosen = self.rng.sample(candidates, min(count, len(candidates)))
        for index in chosen:
            self.replicas[index].byzantine = True
        return chosen

    def crash_primary(self) -> None:
        """Take the current primary offline (a view change will be needed)."""
        primary = self.replicas[self.replicas[0].view % self.config.replicas]
        primary.go_offline()

    # ------------------------------------------------------------------
    # Client workload
    # ------------------------------------------------------------------
    @property
    def primary(self) -> PBFTReplica:
        """The primary replica of the current view."""
        view = self.replicas[0].view
        return self.replicas[view % self.config.replicas]

    def submit(self, arrival_time: Optional[float] = None) -> None:
        """Submit one client request to the primary."""
        self.primary.submit_request(
            self.sim.now if arrival_time is None else arrival_time
        )

    def record_commit(self, replica_index: int, sequence: int, state: _BatchState) -> None:
        """Called by replicas when a batch commits locally.

        A request counts as committed (client-visible) when f+1 replicas have
        executed it — the client needs f+1 matching replies.
        """
        votes = self._commit_votes.setdefault(sequence, set())
        votes.add(replica_index)
        if sequence in self._committed_sequences:
            return
        if len(votes) >= self.config.f + 1:
            self._committed_sequences.add(sequence)
            self.committed_requests += state.request_count
            for arrival in state.request_times:
                self.commit_latencies.observe(self.sim.now - arrival)

    # ------------------------------------------------------------------
    # Measurement harness
    # ------------------------------------------------------------------
    def run_workload(
        self,
        request_rate: float,
        duration: float,
        warmup: float = 0.0,
    ) -> ConsensusMetrics:
        """Drive the cluster with a Poisson request stream for ``duration`` seconds."""
        interval = 1.0 / request_rate if request_rate > 0 else float("inf")

        def _submit_next(deadline: float) -> None:
            if self.sim.now >= deadline:
                return
            self.submit()
            gap = self.rng.exponential(interval)
            self.sim.schedule(gap, _submit_next, deadline)

        deadline = self.sim.now + warmup + duration
        self.sim.schedule(0.0, _submit_next, deadline)
        # Allow in-flight batches to drain after the last submission.
        self.sim.run(until=deadline + 5.0)
        return ConsensusMetrics(
            committed_requests=self.committed_requests,
            duration=warmup + duration,
            commit_latencies=self.commit_latencies,
            messages_sent=self.network.messages_sent,
            bytes_sent=self.network.bytes_sent,
            replicas=self.config.replicas,
        )
