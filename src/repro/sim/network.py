"""Latency/bandwidth network model for message-passing simulations.

The network connects named nodes (any hashable identifier).  Sending a
message samples a one-way delay from the link's latency distribution, adds a
serialisation delay proportional to the message size and the link bandwidth,
and schedules delivery on the simulator.  Links can be declared explicitly or
derived from region-to-region latency defaults, which is how the blockchain
and edge simulators model geo-distribution without a full topology.

Partitions and crashed nodes are modelled by dropping messages.

Fast path
---------
``send``/``broadcast`` resolve a per-pair ``(mean latency, bandwidth, loss)``
triple through a cache keyed on ``(sender, recipient)`` so the region/link
lookup chain runs once per pair instead of once per message.  The cache is
invalidated by every topology mutation (``register``/``unregister``/
``set_link``); mutate :attr:`params` only before traffic starts, or call
:meth:`invalidate_link_cache` afterwards.  The RNG draw sequence (optional
loss Bernoulli, then jitter log-normal, per recipient in order) is part of
the determinism contract and must not change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.sim.engine import Simulator
from repro.sim.rng import SeededRNG

NodeId = Hashable
Handler = Callable[["Message"], None]


@dataclass
class NetworkParams:
    """Default link characteristics.

    Attributes
    ----------
    base_latency:
        Mean one-way propagation delay in seconds for nodes in the same
        region.
    latency_jitter:
        Fractional jitter: each delivery multiplies the mean latency by a
        log-normal factor with this sigma.
    bandwidth_bps:
        Link bandwidth in bits per second used for the serialisation delay.
    loss_rate:
        Probability that any single message is silently dropped.
    inter_region_latency:
        Mean one-way delay between nodes in *different* regions.

    Presets
    -------
    :meth:`by_name` resolves the declarative grid presets used by scenario
    specs (``topology: {"network": "lan"}``): ``lan`` (single datacenter,
    sub-millisecond, gigabit), ``wan`` (the ``NetworkParams()`` class
    defaults: continental internet paths) and ``geo`` (geo-distributed
    consumer links: ~80 ms in-region, 250 ms cross-region, constrained
    5 Mbps links).  :meth:`from_spec` additionally accepts ``None`` (keep
    the component default), a dict of field overrides, or a ready
    ``NetworkParams``.

    Naming *any* preset replaces the consuming component's own fallback,
    and some components calibrate that fallback differently from the class
    defaults (e.g. :class:`~repro.blockchain.network.PoWNetwork` defaults
    to wide-area Bitcoin measurements with a 100 ms base latency) — so
    ``"network": "wan"`` is an explicit choice of these values, not
    necessarily a no-op.
    """

    base_latency: float = 0.05
    latency_jitter: float = 0.25
    bandwidth_bps: float = 10_000_000.0
    loss_rate: float = 0.0
    inter_region_latency: float = 0.15

    @classmethod
    def by_name(cls, name: str) -> "NetworkParams":
        """A fresh instance of one of the named presets (lan/wan/geo)."""
        try:
            factory = NETWORK_PRESETS[str(name)]
        except KeyError:
            known = ", ".join(sorted(NETWORK_PRESETS))
            raise KeyError(
                f"unknown network preset {name!r}; known presets: {known}"
            ) from None
        return factory()

    @classmethod
    def from_spec(cls, spec) -> Optional["NetworkParams"]:
        """Resolve a declarative network description.

        ``None`` → ``None`` (the component keeps its own default), a preset
        name → :meth:`by_name`, a dict → field overrides on the defaults,
        and an existing ``NetworkParams`` passes through unchanged.
        """
        if spec is None:
            return None
        if isinstance(spec, NetworkParams):
            return spec
        if isinstance(spec, str):
            return cls.by_name(spec)
        if isinstance(spec, dict):
            return cls(**spec)
        raise TypeError(
            f"cannot build NetworkParams from {type(spec).__name__}; "
            f"pass a preset name, a dict of fields, or a NetworkParams"
        )


#: The declarative latency/bandwidth grid presets (factories, so every
#: resolution gets an independent instance).
NETWORK_PRESETS = {
    "lan": lambda: NetworkParams(base_latency=0.0005, latency_jitter=0.1,
                                 bandwidth_bps=1_000_000_000.0, loss_rate=0.0,
                                 inter_region_latency=0.002),
    "wan": lambda: NetworkParams(),
    "geo": lambda: NetworkParams(base_latency=0.08, latency_jitter=0.35,
                                 bandwidth_bps=5_000_000.0, loss_rate=0.0,
                                 inter_region_latency=0.25),
}


@dataclass
class Link:
    """Explicit per-pair link override."""

    latency: float
    bandwidth_bps: Optional[float] = None
    loss_rate: Optional[float] = None


class Message:
    """A message in flight between two nodes.

    A plain ``__slots__`` class (not a dataclass) because it is allocated
    once per message on the hot send path.  ``metadata`` is lazily created:
    it stays ``None`` until first accessed through :meth:`meta`, so sending
    never builds a dict per message.
    """

    __slots__ = (
        "sender",
        "recipient",
        "msg_type",
        "payload",
        "size_bytes",
        "sent_at",
        "delivered_at",
        "metadata",
    )

    def __init__(
        self,
        sender: NodeId,
        recipient: NodeId,
        msg_type: str,
        payload: Any = None,
        size_bytes: int = 256,
        sent_at: float = 0.0,
        delivered_at: float = 0.0,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.sender = sender
        self.recipient = recipient
        self.msg_type = msg_type
        self.payload = payload
        self.size_bytes = size_bytes
        self.sent_at = sent_at
        self.delivered_at = delivered_at
        self.metadata = metadata

    @property
    def latency(self) -> float:
        """Observed one-way latency once delivered."""
        return self.delivered_at - self.sent_at

    def meta(self) -> Dict[str, Any]:
        """The metadata dict, created on first use."""
        if self.metadata is None:
            self.metadata = {}
        return self.metadata

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Message({self.sender!r} -> {self.recipient!r}, "
            f"{self.msg_type!r}, {self.size_bytes}B)"
        )


class Network:
    """Message-passing substrate with per-link latency and bandwidth."""

    def __init__(
        self,
        sim: Simulator,
        params: Optional[NetworkParams] = None,
        rng: Optional[SeededRNG] = None,
    ) -> None:
        self.sim = sim
        self.params = params or NetworkParams()
        self.rng = rng or SeededRNG(0)
        self._handlers: Dict[NodeId, Handler] = {}
        self._regions: Dict[NodeId, str] = {}
        self._links: Dict[Tuple[NodeId, NodeId], Link] = {}
        self._offline: Set[NodeId] = set()
        self._partitions: Dict[NodeId, int] = {}
        # (sender, recipient) -> (mean_latency, bandwidth_bps, loss_rate)
        self._resolved: Dict[Tuple[NodeId, NodeId], Tuple[float, float, float]] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, node_id: NodeId, handler: Handler, region: str = "default") -> None:
        """Attach a node and its message handler to the network."""
        self._handlers[node_id] = handler
        if self._regions.get(node_id) != region:
            self._regions[node_id] = region
            self._resolved.clear()
        self._offline.discard(node_id)

    def unregister(self, node_id: NodeId) -> None:
        """Detach a node; in-flight messages to it are dropped on delivery."""
        self._handlers.pop(node_id, None)
        if self._regions.pop(node_id, None) is not None:
            self._resolved.clear()
        self._offline.discard(node_id)

    def set_offline(self, node_id: NodeId, offline: bool = True) -> None:
        """Mark a registered node as (un)reachable without unregistering it."""
        if offline:
            self._offline.add(node_id)
        else:
            self._offline.discard(node_id)

    def is_online(self, node_id: NodeId) -> bool:
        """True when the node is registered and not marked offline."""
        return node_id in self._handlers and node_id not in self._offline

    def nodes(self) -> Iterable[NodeId]:
        """All registered node identifiers."""
        return self._handlers.keys()

    def region_of(self, node_id: NodeId) -> str:
        """Region label of a node (``"default"`` if never set)."""
        return self._regions.get(node_id, "default")

    # ------------------------------------------------------------------
    # Topology control
    # ------------------------------------------------------------------
    def set_link(self, a: NodeId, b: NodeId, link: Link) -> None:
        """Override the link characteristics for the (unordered) pair."""
        self._links[(a, b)] = link
        self._links[(b, a)] = link
        self._resolved.pop((a, b), None)
        self._resolved.pop((b, a), None)

    def invalidate_link_cache(self) -> None:
        """Drop every cached link resolution (after mutating :attr:`params`)."""
        self._resolved.clear()

    def set_partition(self, groups: Iterable[Iterable[NodeId]]) -> None:
        """Partition the network: messages across groups are dropped."""
        self._partitions.clear()
        for index, group in enumerate(groups):
            for node_id in group:
                self._partitions[node_id] = index

    def clear_partition(self) -> None:
        """Heal any partition previously installed with :meth:`set_partition`."""
        self._partitions.clear()

    def _same_partition(self, a: NodeId, b: NodeId) -> bool:
        if not self._partitions:
            return True
        return self._partitions.get(a, -1) == self._partitions.get(b, -1)

    # ------------------------------------------------------------------
    # Link resolution
    # ------------------------------------------------------------------
    def _resolve_link(self, sender: NodeId, recipient: NodeId) -> Tuple[float, float, float]:
        """Resolved ``(mean_latency, bandwidth_bps, loss_rate)`` for a pair."""
        key = (sender, recipient)
        resolved = self._resolved.get(key)
        if resolved is None:
            params = self.params
            link = self._links.get(key)
            if link is not None:
                mean_latency = link.latency
                bandwidth = link.bandwidth_bps or params.bandwidth_bps
                loss = params.loss_rate if link.loss_rate is None else link.loss_rate
            else:
                regions = self._regions
                same_region = regions.get(sender, "default") == regions.get(
                    recipient, "default"
                )
                mean_latency = (
                    params.base_latency if same_region else params.inter_region_latency
                )
                bandwidth = params.bandwidth_bps
                loss = params.loss_rate
            resolved = (mean_latency, bandwidth, loss)
            self._resolved[key] = resolved
        return resolved

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self,
        sender: NodeId,
        recipient: NodeId,
        msg_type: str,
        payload: Any = None,
        size_bytes: int = 256,
    ) -> Message:
        """Send a message; delivery is scheduled on the simulator.

        The returned :class:`Message` is the object the recipient's handler
        will receive (useful for tests that want to inspect timing).
        """
        sim = self.sim
        message = Message(sender, recipient, msg_type, payload, size_bytes, sim.now)
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        if (
            sender in self._offline
            or recipient in self._offline
            or not self._same_partition(sender, recipient)
        ):
            self.messages_dropped += 1
            return message
        mean_latency, bandwidth, loss = self._resolve_link(sender, recipient)
        rng = self.rng
        if loss > 0 and rng.bernoulli(loss):
            self.messages_dropped += 1
            return message
        jitter_sigma = self.params.latency_jitter
        if jitter_sigma > 0:
            latency = mean_latency * rng.lognormal(0.0, jitter_sigma)
        else:
            latency = mean_latency
        if bandwidth > 0:
            latency += (size_bytes * 8.0) / bandwidth
        if latency < 1e-6:
            latency = 1e-6
        sim.schedule(latency, self._deliver, message)
        return message

    def broadcast(
        self,
        sender: NodeId,
        recipients: Iterable[NodeId],
        msg_type: str,
        payload: Any = None,
        size_bytes: int = 256,
    ) -> int:
        """Send the same payload to every recipient; returns the count sent.

        Batch fast path: per-message bookkeeping is identical to
        :meth:`send` (same counters, same per-recipient RNG draw order) but
        the lookups that are loop-invariant — simulator, params, offline set,
        cache — are hoisted out of the loop.
        """
        sim = self.sim
        now = sim.now
        schedule = sim.schedule
        deliver = self._deliver
        offline = self._offline
        resolve = self._resolve_link
        rng = self.rng
        jitter_sigma = self.params.latency_jitter
        serial_bits = size_bytes * 8.0
        sender_offline = sender in offline
        count = 0
        dropped = 0
        for recipient in recipients:
            if recipient == sender:
                continue
            count += 1
            message = Message(sender, recipient, msg_type, payload, size_bytes, now)
            if (
                sender_offline
                or recipient in offline
                or not self._same_partition(sender, recipient)
            ):
                dropped += 1
                continue
            mean_latency, bandwidth, loss = resolve(sender, recipient)
            if loss > 0 and rng.bernoulli(loss):
                dropped += 1
                continue
            if jitter_sigma > 0:
                latency = mean_latency * rng.lognormal(0.0, jitter_sigma)
            else:
                latency = mean_latency
            if bandwidth > 0:
                latency += serial_bits / bandwidth
            if latency < 1e-6:
                latency = 1e-6
            schedule(latency, deliver, message)
        self.messages_sent += count
        self.bytes_sent += count * size_bytes
        self.messages_dropped += dropped
        return count

    def _should_drop(self, sender: NodeId, recipient: NodeId) -> bool:
        if sender in self._offline or recipient in self._offline:
            return True
        if not self._same_partition(sender, recipient):
            return True
        loss = self._resolve_link(sender, recipient)[2]
        return loss > 0 and self.rng.bernoulli(loss)

    def sample_delay(self, sender: NodeId, recipient: NodeId, size_bytes: int) -> float:
        """Sample the one-way delay (propagation + serialisation) for a message."""
        mean_latency, bandwidth, _ = self._resolve_link(sender, recipient)
        jitter = 1.0
        if self.params.latency_jitter > 0:
            jitter = self.rng.lognormal(0.0, self.params.latency_jitter)
        serialisation = (size_bytes * 8.0) / bandwidth if bandwidth > 0 else 0.0
        return max(1e-6, mean_latency * jitter + serialisation)

    def _link_attr(self, a: NodeId, b: NodeId, attr: str, default: float) -> float:
        link = self._links.get((a, b))
        if link is None:
            return default
        value = getattr(link, attr)
        return default if value is None else value

    def _deliver(self, message: Message) -> None:
        handler = self._handlers.get(message.recipient)
        if handler is None or message.recipient in self._offline:
            self.messages_dropped += 1
            return
        if not self._same_partition(message.sender, message.recipient):
            self.messages_dropped += 1
            return
        message.delivered_at = self.sim.now
        self.messages_delivered += 1
        handler(message)
