"""Metric collection for simulation runs.

Three primitives cover everything the experiments need:

* :class:`Counter` — monotonically increasing event counts.
* :class:`Sample` — a bag of observations with percentile/summary helpers
  (lookup latencies, block intervals, transaction confirmation times).
* :class:`TimeSeries` — (time, value) pairs for quantities that evolve over a
  run (online population, chain length, market shares).

A :class:`MetricsRegistry` groups them under string names so simulators can
expose everything they measured in a single object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A named monotonically increasing counter."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> int:
        """Add ``amount`` (default 1) and return the new value."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount
        return self.value

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Counter({self.name!r}, {self.value})"


class Sample:
    """A collection of scalar observations with summary statistics."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.values.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        """Record many observations."""
        for value in values:
            self.observe(value)

    def count(self) -> int:
        """Number of observations recorded."""
        return len(self.values)

    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return sum(self.values) / len(self.values) if self.values else 0.0

    def total(self) -> float:
        """Sum of all observations."""
        return sum(self.values)

    def minimum(self) -> float:
        """Smallest observation (0.0 when empty)."""
        return min(self.values) if self.values else 0.0

    def maximum(self) -> float:
        """Largest observation (0.0 when empty)."""
        return max(self.values) if self.values else 0.0

    def stdev(self) -> float:
        """Population standard deviation (0.0 for fewer than two samples)."""
        if len(self.values) < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((value - mu) ** 2 for value in self.values) / len(self.values))

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile, ``q`` in [0, 100]."""
        if not self.values:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        weight = rank - low
        return ordered[low] * (1.0 - weight) + ordered[high] * weight

    def median(self) -> float:
        """50th percentile."""
        return self.percentile(50.0)

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """Empirical CDF as (value, cumulative fraction) pairs."""
        if not self.values:
            return []
        ordered = sorted(self.values)
        n = len(ordered)
        step = max(1, n // points)
        cdf_points = [
            (ordered[index], (index + 1) / n) for index in range(0, n, step)
        ]
        if cdf_points[-1][0] != ordered[-1]:
            cdf_points.append((ordered[-1], 1.0))
        return cdf_points

    def fraction_below(self, threshold: float) -> float:
        """Fraction of observations strictly below ``threshold``."""
        if not self.values:
            return 0.0
        return sum(1 for value in self.values if value < threshold) / len(self.values)

    def summary(self) -> Dict[str, float]:
        """Dictionary of the headline statistics (for reports and tests)."""
        return {
            "count": float(self.count()),
            "mean": self.mean(),
            "stdev": self.stdev(),
            "min": self.minimum(),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.maximum(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Sample({self.name!r}, n={len(self.values)}, mean={self.mean():.4g})"


class TimeSeries:
    """(time, value) pairs for a quantity evolving over a simulation."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        """Append an observation at the given virtual time."""
        self.points.append((float(time), float(value)))

    def last(self) -> Optional[float]:
        """Most recent value, or ``None`` if empty."""
        return self.points[-1][1] if self.points else None

    def values(self) -> List[float]:
        """All values in recording order."""
        return [value for _, value in self.points]

    def times(self) -> List[float]:
        """All timestamps in recording order."""
        return [time for time, _ in self.points]

    def time_average(self) -> float:
        """Time-weighted average assuming piecewise-constant values."""
        if len(self.points) < 2:
            return self.points[0][1] if self.points else 0.0
        weighted = 0.0
        duration = 0.0
        for (t0, v0), (t1, _) in zip(self.points, self.points[1:]):
            weighted += v0 * (t1 - t0)
            duration += t1 - t0
        return weighted / duration if duration > 0 else self.points[-1][1]

    def __len__(self) -> int:
        return len(self.points)


@dataclass
class MetricsRegistry:
    """Named collection of counters, samples and time series."""

    counters: Dict[str, Counter] = field(default_factory=dict)
    samples: Dict[str, Sample] = field(default_factory=dict)
    series: Dict[str, TimeSeries] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """Get or create the counter with the given name."""
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def sample(self, name: str) -> Sample:
        """Get or create the sample with the given name."""
        if name not in self.samples:
            self.samples[name] = Sample(name)
        return self.samples[name]

    def timeseries(self, name: str) -> TimeSeries:
        """Get or create the time series with the given name."""
        if name not in self.series:
            self.series[name] = TimeSeries(name)
        return self.series[name]

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Flatten everything into plain dictionaries for reporting."""
        result: Dict[str, Dict[str, float]] = {"counters": {}, "samples": {}, "series": {}}
        for name, counter in self.counters.items():
            result["counters"][name] = float(counter.value)
        for name, sample in self.samples.items():
            result["samples"][name] = sample.mean()
        for name, series in self.series.items():
            last = series.last()
            result["series"][name] = last if last is not None else 0.0
        return result
