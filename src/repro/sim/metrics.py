"""Metric collection for simulation runs.

Three primitives cover everything the experiments need:

* :class:`Counter` — monotonically increasing event counts.
* :class:`Sample` — a bag of observations with percentile/summary helpers
  (lookup latencies, block intervals, transaction confirmation times).
* :class:`TimeSeries` — (time, value) pairs for quantities that evolve over a
  run (online population, chain length, market shares).

A :class:`MetricsRegistry` groups them under string names so simulators can
expose everything they measured in a single object.

Two sample implementations share one API (the :class:`Sample` surface):

* :class:`Sample` — exact, list-backed.  The default everywhere; every
  committed golden was produced through it and stays byte-identical.
* :class:`StreamingSample` — **O(1) memory**: a Welford accumulator for
  mean/stdev (plus exact count/total/min/max) and a logarithmically
  bucketed histogram sketch (DDSketch-style, relative-accuracy
  ``relative_error``) for percentiles, ``fraction_below`` and the CDF.
  Long-horizon high-rate runs opt in via ``MetricsRegistry(mode=
  "streaming")`` (scenario specs: ``metrics: streaming``) so per-event
  observation lists stop growing with run length — the prerequisite for
  10^5–10^6-node simulations.

Streaming percentiles agree with the exact ones within the sketch's
declared relative error; ``repro-run diff --profile sketch`` carries the
matching per-metric tolerance profile (:mod:`repro.analysis.diff`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class Counter:
    """A named monotonically increasing counter."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> int:
        """Add ``amount`` (default 1) and return the new value."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount
        return self.value

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Counter({self.name!r}, {self.value})"


class Sample:
    """A collection of scalar observations with summary statistics."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.values: List[float] = []
        #: Cached ascending view of :attr:`values`; invalidated on write so
        #: ``summary()`` (four percentile calls) sorts once, not four times.
        self._sorted: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.values.append(float(value))
        self._sorted = None

    def extend(self, values: Iterable[float]) -> None:
        """Record many observations (batch-appends the backing store)."""
        self.values.extend(float(value) for value in values)
        self._sorted = None

    def _ordered(self) -> List[float]:
        """The observations in ascending order (cached between writes)."""
        if self._sorted is None or len(self._sorted) != len(self.values):
            self._sorted = sorted(self.values)
        return self._sorted

    def count(self) -> int:
        """Number of observations recorded."""
        return len(self.values)

    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty)."""
        return sum(self.values) / len(self.values) if self.values else 0.0

    def total(self) -> float:
        """Sum of all observations."""
        return sum(self.values)

    def minimum(self) -> float:
        """Smallest observation (0.0 when empty)."""
        return min(self.values) if self.values else 0.0

    def maximum(self) -> float:
        """Largest observation (0.0 when empty)."""
        return max(self.values) if self.values else 0.0

    def stdev(self) -> float:
        """Population standard deviation (0.0 for fewer than two samples)."""
        if len(self.values) < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((value - mu) ** 2 for value in self.values) / len(self.values))

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile, ``q`` in [0, 100]."""
        if not self.values:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        ordered = self._ordered()
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        weight = rank - low
        return ordered[low] * (1.0 - weight) + ordered[high] * weight

    def median(self) -> float:
        """50th percentile."""
        return self.percentile(50.0)

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """Empirical CDF as (value, cumulative fraction) pairs."""
        if not self.values:
            return []
        ordered = self._ordered()
        n = len(ordered)
        step = max(1, n // points)
        cdf_points = [
            (ordered[index], (index + 1) / n) for index in range(0, n, step)
        ]
        if cdf_points[-1][0] != ordered[-1]:
            cdf_points.append((ordered[-1], 1.0))
        return cdf_points

    def fraction_below(self, threshold: float) -> float:
        """Fraction of observations strictly below ``threshold``."""
        if not self.values:
            return 0.0
        return sum(1 for value in self.values if value < threshold) / len(self.values)

    def summary(self) -> Dict[str, float]:
        """Dictionary of the headline statistics (for reports and tests)."""
        return {
            "count": float(self.count()),
            "mean": self.mean(),
            "stdev": self.stdev(),
            "min": self.minimum(),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.maximum(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Sample({self.name!r}, n={len(self.values)}, mean={self.mean():.4g})"


class StreamingSample:
    """O(1)-memory drop-in for :class:`Sample`.

    Moment statistics (count, total, min, max, mean, population stdev) are
    exact: mean/variance use Welford's online update, which is numerically
    stable over arbitrarily long streams.  Order statistics (percentiles,
    ``fraction_below``, the CDF) come from a logarithmically bucketed
    histogram: a positive value ``v`` lands in bucket
    ``ceil(log(v) / log(gamma))`` with ``gamma = (1 + a) / (1 - a)`` for
    relative error ``a``, so any reported quantile is within a factor
    ``(1 ± a)`` of the exact one.  Negative values use a mirrored bucket
    map and zeros an exact counter, so the full real line is covered.

    The bucket maps are bounded by ``max_buckets`` (lowest-magnitude
    buckets collapse first, preserving tail accuracy); with the default
    1% error, 4096 buckets span ~35 decades, so collapse never happens in
    practice and memory is a few KB regardless of stream length.
    """

    def __init__(self, name: str = "", relative_error: float = 0.01,
                 max_buckets: int = 4096) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ValueError("relative_error must be in (0, 1)")
        if max_buckets < 8:
            raise ValueError("max_buckets must be at least 8")
        self.name = name
        self.relative_error = relative_error
        self.max_buckets = max_buckets
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._mean = 0.0
        self._m2 = 0.0
        #: bucket index -> count, positive and negative magnitudes apart.
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}
        self._zeros = 0

    # -- ingest --------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one observation in O(1) time and memory."""
        value = float(value)
        self._count += 1
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value > 0.0:
            self._bump(self._pos, self._bucket_index(value))
        elif value < 0.0:
            self._bump(self._neg, self._bucket_index(-value))
        else:
            self._zeros += 1

    def extend(self, values: Iterable[float]) -> None:
        """Record many observations."""
        for value in values:
            self.observe(value)

    def _bucket_index(self, magnitude: float) -> int:
        return int(math.ceil(math.log(magnitude) / self._log_gamma))

    def _bump(self, buckets: Dict[int, int], index: int) -> None:
        buckets[index] = buckets.get(index, 0) + 1
        if len(buckets) > self.max_buckets:
            # Collapse the two lowest-magnitude buckets into one; the tail
            # (large magnitudes) keeps full resolution.
            low, second = sorted(buckets)[:2]
            buckets[second] += buckets.pop(low)

    # -- exact moment statistics ---------------------------------------
    def count(self) -> int:
        """Number of observations recorded."""
        return self._count

    def mean(self) -> float:
        """Arithmetic mean (0.0 when empty; exact via Welford)."""
        return self._mean if self._count else 0.0

    def total(self) -> float:
        """Sum of all observations."""
        return self._total

    def minimum(self) -> float:
        """Smallest observation (0.0 when empty)."""
        return self._min if self._count else 0.0

    def maximum(self) -> float:
        """Largest observation (0.0 when empty)."""
        return self._max if self._count else 0.0

    def stdev(self) -> float:
        """Population standard deviation (0.0 for fewer than two samples)."""
        if self._count < 2:
            return 0.0
        return math.sqrt(max(self._m2, 0.0) / self._count)

    # -- sketched order statistics -------------------------------------
    def _bucket_value(self, index: int) -> float:
        """Representative value of one positive bucket (relative midpoint)."""
        return 2.0 * self._gamma ** index / (self._gamma + 1.0)

    def _ordered_buckets(self) -> List[Tuple[float, int]]:
        """(representative value, count) pairs in ascending value order."""
        ordered: List[Tuple[float, int]] = []
        for index in sorted(self._neg, reverse=True):
            ordered.append((-self._bucket_value(index), self._neg[index]))
        if self._zeros:
            ordered.append((0.0, self._zeros))
        for index in sorted(self._pos):
            ordered.append((self._bucket_value(index), self._pos[index]))
        return ordered

    def percentile(self, q: float) -> float:
        """Sketched percentile, within the declared relative error."""
        if not self._count:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        # The extremes are tracked exactly; don't answer them off a
        # bucket representative.
        if q == 0.0:
            return self._min
        if q == 100.0:
            return self._max
        rank = (q / 100.0) * (self._count - 1)
        cumulative = 0
        for value, count in self._ordered_buckets():
            cumulative += count
            if cumulative > rank:
                # Clamp into the exact envelope so p0/p100 stay sharp.
                return min(max(value, self._min), self._max)
        return self._max

    def median(self) -> float:
        """50th percentile (sketched)."""
        return self.percentile(50.0)

    def cdf(self, points: int = 100) -> List[Tuple[float, float]]:
        """Sketched CDF as (value, cumulative fraction) pairs."""
        if not self._count:
            return []
        ordered = self._ordered_buckets()
        step = max(1, len(ordered) // points)
        cdf_points: List[Tuple[float, float]] = []
        cumulative = 0
        for position, (value, count) in enumerate(ordered):
            cumulative += count
            if position % step == 0 or position == len(ordered) - 1:
                cdf_points.append((min(max(value, self._min), self._max),
                                   cumulative / self._count))
        return cdf_points

    def fraction_below(self, threshold: float) -> float:
        """Approximate fraction of observations below ``threshold``."""
        if not self._count:
            return 0.0
        below = sum(count for value, count in self._ordered_buckets()
                    if value < threshold)
        return below / self._count

    def summary(self) -> Dict[str, float]:
        """Same headline statistics as :meth:`Sample.summary`."""
        return {
            "count": float(self.count()),
            "mean": self.mean(),
            "stdev": self.stdev(),
            "min": self.minimum(),
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "max": self.maximum(),
        }

    def bucket_count(self) -> int:
        """Live sketch buckets (bounded by ``max_buckets``); memory proxy."""
        return len(self._pos) + len(self._neg) + (1 if self._zeros else 0)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (f"StreamingSample({self.name!r}, n={self._count}, "
                f"mean={self.mean():.4g}, buckets={self.bucket_count()})")


#: Sample implementations by metrics mode (``MetricsRegistry(mode=...)``).
SAMPLE_MODES = ("exact", "streaming")


def make_sample(name: str = "", mode: str = "exact"):
    """A sample of the requested mode (``exact`` list / ``streaming`` sketch)."""
    if mode == "exact":
        return Sample(name)
    if mode == "streaming":
        return StreamingSample(name)
    raise ValueError(f"unknown metrics mode {mode!r}; pick one of {SAMPLE_MODES}")


class TimeSeries:
    """(time, value) pairs for a quantity evolving over a simulation."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        """Append an observation at the given virtual time."""
        self.points.append((float(time), float(value)))

    def last(self) -> Optional[float]:
        """Most recent value, or ``None`` if empty."""
        return self.points[-1][1] if self.points else None

    def values(self) -> List[float]:
        """All values in recording order."""
        return [value for _, value in self.points]

    def times(self) -> List[float]:
        """All timestamps in recording order."""
        return [time for time, _ in self.points]

    def time_average(self) -> float:
        """Time-weighted average assuming piecewise-constant values."""
        if len(self.points) < 2:
            return self.points[0][1] if self.points else 0.0
        weighted = 0.0
        duration = 0.0
        for (t0, v0), (t1, _) in zip(self.points, self.points[1:]):
            weighted += v0 * (t1 - t0)
            duration += t1 - t0
        return weighted / duration if duration > 0 else self.points[-1][1]

    def __len__(self) -> int:
        return len(self.points)


@dataclass
class MetricsRegistry:
    """Named collection of counters, samples and time series.

    ``mode`` selects the sample implementation handed out by
    :meth:`sample`: ``"exact"`` (default, list-backed :class:`Sample`)
    or ``"streaming"`` (:class:`StreamingSample`, O(1) memory per
    metric).  Scenario specs select it with the ``metrics: streaming``
    knob; nothing else about the registry changes.
    """

    counters: Dict[str, Counter] = field(default_factory=dict)
    samples: Dict[str, Sample] = field(default_factory=dict)
    series: Dict[str, TimeSeries] = field(default_factory=dict)
    mode: str = "exact"

    def __post_init__(self) -> None:
        if self.mode not in SAMPLE_MODES:
            raise ValueError(
                f"unknown metrics mode {self.mode!r}; pick one of {SAMPLE_MODES}")

    def counter(self, name: str) -> Counter:
        """Get or create the counter with the given name."""
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def sample(self, name: str) -> Sample:
        """Get or create the sample with the given name (per :attr:`mode`)."""
        if name not in self.samples:
            self.samples[name] = make_sample(name, self.mode)
        return self.samples[name]

    def timeseries(self, name: str) -> TimeSeries:
        """Get or create the time series with the given name."""
        if name not in self.series:
            self.series[name] = TimeSeries(name)
        return self.series[name]

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Flatten everything into plain dictionaries for reporting."""
        result: Dict[str, Dict[str, float]] = {"counters": {}, "samples": {}, "series": {}}
        for name, counter in self.counters.items():
            result["counters"][name] = float(counter.value)
        for name, sample in self.samples.items():
            result["samples"][name] = sample.mean()
        for name, series in self.series.items():
            last = series.last()
            result["series"][name] = last if last is not None else 0.0
        return result
