"""Churn models for open peer-to-peer membership.

Measurement studies of deployed DHTs (Steiner et al. on KAD, Stutzbach &
Rejaie on Gnutella/BitTorrent) report heavy-tailed session lengths that are
well fit by Weibull distributions with shape < 1: most sessions are very
short, a few last days.  The paper's Problem 2 ("performance problems due to
instability, heterogeneity and churn") is driven by exactly this dynamic.

:class:`ChurnModel` describes the statistical shape (session and inter-session
time distributions); :class:`ChurnProcess` drives a population of nodes on a
simulator, flipping them online/offline and reporting the empirical churn
rate.  A ``stable()`` model with effectively infinite sessions represents the
cloud/consortium deployments the paper contrasts against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.rng import SeededRNG


@dataclass
class SessionSample:
    """One on/off cycle of a peer, as produced by a churn model."""

    session_length: float
    downtime: float


@dataclass
class ChurnModel:
    """Statistical description of peer session behaviour.

    Attributes
    ----------
    session_distribution:
        ``"weibull"``, ``"exponential"``, ``"pareto"`` or ``"constant"``.
    mean_session:
        Mean session length in seconds.
    mean_downtime:
        Mean time a peer stays offline between sessions.
    weibull_shape:
        Shape parameter when the session distribution is Weibull
        (shape < 1 gives the heavy tail observed in P2P measurements).
    availability:
        Derived long-run fraction of time a peer is online.
    """

    session_distribution: str = "weibull"
    mean_session: float = 3600.0
    mean_downtime: float = 3600.0
    weibull_shape: float = 0.59
    pareto_shape: float = 1.5

    @property
    def availability(self) -> float:
        """Long-run fraction of time a peer spends online."""
        total = self.mean_session + self.mean_downtime
        return self.mean_session / total if total > 0 else 1.0

    def sample_session(self, rng: SeededRNG) -> float:
        """Draw a session length."""
        return self._draw(rng, self.mean_session)

    def sample_downtime(self, rng: SeededRNG) -> float:
        """Draw an offline interval between sessions."""
        # Downtimes are usually modelled exponentially regardless of the
        # session distribution; the session heavy tail is what matters.
        return rng.exponential(self.mean_downtime) if self.mean_downtime > 0 else 0.0

    def sample_cycle(self, rng: SeededRNG) -> SessionSample:
        """Draw one full on/off cycle."""
        return SessionSample(self.sample_session(rng), self.sample_downtime(rng))

    def _draw(self, rng: SeededRNG, mean: float) -> float:
        if mean <= 0:
            return 0.0
        if self.session_distribution == "constant":
            return mean
        if self.session_distribution == "exponential":
            return rng.exponential(mean)
        if self.session_distribution == "pareto":
            shape = self.pareto_shape
            scale = mean * (shape - 1.0) / shape if shape > 1 else mean
            return rng.pareto(shape, scale)
        if self.session_distribution == "weibull":
            # scale = mean / Gamma(1 + 1/shape); use a rational approximation
            # of the gamma function via math.gamma.
            import math

            scale = mean / math.gamma(1.0 + 1.0 / self.weibull_shape)
            return rng.weibull(self.weibull_shape, scale)
        raise ValueError(f"unknown session distribution {self.session_distribution!r}")

    # ------------------------------------------------------------------
    # Declarative construction (scenario specs)
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec) -> Optional["ChurnModel"]:
        """Build a churn model from declarative scenario data.

        Accepts ``None`` / ``"none"`` (no churn), an existing
        :class:`ChurnModel` (passed through), a preset name (``"kad"``,
        ``"bittorrent"``, ``"stable"``, ``"aggressive"``) or a dict of
        constructor arguments.  This is the hook
        :mod:`repro.scenarios` uses so a :class:`ScenarioSpec` can stay
        plain JSON-serialisable data.
        """
        if spec is None:
            return None
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, str):
            name = spec.replace("_", "-").lower()
            if name in ("none", "off"):
                return None
            presets = {
                "kad": cls.kad_like,
                "bittorrent": cls.bittorrent_like,
                "stable": cls.stable,
                "aggressive": cls.aggressive,
            }
            if name not in presets:
                raise ValueError(
                    f"unknown churn preset {spec!r}; pick one of {sorted(presets)} or 'none'"
                )
            return presets[name]()
        if isinstance(spec, dict):
            return cls(**spec)
        raise TypeError(f"cannot build a ChurnModel from {type(spec).__name__}")

    # ------------------------------------------------------------------
    # Presets calibrated to published measurement studies
    # ------------------------------------------------------------------
    @classmethod
    def kad_like(cls) -> "ChurnModel":
        """Heavy-tailed churn comparable to eMule KAD measurements."""
        return cls(
            session_distribution="weibull",
            mean_session=4.0 * 3600.0,
            mean_downtime=2.0 * 3600.0,
            weibull_shape=0.59,
        )

    @classmethod
    def bittorrent_like(cls) -> "ChurnModel":
        """Shorter, churn-heavy sessions typical of BitTorrent Mainline DHT."""
        return cls(
            session_distribution="weibull",
            mean_session=1.0 * 3600.0,
            mean_downtime=1.0 * 3600.0,
            weibull_shape=0.5,
        )

    @classmethod
    def stable(cls, mean_session: float = 30 * 24 * 3600.0) -> "ChurnModel":
        """Cloud/consortium-like membership: nodes essentially never leave."""
        return cls(
            session_distribution="exponential",
            mean_session=mean_session,
            mean_downtime=60.0,
        )

    @classmethod
    def aggressive(cls) -> "ChurnModel":
        """Very high churn used for stress experiments."""
        return cls(
            session_distribution="weibull",
            mean_session=600.0,
            mean_downtime=1200.0,
            weibull_shape=0.5,
        )


class ChurnProcess:
    """Drives a population of peers on/offline according to a churn model.

    The process calls ``on_join(node_id)`` / ``on_leave(node_id)`` callbacks
    when a peer's state changes, so protocol simulators can update routing
    state.  It also records join/leave counts to report the realised churn
    rate (events per node per hour).
    """

    def __init__(
        self,
        sim: Simulator,
        node_ids: List,
        model: ChurnModel,
        rng: Optional[SeededRNG] = None,
        on_join: Optional[Callable] = None,
        on_leave: Optional[Callable] = None,
        initially_online: bool = True,
        steady_state_init: bool = False,
    ) -> None:
        self.sim = sim
        self.model = model
        self.rng = rng or SeededRNG(0)
        self.on_join = on_join
        self.on_leave = on_leave
        self.online: Dict = {}
        self.join_events = 0
        self.leave_events = 0
        self._started_at = sim.now
        for node_id in node_ids:
            if steady_state_init:
                # Start from the stationary regime instead of "everyone online":
                # each peer is online with probability equal to its long-run
                # availability, which avoids a large transient wave of departures.
                self.online[node_id] = self.rng.bernoulli(model.availability)
            else:
                self.online[node_id] = initially_online

    def start(self) -> None:
        """Schedule the first transition for every peer."""
        for node_id, is_online in self.online.items():
            if is_online:
                remaining = self.model.sample_session(self.rng) * self.rng.random()
                self.sim.schedule(remaining, self._leave, node_id)
            else:
                wait = self.model.sample_downtime(self.rng) * self.rng.random()
                self.sim.schedule(wait, self._join, node_id)

    def is_online(self, node_id) -> bool:
        """Whether the churn process currently considers the peer online."""
        return self.online.get(node_id, False)

    def online_count(self) -> int:
        """Number of peers currently online."""
        return sum(1 for value in self.online.values() if value)

    def churn_rate_per_hour(self) -> float:
        """Average membership change events per node per hour so far."""
        elapsed = self.sim.now - self._started_at
        if elapsed <= 0 or not self.online:
            return 0.0
        events = self.join_events + self.leave_events
        return events / len(self.online) / (elapsed / 3600.0)

    # ------------------------------------------------------------------
    # Internal transitions
    # ------------------------------------------------------------------
    def _leave(self, node_id) -> None:
        if not self.online.get(node_id, False):
            return
        self.online[node_id] = False
        self.leave_events += 1
        if self.on_leave is not None:
            self.on_leave(node_id)
        downtime = self.model.sample_downtime(self.rng)
        self.sim.schedule(downtime, self._join, node_id)

    def _join(self, node_id) -> None:
        if self.online.get(node_id, False):
            return
        self.online[node_id] = True
        self.join_events += 1
        if self.on_join is not None:
            self.on_join(node_id)
        session = self.model.sample_session(self.rng)
        self.sim.schedule(session, self._leave, node_id)
