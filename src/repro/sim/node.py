"""Base class for simulated nodes.

A :class:`Node` owns an identifier, a reference to the simulator and the
network, and dispatches incoming messages to ``on_<msg_type>`` methods.  The
protocol simulators (DHTs, blockchain nodes, BFT replicas, Fabric peers)
subclass it.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Optional

from repro.sim.engine import Simulator
from repro.sim.network import Message, Network


class Node:
    """A network participant that dispatches messages by type."""

    def __init__(
        self,
        node_id: Hashable,
        sim: Simulator,
        network: Network,
        region: str = "default",
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.region = region
        self.online = True
        network.register(node_id, self.receive, region=region)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def go_offline(self) -> None:
        """Take the node off the network (messages to/from it are dropped)."""
        self.online = False
        self.network.set_offline(self.node_id, True)

    def go_online(self) -> None:
        """Bring the node back online."""
        self.online = True
        self.network.set_offline(self.node_id, False)

    def shutdown(self) -> None:
        """Permanently remove the node from the network."""
        self.online = False
        self.network.unregister(self.node_id)

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(
        self,
        recipient: Hashable,
        msg_type: str,
        payload: Any = None,
        size_bytes: int = 256,
    ) -> Optional[Message]:
        """Send a message if this node is online."""
        if not self.online:
            return None
        return self.network.send(self.node_id, recipient, msg_type, payload, size_bytes)

    def broadcast(
        self,
        recipients: Iterable[Hashable],
        msg_type: str,
        payload: Any = None,
        size_bytes: int = 256,
    ) -> int:
        """Send the same payload to every recipient via the network fast path.

        Equivalent to calling :meth:`send` per recipient (same counters, same
        RNG draw order) but with the per-message lookups hoisted; returns the
        number of messages sent, 0 when this node is offline.
        """
        if not self.online:
            return 0
        return self.network.broadcast(self.node_id, recipients, msg_type, payload, size_bytes)

    def receive(self, message: Message) -> None:
        """Dispatch an incoming message to ``on_<msg_type>`` if it exists."""
        if not self.online:
            return
        handler = getattr(self, f"on_{message.msg_type}", None)
        if handler is not None:
            handler(message)
        else:
            self.on_unknown(message)

    def on_unknown(self, message: Message) -> None:
        """Hook for unhandled message types; default is to ignore them."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "online" if self.online else "offline"
        return f"{type(self).__name__}({self.node_id!r}, {state})"
