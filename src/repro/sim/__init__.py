"""Discrete-event simulation kernel used by every simulator in :mod:`repro`.

The kernel is deliberately small and deterministic:

* :class:`~repro.sim.engine.Simulator` — a heap-based event loop with a
  virtual clock, callback scheduling and generator-based processes.
* :class:`~repro.sim.rng.SeededRNG` — a seeded random source with the
  distributions used across the library (exponential, Pareto, Weibull,
  Zipf, log-normal).
* :class:`~repro.sim.network.Network` — a latency/bandwidth message-passing
  model between named nodes, with configurable per-link delay distributions.
* :mod:`~repro.sim.churn` — session/arrival processes used to model open
  peer-to-peer membership dynamics.
* :mod:`~repro.sim.metrics` — counters, samples and time series collected
  during a run; exact by default, O(1)-memory streaming sketches on
  request (``metrics: streaming`` in scenario specs).
* :mod:`~repro.sim.vecstate` — vectorized (numpy) node-population state
  for large-N overlays: packed ``uint64`` id spaces, batch XOR-distance
  routing tables and array-backed churn, used by the
  ``architecture: {overlay: kad-fast}`` scenarios.

Everything is seeded explicitly; running the same scenario twice with the
same seed produces the same trajectory.
"""

from repro.sim.engine import Event, Process, Simulator, Timeout
from repro.sim.rng import SeededRNG
from repro.sim.network import NETWORK_PRESETS, Link, Message, Network, NetworkParams
from repro.sim.node import Node
from repro.sim.churn import ChurnModel, ChurnProcess, SessionSample
from repro.sim.metrics import (
    Counter,
    MetricsRegistry,
    Sample,
    StreamingSample,
    TimeSeries,
    make_sample,
)

__all__ = [
    "Event",
    "Process",
    "Simulator",
    "Timeout",
    "SeededRNG",
    "Link",
    "Message",
    "Network",
    "NETWORK_PRESETS",
    "NetworkParams",
    "Node",
    "ChurnModel",
    "ChurnProcess",
    "SessionSample",
    "Counter",
    "MetricsRegistry",
    "Sample",
    "StreamingSample",
    "TimeSeries",
    "make_sample",
]
