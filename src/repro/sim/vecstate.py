"""Vectorized node-population state for large-N overlay simulations.

The scalar simulators in :mod:`repro.p2p` keep one Python object per node
(k-bucket dicts, per-node churn callbacks, per-event list appends).  That
representation tops out around 10^3 nodes; the platform's scaling
questions ("how does lookup latency behave at 10^5-10^6 peers?") need
3-4 more orders of magnitude.  This module holds the same state as flat
numpy arrays so whole-population operations are single batch array ops:

* :func:`splitmix64` / :func:`hashed_u64` / :func:`hashed_uniform` —
  counter-based deterministic randomness.  Every draw is a pure function
  of ``(seed, stream label, counters...)`` in uint64 arithmetic, so the
  results are reproducible across numpy versions (no dependence on
  ``np.random`` generator stream layouts) and across any batching order.
* :class:`VecIdSpace` — ``n`` unique 64-bit node identifiers, sorted
  ascending so that *node index == rank* and every XOR subtree (fixed
  bit prefix) is a contiguous slice of the array.
* :func:`xor_closest` — exact XOR-nearest-neighbour lookup for a batch
  of targets against a sorted id array (binary descent over bit
  prefixes; ~64 vectorized ``searchsorted`` rounds for any batch size).
* :class:`VecRoutingTable` — the Kademlia routing state of *all* nodes
  in one ``(n, buckets, k)`` array of int32 contact indices, built and
  maintained with batch operations (no per-node Python loops).
* :class:`VecChurn` — membership dynamics as parallel arrays (online
  flag, next transition time, per-node draw epoch); advancing virtual
  time flips whole cohorts at once instead of scheduling one engine
  callback per node, while drawing from the same session/downtime
  distributions as :class:`repro.sim.churn.ChurnModel`.

Identifier width is 64 bits here (the scalar Kademlia uses 160); for
distance-ordering purposes the reduced space is equivalent as long as
``n`` is far below 2^64, and it lets ids live in native uint64 lanes.

:mod:`repro.p2p.fastkad` composes these into the ``kad-fast`` overlay
substrate used by the ``kademlia-churn-100k`` scenario.
"""

from __future__ import annotations

import hashlib
import math
from typing import Optional, Tuple

import numpy as np

from repro.sim.churn import ChurnModel

#: Sentinel for "no contact in this routing-table slot".
EMPTY = np.int32(-1)

_U64 = np.uint64
_FULL_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


# ----------------------------------------------------------------------
# Counter-based randomness
# ----------------------------------------------------------------------
def splitmix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array (elementwise, wrapping).

    Written with explicit in-place ops so a call allocates two arrays,
    not six — this runs over multi-million-element counter arrays in the
    churn and maintenance paths, where temporaries dominate peak RSS.
    """
    z = x + 0x9E3779B97F4A7C15
    t = z >> np.uint64(30)
    z ^= t
    z *= 0xBF58476D1CE4E5B9
    np.right_shift(z, np.uint64(27), out=t)
    z ^= t
    z *= 0x94D049BB133111EB
    np.right_shift(z, np.uint64(31), out=t)
    z ^= t
    return z


def stream_key(seed: int, label: str) -> int:
    """A 64-bit stream key derived from ``(seed, label)``.

    blake2b keeps labels collision-free without relying on Python's
    salted ``hash()`` (the cross-process determinism bug PR 2 fixed).
    """
    digest = hashlib.blake2b(
        f"{seed}:{label}".encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def hashed_u64(key: int, *counters: object) -> np.ndarray:
    """Deterministic uint64 hash of one or more counter arrays.

    ``hashed_u64(key, a, b, ...)`` mixes each counter in sequence with a
    SplitMix64 round, so any (key, a, b, ...) tuple maps to an
    independent 64-bit value regardless of evaluation order or batch
    shape — the property that makes batched churn/table draws match
    however the population is sliced.
    """
    h = splitmix64(np.asarray(counters[0], dtype=_U64) ^ _U64(key & 0xFFFFFFFFFFFFFFFF))
    for counter in counters[1:]:
        h = splitmix64(h ^ np.asarray(counter, dtype=_U64))
    return h


def hashed_uniform(key: int, *counters: object) -> np.ndarray:
    """Deterministic uniforms on (0, 1] (never 0, so ``log(u)`` is safe)."""
    bits = hashed_u64(key, *counters)
    return ((bits >> np.uint64(11)).astype(np.float64) + 1.0) * 2.0 ** -53


def draw_durations(model: ChurnModel, mean: float, u: np.ndarray) -> np.ndarray:
    """Inverse-CDF draws from a churn model's session distribution.

    Matches the distribution families of
    :meth:`repro.sim.churn.ChurnModel._draw` (constant / exponential /
    Pareto / Weibull with the same parameterization), evaluated on a
    whole uniform array at once.
    """
    if mean <= 0:
        return np.zeros_like(u)
    kind = model.session_distribution
    if kind == "constant":
        return np.full_like(u, mean)
    if kind == "exponential":
        return -mean * np.log(u)
    if kind == "pareto":
        shape = model.pareto_shape
        scale = mean * (shape - 1.0) / shape if shape > 1 else mean
        return scale * u ** (-1.0 / shape)
    if kind == "weibull":
        shape = model.weibull_shape
        scale = mean / math.gamma(1.0 + 1.0 / shape)
        return scale * (-np.log(u)) ** (1.0 / shape)
    raise ValueError(f"unknown session distribution {kind!r}")


# ----------------------------------------------------------------------
# Identifier space
# ----------------------------------------------------------------------
class VecIdSpace:
    """``n`` unique random 64-bit node identifiers, sorted ascending.

    Sorting is the load-bearing trick: the node population is addressed
    by *rank* (int32 indices into :attr:`ids`), and any fixed bit prefix
    — i.e. any XOR subtree, hence any Kademlia bucket range — is a
    contiguous slice findable with ``np.searchsorted``.
    """

    def __init__(self, n: int, seed: int = 0) -> None:
        if n < 2:
            raise ValueError("an id space needs at least 2 nodes")
        key = stream_key(seed, "idspace")
        ids = hashed_u64(key, np.arange(n, dtype=np.uint64))
        ids = np.unique(ids)
        salt = 1
        while len(ids) < n:  # pragma: no cover - ~n^2/2^64 probability
            extra = hashed_u64(key, np.arange(n - len(ids), dtype=np.uint64),
                               np.uint64(salt))
            ids = np.unique(np.concatenate([ids, extra]))
            salt += 1
        self.ids: np.ndarray = ids[:n].copy()
        self.n = n

    def __len__(self) -> int:
        return self.n


def xor_closest(sorted_ids: np.ndarray,
                targets: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Index and XOR distance of the closest id to each target.

    Exact nearest-neighbour under the XOR metric, computed by descending
    the implicit bit trie: starting from the whole array, at each bit
    position keep the half of the current prefix range whose bit equals
    the target's (falling back to the other half when empty).  Because
    ``sorted_ids`` is ascending, each half is located with one global
    ``searchsorted`` clipped into the current range — 64 vectorized
    rounds regardless of batch size, versus an O(len * batch) brute
    force.  (The "sorted neighbour" shortcut is *not* exact for XOR —
    e.g. ``t=8`` against ``[0, 7]`` is closer to 0 — hence the descent.)
    """
    sorted_ids = np.asarray(sorted_ids, dtype=_U64)
    targets = np.atleast_1d(np.asarray(targets, dtype=_U64))
    if len(sorted_ids) == 0:
        raise ValueError("xor_closest needs a non-empty id array")
    lo = np.zeros(len(targets), dtype=np.int64)
    hi = np.full(len(targets), len(sorted_ids), dtype=np.int64)
    prefix = np.zeros(len(targets), dtype=_U64)
    for bit in range(63, -1, -1):
        active = (hi - lo) > 1
        if not active.any():
            break
        boundary = prefix | (_U64(1) << _U64(bit))
        mid = np.searchsorted(sorted_ids, boundary, side="left")
        mid = np.clip(mid, lo, hi)
        want_one = ((targets >> np.uint64(bit)) & _U64(1)).astype(bool)
        upper_ok = mid < hi
        lower_ok = mid > lo
        take_one = np.where(want_one, upper_ok, ~lower_ok)
        new_lo = np.where(take_one, mid, lo)
        new_hi = np.where(take_one, hi, mid)
        new_prefix = np.where(take_one, boundary, prefix)
        lo = np.where(active, new_lo, lo)
        hi = np.where(active, new_hi, hi)
        prefix = np.where(active, new_prefix, prefix)
    indices = lo
    distances = sorted_ids[indices] ^ targets
    return indices, distances


# ----------------------------------------------------------------------
# Routing tables
# ----------------------------------------------------------------------
class VecRoutingTable:
    """Kademlia routing state of a whole population in one array.

    ``table[node, bucket, slot]`` holds the int32 *index* (rank in the
    sorted id space) of a contact, or :data:`EMPTY`.  Bucket ``b``
    covers node distances in ``[2^(63-b), 2^(64-b))`` — the XOR subtree
    obtained by flipping bit ``63-b`` of the node's id — which in a
    sorted id space is the precomputed contiguous range
    ``[range_lo[node, b], range_lo + range_len)``.  Only the top
    ``bucket_count`` buckets are materialized: with ``n`` uniform ids
    bucket occupancy decays as ``n / 2^b``, so ``log2(n) + margin``
    buckets cover every non-empty one (the same reason scalar Kademlia
    tables only ever populate O(log n) buckets).

    Memory: ``n * buckets * k`` int32 plus an equal bool array for the
    stale flags — ~100 MB for n=10^5 with the defaults, versus multiple
    GB of dict-of-list Python objects for the scalar representation.

    ``stale`` marks entries that point at departed peers without the
    owner knowing (``initial_stale_fraction`` at bootstrap); they cost a
    timeout when tried and are only removed by maintenance
    (:meth:`evict_offline`), matching the scalar model's semantics.
    """

    def __init__(self, space: VecIdSpace, k: int = 8,
                 bucket_count: Optional[int] = None, seed: int = 0,
                 stale_fraction: float = 0.0) -> None:
        self.space = space
        self.k = int(k)
        n = space.n
        if bucket_count is None:
            bucket_count = min(64, int(math.ceil(math.log2(n))) + 8)
        self.bucket_count = int(bucket_count)
        self.seed = seed
        self._maintenance_passes = 0
        ids = space.ids
        k = self.k

        # Per-(node, bucket) subtree ranges, fixed for the whole run.
        self.range_lo = np.empty((n, self.bucket_count), dtype=np.int64)
        self.range_len = np.empty((n, self.bucket_count), dtype=np.int64)
        for bucket in range(self.bucket_count):
            bit = 63 - bucket
            low_mask = (_U64(1) << _U64(bit)) - _U64(1)
            base = (ids ^ (_U64(1) << _U64(bit))) & ~low_mask
            lo = np.searchsorted(ids, base, side="left")
            hi = np.searchsorted(ids, base | low_mask, side="right")
            self.range_lo[:, bucket] = lo
            self.range_len[:, bucket] = hi - lo

        # Bootstrap: fill every bucket with up to k distinct members of
        # its range (all of them when the range is small, a hashed
        # sample when it is large).
        self.table = np.full((n, self.bucket_count, k), EMPTY, dtype=np.int32)
        fill_key = stream_key(seed, "table-bootstrap")
        nodes = np.arange(n, dtype=np.uint64)[:, None]
        for bucket in range(self.bucket_count):
            lo = self.range_lo[:, bucket][:, None]
            count = self.range_len[:, bucket][:, None]
            slots = np.arange(k, dtype=np.uint64)[None, :]
            u = hashed_uniform(fill_key, nodes, np.uint64(bucket), slots)
            sampled = lo + np.minimum(
                (u * count).astype(np.int64), np.maximum(count - 1, 0))
            sequential = lo + np.arange(k, dtype=np.int64)[None, :]
            contacts = np.where(count > k, sampled, sequential)
            contacts = np.where(np.arange(k)[None, :] < count, contacts,
                                np.int64(EMPTY))
            self.table[:, bucket, :] = contacts.astype(np.int32)
        self._dedupe_rows()

        stale = np.zeros_like(self.table, dtype=bool)
        if stale_fraction > 0.0:
            stale_key = stream_key(seed, "table-stale")
            # Bucket-sized draws keep the hash temporaries at n*k
            # elements instead of the whole n*buckets*k table.
            entry = np.arange(n * k, dtype=np.uint64)
            for bucket in range(self.bucket_count):
                u = hashed_uniform(stale_key, entry,
                                   np.uint64(bucket)).reshape(n, k)
                stale[:, bucket, :] = (self.table[:, bucket, :] != EMPTY) & (
                    u < stale_fraction)
        self.stale = stale

    # -- queries -------------------------------------------------------
    def contacts_of(self, node_indices: np.ndarray) -> np.ndarray:
        """Contact indices of the given nodes, shape ``(len, buckets*k)``."""
        rows = self.table[node_indices]
        return rows.reshape(len(node_indices), -1)

    def stale_of(self, node_indices: np.ndarray) -> np.ndarray:
        """Stale flags aligned with :meth:`contacts_of`."""
        rows = self.stale[node_indices]
        return rows.reshape(len(node_indices), -1)

    def staleness(self, online: np.ndarray) -> float:
        """Fraction of table entries pointing at dead-to-the-owner peers.

        Counts both marked-stale entries and contacts that are currently
        offline — the same "entry that will cost you a timeout" measure
        :meth:`repro.p2p.kademlia.KademliaNetwork.routing_table_staleness`
        reports for the scalar tables.
        """
        filled = self.table != EMPTY
        total = int(filled.sum())
        if not total:
            return 0.0
        alive = online[np.where(filled, self.table, np.int32(0))]
        dead = filled & (self.stale | ~alive)
        return float(dead.sum()) / total

    def fill_fraction(self) -> float:
        """Fraction of slots holding a contact (diagnostic)."""
        return float((self.table != EMPTY).mean())

    # -- maintenance ---------------------------------------------------
    def evict_offline(self, online: np.ndarray,
                      detection: float = 0.8) -> int:
        """Probabilistically evict dead contacts; returns evictions.

        Each entry whose contact is offline (or marked stale) is detected
        and cleared with probability ``detection`` — one vectorized
        maintenance pass over every node at once, standing in for the
        scalar model's per-node refresh probes.
        """
        filled = self.table != EMPTY
        alive = online[np.where(filled, self.table, np.int32(0))]
        candidates = filled & (self.stale | ~alive)
        flat = np.flatnonzero(candidates)
        if len(flat) == 0:
            return 0
        key = stream_key(self.seed, "table-evict")
        u = hashed_uniform(key, flat.astype(np.uint64),
                           np.uint64(self._maintenance_passes))
        evict = flat[u < detection]
        self.table.reshape(-1)[evict] = EMPTY
        self.stale.reshape(-1)[evict] = False
        return len(evict)

    def refresh(self, online: np.ndarray, samples: int = 4) -> int:
        """Let every node learn up to ``samples`` fresh live contacts.

        Each node's first ``samples`` non-full buckets draw one uniform
        candidate from their subtree range; draws that land on an
        offline peer or a contact already in the bucket are discarded
        (they would not respond / add nothing), so under heavy churn
        filling takes several passes — exactly the dynamic that
        separates aggressive-refresh KAD from lazy Mainline tables.
        Returns the number of slots filled.

        The pass works at (node, bucket)-row granularity, not per slot:
        an ``argmax`` finds each row's first empty slot and a k-wide
        comparison rejects duplicates, so nothing ever scans or re-sorts
        the full slot axis — the pass stays O(n * buckets) plus the
        selected rows.
        """
        is_empty = self.table == EMPTY
        has_room = is_empty.any(axis=2)
        first_empty = is_empty.argmax(axis=2)
        order = np.cumsum(has_room, axis=1, dtype=np.int32)
        allowed = has_room & (order <= samples)
        node_idx, bucket_idx = np.nonzero(allowed)
        if len(node_idx) == 0:
            self._maintenance_passes += 1
            return 0
        lo = self.range_lo[node_idx, bucket_idx]
        count = self.range_len[node_idx, bucket_idx]
        key = stream_key(self.seed, "table-refresh")
        u = hashed_uniform(key, node_idx.astype(np.uint64),
                           bucket_idx.astype(np.uint64),
                           np.uint64(self._maintenance_passes))
        candidate = lo + np.minimum((u * count).astype(np.int64),
                                    np.maximum(count - 1, 0))
        rows = self.table[node_idx, bucket_idx]            # (sel, k) copy
        duplicate = (rows == candidate[:, None].astype(np.int32)).any(axis=1)
        viable = (count > 0) & online[candidate] & ~duplicate
        self.table[node_idx[viable], bucket_idx[viable],
                   first_empty[node_idx[viable], bucket_idx[viable]]] = (
            candidate[viable].astype(np.int32))
        self._maintenance_passes += 1
        return int(viable.sum())

    def _dedupe_rows(self) -> None:
        """Clear duplicate contacts within each (node, bucket) row.

        Sorting each k-wide row groups duplicates adjacently (slot order
        inside a bucket carries no meaning), so one vectorized
        equal-to-predecessor comparison finds them all.
        """
        ordered = np.sort(self.table, axis=2)
        dup = np.zeros_like(ordered, dtype=bool)
        dup[:, :, 1:] = (ordered[:, :, 1:] == ordered[:, :, :-1]) & (
            ordered[:, :, 1:] != EMPTY)
        ordered[dup] = EMPTY
        self.table = ordered


# ----------------------------------------------------------------------
# Churn
# ----------------------------------------------------------------------
class VecChurn:
    """Membership dynamics over a node population as parallel arrays.

    The scalar :class:`~repro.sim.churn.ChurnProcess` schedules one
    engine callback per node transition — fine at 10^2 nodes, hopeless
    at 10^5.  Here the state is three arrays (``online`` flag, absolute
    ``next_transition`` time, per-node draw ``epoch``) and
    :meth:`advance` flips every due cohort in a handful of batch
    operations.  Draw determinism is counter-based: the duration of node
    ``i``'s ``e``-th interval is a pure function of
    ``(seed, i, e)``, so any advance schedule produces the same
    trajectory.

    Initialization is steady-state (each node online with probability
    equal to its long-run availability, first transition at a uniform
    residual of a fresh draw), matching the scalar process's
    ``steady_state_init`` path.
    """

    def __init__(self, n: int, model: ChurnModel, seed: int = 0) -> None:
        self.n = n
        self.model = model
        self._session_key = stream_key(seed, "churn-session")
        self._downtime_key = stream_key(seed, "churn-downtime")
        self.epoch = np.zeros(n, dtype=np.uint64)
        nodes = np.arange(n, dtype=np.uint64)
        init_u = hashed_uniform(stream_key(seed, "churn-init"), nodes)
        self.online = init_u < model.availability
        first = np.where(self.online,
                         self._draw_sessions(nodes, self.epoch),
                         self._draw_downtimes(nodes, self.epoch))
        residual_u = hashed_uniform(stream_key(seed, "churn-residual"), nodes)
        self.next_transition = first * residual_u
        self.epoch += np.uint64(1)
        self.now = 0.0
        self.join_events = 0
        self.leave_events = 0

    def _draw_sessions(self, nodes: np.ndarray,
                       epochs: np.ndarray) -> np.ndarray:
        u = hashed_uniform(self._session_key, nodes, epochs)
        return draw_durations(self.model, self.model.mean_session, u)

    def _draw_downtimes(self, nodes: np.ndarray,
                        epochs: np.ndarray) -> np.ndarray:
        # Downtimes are exponential regardless of the session family,
        # mirroring ChurnModel.sample_downtime.
        if self.model.mean_downtime <= 0:
            return np.zeros(len(nodes))
        u = hashed_uniform(self._downtime_key, nodes, epochs)
        return -self.model.mean_downtime * np.log(u)

    def advance(self, until: float) -> int:
        """Advance virtual time, flipping every node due before ``until``.

        Returns the number of membership transitions processed (the
        batch replacement for that many per-node engine callbacks).
        """
        transitions = 0
        while True:
            due = np.flatnonzero(self.next_transition <= until)
            if len(due) == 0:
                break
            going_online = ~self.online[due]
            self.online[due] = going_online
            self.join_events += int(going_online.sum())
            self.leave_events += int(len(due) - going_online.sum())
            nodes = due.astype(np.uint64)
            epochs = self.epoch[due]
            durations = np.where(going_online,
                                 self._draw_sessions(nodes, epochs),
                                 self._draw_downtimes(nodes, epochs))
            # A zero-length interval (mean_downtime=0, or a u==1 Weibull
            # draw) would keep the node due forever; nudge it forward.
            self.next_transition[due] += np.maximum(durations, 1e-9)
            self.epoch[due] += np.uint64(1)
            transitions += len(due)
        self.now = until
        return transitions

    def online_indices(self) -> np.ndarray:
        """Ranks of the currently online nodes (ascending, so sorted ids)."""
        return np.flatnonzero(self.online)

    def online_count(self) -> int:
        """Number of nodes currently online."""
        return int(self.online.sum())

    def churn_rate_per_hour(self) -> float:
        """Membership transitions per node per hour so far."""
        if self.now <= 0 or self.n == 0:
            return 0.0
        events = self.join_events + self.leave_events
        return events / self.n / (self.now / 3600.0)
