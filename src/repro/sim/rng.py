"""Seeded random source with the distributions used across the library.

Every simulator takes a :class:`SeededRNG` (or a seed from which it builds
one) so that experiments are reproducible.  The class wraps
:class:`random.Random` rather than NumPy's generator because most draws are
scalar and interleaved with simulation logic; helpers that need vectorised
draws convert explicitly.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


class SeededRNG:
    """Deterministic random number generator with domain-specific helpers."""

    def __init__(self, seed: Optional[int] = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    # ------------------------------------------------------------------
    # Core draws
    # ------------------------------------------------------------------
    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def getrandbits(self, bits: int) -> int:
        """Uniform integer with ``bits`` random bits."""
        return self._random.getrandbits(bits)

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly pick one element of ``items``."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> List[T]:
        """Sample ``k`` distinct elements of ``items`` without replacement."""
        return self._random.sample(items, k)

    def shuffle(self, items: List[T]) -> List[T]:
        """Shuffle ``items`` in place and return it for convenience."""
        self._random.shuffle(items)
        return items

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal draw."""
        return self._random.gauss(mu, sigma)

    # ------------------------------------------------------------------
    # Heavy-tailed / lifetime distributions
    # ------------------------------------------------------------------
    def exponential(self, mean: float) -> float:
        """Exponential draw with the given mean (not rate)."""
        if mean <= 0:
            raise ValueError("exponential mean must be positive")
        return self._random.expovariate(1.0 / mean)

    def pareto(self, shape: float, scale: float = 1.0) -> float:
        """Pareto (Lomax-style, ``scale`` is the minimum value) draw."""
        if shape <= 0 or scale <= 0:
            raise ValueError("pareto shape and scale must be positive")
        return scale * (self._random.paretovariate(shape))

    def weibull(self, shape: float, scale: float) -> float:
        """Weibull draw; shape < 1 gives the heavy-tailed sessions seen in P2P."""
        if shape <= 0 or scale <= 0:
            raise ValueError("weibull shape and scale must be positive")
        return self._random.weibullvariate(scale, shape)

    def lognormal(self, mu: float, sigma: float) -> float:
        """Log-normal draw (parameters of the underlying normal)."""
        return self._random.lognormvariate(mu, sigma)

    def poisson(self, mean: float) -> int:
        """Poisson draw via inversion (adequate for the small means we use)."""
        if mean < 0:
            raise ValueError("poisson mean must be non-negative")
        if mean == 0:
            return 0
        if mean > 50:
            # Normal approximation for large means keeps this O(1).
            return max(0, int(round(self._random.gauss(mean, math.sqrt(mean)))))
        threshold = math.exp(-mean)
        count = 0
        product = self._random.random()
        while product > threshold:
            count += 1
            product *= self._random.random()
        return count

    def zipf_rank(self, n: int, exponent: float = 1.0) -> int:
        """Draw a 1-based rank from a Zipf distribution over ``n`` items."""
        if n <= 0:
            raise ValueError("zipf population must be positive")
        weights = self._zipf_weights(n, exponent)
        target = self._random.random() * weights[-1]
        # Binary search in the cumulative weights.
        low, high = 0, n - 1
        while low < high:
            mid = (low + high) // 2
            if weights[mid] < target:
                low = mid + 1
            else:
                high = mid
        return low + 1

    def _zipf_weights(self, n: int, exponent: float) -> List[float]:
        key = (n, exponent)
        cache = getattr(self, "_zipf_cache", None)
        if cache is None:
            cache = {}
            self._zipf_cache = cache
        if key not in cache:
            cumulative: List[float] = []
            total = 0.0
            for rank in range(1, n + 1):
                total += 1.0 / (rank ** exponent)
                cumulative.append(total)
            cache[key] = cumulative
        return cache[key]

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def bernoulli(self, probability: float) -> bool:
        """Return ``True`` with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        return self._random.random() < probability

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one element of ``items`` proportionally to ``weights``."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        return self._random.choices(list(items), weights=list(weights), k=1)[0]

    def fork(self, label: str) -> "SeededRNG":
        """Derive an independent, reproducible child generator.

        Child streams are keyed on ``(parent seed, label)`` so that adding a
        new consumer of randomness does not perturb existing ones.  The
        derivation must not use the builtin ``hash`` — string hashing is
        randomized per process (PYTHONHASHSEED), which would make fixed-seed
        runs differ between invocations.
        """
        digest = hashlib.sha256(f"{self.seed!r}:{label}".encode("utf-8")).digest()
        child_seed = int.from_bytes(digest[:8], "big") & 0x7FFFFFFF
        return SeededRNG(child_seed)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SeededRNG(seed={self.seed!r})"
