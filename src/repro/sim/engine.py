"""Deterministic discrete-event simulation engine.

The engine provides two complementary programming models:

* **Callback scheduling** — ``sim.schedule(delay, fn, *args)`` runs ``fn`` at
  ``sim.now + delay``.  This is the cheapest way to express protocol timers
  and message deliveries.
* **Generator processes** — ``sim.spawn(generator)`` runs a Python generator
  as a cooperative process.  The generator yields :class:`Timeout` objects
  (sleep for a virtual duration) or :class:`Event` objects (wait until the
  event is triggered).  This is the SimPy-style model and is convenient for
  multi-step protocols such as DHT lookups or PBFT rounds.

The event queue is a binary heap ordered by ``(time, sequence)`` so that
events scheduled at the same instant fire in scheduling order, which keeps
runs fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


@dataclass(order=True)
class _ScheduledCall:
    """Internal heap entry: a callback to run at a virtual time."""

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: Tuple[Any, ...] = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        self.cancelled = True


class Event:
    """A one-shot event that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (optionally with a
    value) triggers it, resuming every process that was waiting on it.
    Triggering an event twice is an error.
    """

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, delivering ``value`` to all waiting processes."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.sim.schedule(0.0, process._resume, value)
        return self

    def add_waiter(self, process: "Process") -> None:
        """Register ``process`` to be resumed when the event triggers."""
        if self.triggered:
            self.sim.schedule(0.0, process._resume, self.value)
        else:
            self._waiters.append(process)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "triggered" if self.triggered else "pending"
        return f"Event({self.name!r}, {state})"


@dataclass
class Timeout:
    """Yielded by a process generator to sleep for ``delay`` virtual seconds."""

    delay: float
    value: Any = None


class Process:
    """A generator running as a cooperative simulation process.

    The wrapped generator may yield:

    * :class:`Timeout` — resume after the given virtual delay.
    * :class:`Event` — resume when the event triggers; the event's value is
      sent back into the generator.
    * ``Process`` — resume when the other process finishes; its return value
      is sent back.

    When the generator returns, :attr:`done` becomes an event triggered with
    the generator's return value.
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = Event(sim, name=f"{self.name}.done")
        self.alive = True

    def start(self) -> "Process":
        """Schedule the first step of the process at the current time."""
        self.sim.schedule(0.0, self._resume, None)
        return self

    def interrupt(self) -> None:
        """Stop the process; it will never be resumed again."""
        self.alive = False

    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        try:
            yielded = self.generator.send(value)
        except StopIteration as stop:
            self.alive = False
            if not self.done.triggered:
                self.done.succeed(getattr(stop, "value", None))
            return
        self._handle(yielded)

    def _handle(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self.sim.schedule(yielded.delay, self._resume, yielded.value)
        elif isinstance(yielded, Event):
            yielded.add_waiter(self)
        elif isinstance(yielded, Process):
            yielded.done.add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported object {yielded!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "alive" if self.alive else "finished"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """Heap-based discrete-event simulator with a virtual clock.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> handle = sim.schedule(5.0, fired.append, "hello")
    >>> sim.run()
    >>> sim.now, fired
    (5.0, ['hello'])
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._queue: List[_ScheduledCall] = []
        self._seq = itertools.count()
        self._processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> _ScheduledCall:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        entry = _ScheduledCall(self.now + delay, next(self._seq), callback, args)
        heapq.heappush(self._queue, entry)
        return entry

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> _ScheduledCall:
        """Schedule ``callback(*args)`` at the absolute virtual time ``time``."""
        return self.schedule(max(0.0, time - self.now), callback, *args)

    def event(self, name: str = "") -> Event:
        """Create a new pending :class:`Event` bound to this simulator."""
        return Event(self, name=name)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Run ``generator`` as a :class:`Process`, starting immediately."""
        return Process(self, generator, name=name).start()

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Convenience constructor for :class:`Timeout` (mirrors SimPy)."""
        return Timeout(delay, value)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next event.  Returns ``False`` if the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            if entry.time < self.now - 1e-12:
                raise SimulationError("event queue time went backwards")
            self.now = entry.time
            entry.callback(*entry.args)
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue empties, ``until`` is reached, or
        ``max_events`` have been processed.  Returns the number of events run.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        processed = 0
        try:
            while self._queue:
                if max_events is not None and processed >= max_events:
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    self.now = until
                    break
                self.step()
                processed += 1
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return processed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still in the queue."""
        return sum(1 for entry in self._queue if not entry.cancelled)

    @property
    def processed(self) -> int:
        """Number of events executed since construction."""
        return self._processed

    def drain(self) -> None:
        """Drop every pending event without running it."""
        self._queue.clear()

    def all_of(self, events: Iterable[Event], name: str = "all_of") -> Event:
        """Return an event that triggers once every event in ``events`` has."""
        events = list(events)
        combined = self.event(name=name)
        remaining = {"count": len(events)}
        if remaining["count"] == 0:
            combined.succeed([])
            return combined
        values: List[Any] = [None] * len(events)

        def _make_waiter(index: int) -> Callable[[Any], None]:
            def _on_trigger(value: Any) -> None:
                values[index] = value
                remaining["count"] -= 1
                if remaining["count"] == 0 and not combined.triggered:
                    combined.succeed(values)

            return _on_trigger

        for index, event in enumerate(events):
            _attach_callback(self, event, _make_waiter(index))
        return combined

    def any_of(self, events: Iterable[Event], name: str = "any_of") -> Event:
        """Return an event that triggers when the first of ``events`` does."""
        combined = self.event(name=name)

        def _on_trigger(value: Any) -> None:
            if not combined.triggered:
                combined.succeed(value)

        for event in events:
            _attach_callback(self, event, _on_trigger)
        return combined


def _attach_callback(sim: Simulator, event: Event, callback: Callable[[Any], None]) -> None:
    """Attach a plain callback to an event by wrapping it in a tiny process."""

    def _waiter() -> Generator:
        value = yield event
        callback(value)

    sim.spawn(_waiter(), name=f"waiter:{event.name}")
