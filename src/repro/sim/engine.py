"""Deterministic discrete-event simulation engine.

The engine provides two complementary programming models:

* **Callback scheduling** — ``sim.schedule(delay, fn, *args)`` runs ``fn`` at
  ``sim.now + delay``.  This is the cheapest way to express protocol timers
  and message deliveries.
* **Generator processes** — ``sim.spawn(generator)`` runs a Python generator
  as a cooperative process.  The generator yields :class:`Timeout` objects
  (sleep for a virtual duration) or :class:`Event` objects (wait until the
  event is triggered).  This is the SimPy-style model and is convenient for
  multi-step protocols such as DHT lookups or PBFT rounds.

Fast-path invariants
--------------------
The hot loop is tuned for throughput; every change must preserve these
invariants, which the determinism tests pin down:

* **Total order.** Entries execute in strict ``(time, seq)`` order, where
  ``seq`` is the global scheduling sequence number.  Events scheduled at the
  same instant therefore fire in scheduling order, which keeps runs fully
  deterministic for a given seed.
* **Two queues, one order.** Entries with a positive delay live in a binary
  heap; entries scheduled with ``delay == 0`` go to a FIFO *now-bucket*
  (``collections.deque``), making immediate events (event triggers, process
  resumes, zero-delay cascades) O(1) instead of O(log n).  The run loop
  merges both sources by comparing ``(time, seq)``, so the observable order
  is identical to a single heap.  All bucket entries carry ``time == now``:
  the clock never advances while the bucket is non-empty.
* **C-speed comparisons.** Heap entries are ``list`` subclasses laid out as
  ``[time, seq, callback, args, sim]`` so ``heapq`` compares them with the
  C list comparison (time first, then the unique ``seq`` — the callback is
  never compared).
* **O(1) accounting.** ``Simulator.pending`` is a live counter maintained by
  ``schedule``/``cancel``/the run loop — never a queue scan.  Cancellation
  sets the entry's callback slot to ``None``; the loop skips such entries
  when they surface.
"""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Interrupted",
    "INTERRUPTED",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
]


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


class _ScheduledCall(list):
    """Internal queue entry: ``[time, seq, callback, args, sim]``.

    Subclassing ``list`` keeps heap comparisons in C: entries order by
    ``time`` then by the unique ``seq``, so the callback slot is never
    reached by a comparison.  Cancellation clears the callback slot and
    immediately decrements the simulator's live-entry counter, making both
    :meth:`cancel` and :attr:`Simulator.pending` O(1).
    """

    __slots__ = ()

    @property
    def time(self) -> float:
        return self[0]

    @property
    def seq(self) -> int:
        return self[1]

    @property
    def callback(self) -> Optional[Callable[..., Any]]:
        return self[2]

    @property
    def args(self) -> tuple:
        return self[3]

    @property
    def cancelled(self) -> bool:
        return self[2] is None

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives (O(1))."""
        if self[2] is not None:
            self[2] = None
            self[3] = ()
            sim = self[4]
            if sim is not None:
                sim._live -= 1
                self[4] = None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self[2] is None else "pending"
        return f"_ScheduledCall(t={self[0]!r}, seq={self[1]!r}, {state})"


class Interrupted:
    """Sentinel delivered on a process's ``done`` event when interrupted."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return "INTERRUPTED"


#: Singleton sentinel value delivered by :meth:`Process.interrupt`.
INTERRUPTED = Interrupted()


class Event:
    """A one-shot event that processes (and plain callbacks) can wait on.

    An event starts *pending*; calling :meth:`succeed` (optionally with a
    value) triggers it, resuming every process that was waiting on it and
    scheduling every callback registered with :meth:`add_callback`.
    Triggering an event twice is an error.
    """

    __slots__ = ("sim", "name", "triggered", "value", "_waiters", "_callbacks")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []
        self._callbacks: List[Callable[[Any], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event, delivering ``value`` to all waiting processes."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self.triggered = True
        self.value = value
        schedule = self.sim.schedule
        waiters = self._waiters
        if waiters:
            self._waiters = []
            for process in waiters:
                schedule(0.0, process._resume, value)
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            for callback in callbacks:
                schedule(0.0, callback, value)
        return self

    def add_waiter(self, process: "Process") -> None:
        """Register ``process`` to be resumed when the event triggers."""
        if self.triggered:
            self.sim.schedule(0.0, process._resume, self.value)
        else:
            self._waiters.append(process)

    def add_callback(self, callback: Callable[[Any], None]) -> None:
        """Schedule ``callback(value)`` when the event triggers.

        This is the lightweight alternative to spawning a waiter process: a
        single zero-delay entry on the now-bucket, no generator machinery.
        """
        if self.triggered:
            self.sim.schedule(0.0, callback, self.value)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "triggered" if self.triggered else "pending"
        return f"Event({self.name!r}, {state})"


class Timeout:
    """Yielded by a process generator to sleep for ``delay`` virtual seconds."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        self.delay = delay
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Timeout({self.delay!r}, {self.value!r})"


class Process:
    """A generator running as a cooperative simulation process.

    The wrapped generator may yield:

    * :class:`Timeout` — resume after the given virtual delay.
    * :class:`Event` — resume when the event triggers; the event's value is
      sent back into the generator.
    * ``Process`` — resume when the other process finishes; its return value
      is sent back.

    When the generator returns, :attr:`done` becomes an event triggered with
    the generator's return value.  When the process is interrupted,
    :attr:`done` triggers with the :data:`INTERRUPTED` sentinel so that
    waiters (``all_of``/``any_of``/other processes) never hang.
    """

    __slots__ = ("sim", "generator", "name", "done", "alive")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.done = Event(sim, name=f"{self.name}.done")
        self.alive = True

    def start(self) -> "Process":
        """Schedule the first step of the process at the current time."""
        self.sim.schedule(0.0, self._resume, None)
        return self

    def interrupt(self) -> None:
        """Stop the process; it will never be resumed again.

        The ``done`` event triggers with :data:`INTERRUPTED` so that anything
        waiting on the process (joins, ``all_of`` groups) is released rather
        than hanging forever.
        """
        if not self.alive:
            return
        self.alive = False
        if not self.done.triggered:
            self.done.succeed(INTERRUPTED)

    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        try:
            yielded = self.generator.send(value)
        except StopIteration as stop:
            self.alive = False
            if not self.done.triggered:
                self.done.succeed(getattr(stop, "value", None))
            return
        self._handle(yielded)

    def _handle(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self.sim.schedule(yielded.delay, self._resume, yielded.value)
        elif isinstance(yielded, Event):
            yielded.add_waiter(self)
        elif isinstance(yielded, Process):
            yielded.done.add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported object {yielded!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "alive" if self.alive else "finished"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """Discrete-event simulator with a virtual clock.

    Entries are kept in a binary heap plus a FIFO now-bucket for zero-delay
    entries; see the module docstring for the fast-path invariants.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> handle = sim.schedule(5.0, fired.append, "hello")
    >>> sim.run()
    1
    >>> sim.now, fired
    (5.0, ['hello'])
    """

    __slots__ = ("now", "_queue", "_bucket", "_seq", "_live", "_processed", "_running")

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._queue: List[_ScheduledCall] = []
        self._bucket: Deque[_ScheduledCall] = deque()
        self._seq = 0
        self._live = 0
        self._processed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> _ScheduledCall:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay > 0:
            self._seq = seq = self._seq + 1
            entry = _ScheduledCall((self.now + delay, seq, callback, args, self))
            heappush(self._queue, entry)
        elif delay == 0:
            self._seq = seq = self._seq + 1
            entry = _ScheduledCall((self.now, seq, callback, args, self))
            self._bucket.append(entry)
        else:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._live += 1
        return entry

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> _ScheduledCall:
        """Schedule ``callback(*args)`` at the absolute virtual time ``time``."""
        return self.schedule(max(0.0, time - self.now), callback, *args)

    def event(self, name: str = "") -> Event:
        """Create a new pending :class:`Event` bound to this simulator."""
        return Event(self, name=name)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Run ``generator`` as a :class:`Process`, starting immediately."""
        return Process(self, generator, name=name).start()

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Convenience constructor for :class:`Timeout` (mirrors SimPy)."""
        return Timeout(delay, value)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _pop_next(self) -> Optional[_ScheduledCall]:
        """Pop the next entry in ``(time, seq)`` order across both queues."""
        queue = self._queue
        bucket = self._bucket
        if bucket:
            if queue:
                head = queue[0]
                b = bucket[0]
                if head[0] > b[0] or (head[0] == b[0] and head[1] > b[1]):
                    return bucket.popleft()
                return heappop(queue)
            return bucket.popleft()
        if queue:
            return heappop(queue)
        return None

    def _peek_next(self) -> Optional[_ScheduledCall]:
        """The next live entry without popping it (cancelled ones are popped)."""
        queue = self._queue
        bucket = self._bucket
        while queue or bucket:
            if bucket:
                if queue:
                    head = queue[0]
                    b = bucket[0]
                    if head[0] > b[0] or (head[0] == b[0] and head[1] > b[1]):
                        nxt, from_bucket = b, True
                    else:
                        nxt, from_bucket = head, False
                else:
                    nxt, from_bucket = bucket[0], True
            else:
                nxt, from_bucket = queue[0], False
            if nxt[2] is not None:
                return nxt
            if from_bucket:
                bucket.popleft()
            else:
                heappop(queue)
        return None

    def step(self) -> bool:
        """Run the single next event.  Returns ``False`` if nothing is queued."""
        while True:
            entry = self._pop_next()
            if entry is None:
                return False
            callback = entry[2]
            if callback is None:
                continue
            if entry[0] < self.now - 1e-12:
                raise SimulationError("event queue time went backwards")
            self.now = entry[0]
            self._live -= 1
            callback(*entry[3])
            self._processed += 1
            return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue empties, ``until`` is reached, or
        ``max_events`` have been processed.  Returns the number of events run.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        processed = 0
        queue = self._queue
        bucket = self._bucket
        pop = heappop
        popleft = bucket.popleft
        try:
            if until is None and max_events is None:
                # Fast path: no horizon, no cap — the tight loop the
                # benchmarks measure.  Merged (time, seq) pop inlined.
                while True:
                    if bucket:
                        if queue:
                            head = queue[0]
                            b = bucket[0]
                            if head[0] > b[0] or (head[0] == b[0] and head[1] > b[1]):
                                entry = popleft()
                            else:
                                entry = pop(queue)
                        else:
                            entry = popleft()
                    elif queue:
                        entry = pop(queue)
                    else:
                        break
                    callback = entry[2]
                    if callback is None:
                        continue
                    self.now = entry[0]
                    self._live -= 1
                    callback(*entry[3])
                    processed += 1
            else:
                while True:
                    if max_events is not None and processed >= max_events:
                        break
                    nxt = self._peek_next()
                    if nxt is None:
                        # Queue exhausted: the clock still advances to the
                        # requested horizon.
                        if until is not None and until > self.now:
                            self.now = until
                        break
                    if until is not None and nxt[0] > until:
                        self.now = until
                        break
                    entry = self._pop_next()
                    if entry is None:  # unreachable: _peek_next saw one
                        break
                    self.now = entry[0]
                    # Decrement before invoking: a raising callback must not
                    # leave its (already popped) entry counted as pending.
                    self._live -= 1
                    entry[2](*entry[3])
                    processed += 1
        finally:
            self._processed += processed
            self._running = False
        return processed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live

    @property
    def processed(self) -> int:
        """Number of events executed since construction."""
        return self._processed

    def drain(self) -> None:
        """Drop every pending event without running it."""
        for entry in self._queue:
            entry[2] = None
            entry[3] = ()
            entry[4] = None
        for entry in self._bucket:
            entry[2] = None
            entry[3] = ()
            entry[4] = None
        self._queue.clear()
        self._bucket.clear()
        self._live = 0

    def all_of(self, events: Iterable[Event], name: str = "all_of") -> Event:
        """Return an event that triggers once every event in ``events`` has."""
        events = list(events)
        combined = self.event(name=name)
        count = len(events)
        if count == 0:
            combined.succeed([])
            return combined
        remaining = [count]
        values: List[Any] = [None] * count

        def _make_callback(index: int) -> Callable[[Any], None]:
            def _on_trigger(value: Any) -> None:
                values[index] = value
                remaining[0] -= 1
                if remaining[0] == 0 and not combined.triggered:
                    combined.succeed(values)

            return _on_trigger

        for index, event in enumerate(events):
            event.add_callback(_make_callback(index))
        return combined

    def any_of(self, events: Iterable[Event], name: str = "any_of") -> Event:
        """Return an event that triggers when the first of ``events`` does."""
        combined = self.event(name=name)

        def _on_trigger(value: Any) -> None:
            if not combined.triggered:
                combined.succeed(value)

        for event in events:
            event.add_callback(_on_trigger)
        return combined


def _attach_callback(sim: Simulator, event: Event, callback: Callable[[Any], None]) -> None:
    """Attach a plain callback to an event (kept for back-compat)."""
    event.add_callback(callback)
