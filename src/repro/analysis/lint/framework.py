"""reprolint core: sources, findings, suppressions, the lint driver.

The framework is deliberately small: a *rule* is an object with a stable
``RLxxx`` code, explain/fix-it text, and a ``check(src, config)`` generator
of :class:`Finding` s; the driver parses each file once into a
:class:`ModuleSource` (AST + import map + suppression table) and hands it to
every rule whose configured zone covers the file's module.  Everything a
rule needs — resolved qualified names, per-line suppressions, the module
name — is precomputed here so rules stay ~50 lines of AST matching.

Suppressions
------------
A finding is silenced by an inline comment on the same line (or on a
comment-only line directly above)::

    started = time.monotonic()  # reprolint: ok RL002 (supervision timer, never feeds results)

The parenthesised reason is mandatory: a ``reprolint:`` directive without
one (or one that is not ``ok CODE[,CODE...] (reason)``) is itself reported
as :data:`META_CODE` and cannot be suppressed.  Suppressed findings stay in
the report (``suppressed: true`` in JSON) so the contract's exception list
is always visible; only *unsuppressed* findings fail the run.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.lint.config import LintConfig, rule_applies

#: Code of the meta-rule for malformed suppression directives.
META_CODE = "RL000"

_DIRECTIVE_RE = re.compile(r"#\s*reprolint\s*:\s*(.*)$")
_OK_RE = re.compile(
    r"^ok\s+(?P<codes>RL\d{3}(?:\s*,\s*RL\d{3})*)\s*"
    r"(?:\((?P<reason>[^)]*)\))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation (or suppressed exception) at a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int
    module: str
    suppressed: bool = False
    reason: str = ""

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "module": self.module,
            "suppressed": self.suppressed,
        }
        if self.reason:
            data["reason"] = self.reason
        return data

    def render(self) -> str:
        mark = " [suppressed: " + self.reason + "]" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}{mark}"


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# reprolint: ok ...`` directive."""

    line: int
    codes: Tuple[str, ...]
    reason: str


@dataclass
class ModuleSource:
    """One parsed file plus everything rules need to inspect it."""

    path: Path
    rel_path: str
    module: str
    text: str
    tree: ast.Module
    #: local name -> fully qualified dotted origin ("np" -> "numpy",
    #: "monotonic" -> "time.monotonic").
    imports: Dict[str, str] = field(default_factory=dict)
    #: physical line -> suppression active on that line.
    suppressions: Dict[int, Suppression] = field(default_factory=dict)
    #: malformed-directive findings produced while parsing comments.
    directive_findings: List[Finding] = field(default_factory=list)

    def resolve(self, node: ast.AST) -> Optional[str]:
        """The dotted qualified name of a Name/Attribute chain, if any.

        Resolution goes through the import map, so ``np.random.seed``
        resolves to ``numpy.random.seed`` and a bare ``monotonic`` imported
        ``from time import monotonic`` resolves to ``time.monotonic``.
        Names bound locally (no import) resolve to themselves.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


def module_name(path: Path, root: Path) -> str:
    """Dotted module name of ``path`` relative to the source ``root``."""
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = Path(path.name)
    parts = list(rel.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _build_imports(tree: ast.Module) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative import: stays package-local
                continue
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


def _parse_directives(
    text: str, rel_path: str, module: str
) -> Tuple[Dict[int, Suppression], List[Finding]]:
    """Extract suppression directives (and malformed-directive findings).

    Comments are read with :mod:`tokenize` so a ``#`` inside a string can
    never be mistaken for a directive.  A directive on a comment-only line
    covers the next code line; a trailing directive covers its own line.
    """
    suppressions: Dict[int, Suppression] = {}
    findings: List[Finding] = []
    pending: List[Tuple[int, Suppression]] = []  # comment-only lines
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions, findings

    code_lines = set()
    comments: List[Tuple[int, int, str]] = []  # (line, col, comment text)
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            comments.append((tok.start[0], tok.start[1], tok.string))
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
            tokenize.ENCODING,
        ):
            code_lines.add(tok.start[0])

    for line, col, comment in comments:
        match = _DIRECTIVE_RE.search(comment)
        if match is None:
            continue
        body = match.group(1).strip()
        ok = _OK_RE.match(body)
        if ok is None:
            findings.append(Finding(
                code=META_CODE,
                message=(
                    f"malformed reprolint directive {body!r} — expected "
                    "'reprolint: ok RLxxx[,RLyyy] (reason)'"
                ),
                path=rel_path, line=line, col=col, module=module,
            ))
            continue
        reason = (ok.group("reason") or "").strip()
        if not reason:
            findings.append(Finding(
                code=META_CODE,
                message=(
                    "suppression without a reason — every 'reprolint: ok' "
                    "must justify itself: '# reprolint: ok "
                    f"{ok.group('codes')} (why this is safe)'"
                ),
                path=rel_path, line=line, col=col, module=module,
            ))
            continue
        codes = tuple(
            code.strip() for code in ok.group("codes").split(",") if code.strip()
        )
        entry = Suppression(line=line, codes=codes, reason=reason)
        if line in code_lines:
            suppressions[line] = entry
        else:
            pending.append((line, entry))

    # Comment-only directives cover the next code line after them.
    for line, entry in pending:
        target = min((cl for cl in code_lines if cl > line), default=0)
        if target:
            suppressions.setdefault(target, entry)
    return suppressions, findings


def load_source(path: Path, root: Path) -> ModuleSource:
    """Parse one file into a :class:`ModuleSource` (raises SyntaxError)."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    module = module_name(path, root)
    try:
        rel_path = str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        rel_path = str(path)
    suppressions, directive_findings = _parse_directives(text, rel_path, module)
    return ModuleSource(
        path=path,
        rel_path=rel_path,
        module=module,
        text=text,
        tree=tree,
        imports=_build_imports(tree),
        suppressions=suppressions,
        directive_findings=directive_findings,
    )


class Rule:
    """Base class for lint rules.

    Subclasses define the class attributes and implement :meth:`check`.
    ``rationale`` is the long-form ``--explain`` text; ``fixit`` the
    one-line remediation appended to every finding message.
    """

    code: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""
    fixit: str = ""

    def check(self, src: ModuleSource, config: LintConfig) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, src: ModuleSource, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=self.code,
            message=f"{message} — {self.fixit}" if self.fixit else message,
            path=src.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            module=src.module,
        )


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, files and directories alike.

    Deterministic order: directories are walked sorted by path string.
    """
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"), key=str)
        elif path.suffix == ".py":
            yield path


def lint_sources(
    sources: Iterable[ModuleSource],
    rules: Iterable[Rule],
    config: LintConfig,
) -> List[Finding]:
    """Run every applicable rule over every source; apply suppressions."""
    rules = list(rules)
    findings: List[Finding] = []
    for src in sources:
        findings.extend(src.directive_findings)
        for rule in rules:
            if not rule_applies(config, rule.code, src.module):
                continue
            for finding in rule.check(src, config):
                entry = src.suppressions.get(finding.line)
                if entry is not None and finding.code in entry.codes:
                    finding = Finding(
                        code=finding.code, message=finding.message,
                        path=finding.path, line=finding.line, col=finding.col,
                        module=finding.module, suppressed=True,
                        reason=entry.reason,
                    )
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_paths(
    paths: Iterable[Path],
    rules: Iterable[Rule],
    config: LintConfig,
    root: Path,
) -> Tuple[List[Finding], int]:
    """Lint every Python file under ``paths``; returns (findings, n_files).

    Unparseable files surface as a :data:`META_CODE` finding rather than an
    exception — a syntax error in the tree should fail the lint, not crash
    it.
    """
    sources: List[ModuleSource] = []
    extra: List[Finding] = []
    count = 0
    for path in iter_python_files(paths):
        count += 1
        try:
            sources.append(load_source(path, root))
        except SyntaxError as error:
            extra.append(Finding(
                code=META_CODE,
                message=f"file does not parse: {error.msg}",
                path=str(path), line=error.lineno or 1, col=0,
                module=module_name(path, root),
            ))
    findings = lint_sources(sources, rules, config)
    findings.extend(extra)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, count
