"""reprolint — AST-based determinism & purity analysis for the repro stack.

Every guarantee this reproduction makes — byte-identical goldens,
spec-hash resume, retry-safe fault recovery — rests on a determinism
contract: results are a pure function of ``(spec, seed)``.  This package
enforces that contract mechanically instead of by review vigilance.  The
rules (each with a stable ``RLxxx`` code, ``--explain`` rationale and
fix-it):

* **RL001** builtin ``hash()`` anywhere (per-process salted — the
  historical ``SeededRNG.fork`` bug).
* **RL002** wall-clock reads inside simulation-semantics modules
  (supervision/runstore zones are allowlisted by config).
* **RL003** module-global or unseeded RNG outside ``SeededRNG`` /
  ``vecstate``.
* **RL004** order-sensitive iteration over sets (require ``sorted()``).
* **RL005** environment/platform reads inside unit-job execution paths.
* **RL006** ``ScenarioSpec`` serialized-form discipline (new fields must
  conditional-emit or be registered observational).

Run it as ``repro-lint`` (console script), ``python -m
repro.analysis.lint`` or ``make lint``.  Exit codes: 0 clean / 1 findings
/ 2 usage.  Line-level exceptions need a reasoned inline suppression::

    value = time.time()  # reprolint: ok RL002 (reason it cannot feed results)
"""

from repro.analysis.lint.config import (
    LintConfig,
    ZoneConfig,
    default_config,
    load_config,
)
from repro.analysis.lint.framework import (
    Finding,
    ModuleSource,
    Rule,
    lint_paths,
    lint_sources,
    load_source,
)
from repro.analysis.lint.rules import ALL_RULES, RULES_BY_CODE, rule_for
from repro.analysis.lint.cli import main

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintConfig",
    "ModuleSource",
    "Rule",
    "RULES_BY_CODE",
    "ZoneConfig",
    "default_config",
    "lint_paths",
    "lint_sources",
    "load_config",
    "load_source",
    "main",
    "rule_for",
]
