"""reprolint configuration: per-rule zones and the repo's default contract.

A *zone* is the set of modules a rule applies to, expressed as dotted
module patterns.  A pattern matches the module itself and every submodule
(``repro.sim`` covers ``repro.sim.engine``); ``fnmatch`` wildcards are also
honoured (``repro.*.adapters``).  Each rule carries an ``apply`` zone and
an ``allow`` zone — modules inside ``apply`` but also inside ``allow`` are
exempt wholesale, which is how supervision (`repro.scenarios.execution`)
and the run store (`repro.analysis.runstore`) keep their wall clocks: their
timers and timestamps never feed simulation results, so RL002 does not
police them.  Line-level exceptions inside a policed module use inline
``# reprolint: ok`` suppressions instead (see :mod:`.framework`).

The default configuration below *is* the repo's determinism contract;
``repro-lint --config FILE`` can override zones per rule from a small JSON
document (``{"RL002": {"apply": [...], "allow": [...]}}``) which is what
the test suite uses to exercise allowlisting.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, Mapping, Tuple

#: Modules with *simulation semantics*: anything here executes inside the
#: virtual-time world whose outputs are hashed, goldened and diffed.
SIM_SEMANTICS_ZONE: Tuple[str, ...] = (
    "repro.sim",
    "repro.p2p",
    "repro.blockchain",
    "repro.consensus",
    "repro.edge",
    "repro.permissioned",
    "repro.economics",
    "repro.workloads",
    "repro.core",
    "repro.scenarios.adapters",
    "repro.scenarios.runner",
)


@dataclass(frozen=True)
class ZoneConfig:
    """Where one rule applies: ``apply`` minus ``allow``."""

    apply: Tuple[str, ...] = ()
    allow: Tuple[str, ...] = ()


@dataclass(frozen=True)
class LintConfig:
    """The full lint configuration (zones plus RL006's spec knobs)."""

    zones: Mapping[str, ZoneConfig] = field(default_factory=dict)
    #: RL006: module/class holding the scenario spec dataclass.
    spec_module: str = "repro.scenarios.spec"
    spec_class: str = "ScenarioSpec"
    #: RL006: the spec fields whose unconditional emission defines the
    #: frozen serialized form every recorded spec hash was derived from.
    #: Frozen on purpose — extending this list IS the hash-breaking act
    #: the rule exists to catch; new fields must conditional-emit or be
    #: registered observational instead.
    baseline_spec_fields: Tuple[str, ...] = (
        "name", "family", "description", "claim", "architecture",
        "topology", "churn", "workload", "duration", "seed", "replicates",
        "sweeps", "variants",
    )
    #: RL006: where OBSERVATIONAL_SPEC_KEYS lives (module + symbol).
    observational_keys_module: str = "repro.analysis.diff"
    observational_keys_name: str = "OBSERVATIONAL_SPEC_KEYS"


def _match(module: str, pattern: str) -> bool:
    if module == pattern or module.startswith(pattern + "."):
        return True
    return fnmatchcase(module, pattern)


def module_in(module: str, patterns: Tuple[str, ...]) -> bool:
    """Whether ``module`` falls inside any of the zone ``patterns``."""
    return any(_match(module, pattern) for pattern in patterns)


def rule_applies(config: LintConfig, code: str, module: str) -> bool:
    """Whether the rule ``code`` polices ``module`` under ``config``."""
    zone = config.zones.get(code)
    if zone is None:
        return False
    if not module_in(module, zone.apply):
        return False
    return not module_in(module, zone.allow)


def default_config() -> LintConfig:
    """The repo's determinism contract (see the module docstring)."""
    return LintConfig(zones={
        # Builtin hash() is salted per process (PYTHONHASHSEED): any value
        # derived from it differs across runs.  Banned package-wide — the
        # linter itself included.
        "RL001": ZoneConfig(apply=("repro",)),
        # Wall-clock reads are banned wherever results are computed.
        # Supervision timers, run-store timestamps, the fault harness and
        # the distributed transport (lease deadlines, heartbeats) are
        # allowlisted: their clocks decide *when* to retry or *what* to
        # label a saved run, never what a metric is worth.
        "RL002": ZoneConfig(
            apply=("repro",),
            allow=(
                "repro.scenarios.execution",
                "repro.scenarios.faults",
                "repro.analysis.runstore",
                "repro.distributed",
            ),
        ),
        # Global/module-level RNG bypasses SeededRNG seed-pinning; only the
        # RNG wrapper itself and the counter-based vectorized substrate may
        # touch primitive generators.
        "RL003": ZoneConfig(
            apply=("repro",),
            allow=("repro.sim.rng", "repro.sim.vecstate"),
        ),
        # Set iteration order is unspecified; anywhere a loop body draws
        # randomness, schedules events or builds output, it must be sorted.
        "RL004": ZoneConfig(apply=("repro",)),
        # Environment/platform reads inside unit-job execution paths break
        # spec-hash purity (the same (spec, seed) must mean the same run on
        # every host).  Zone covers the simulation world plus the execution
        # layer; the fault-injection env hook carries inline suppressions.
        "RL005": ZoneConfig(
            apply=SIM_SEMANTICS_ZONE + (
                "repro.scenarios.execution",
                "repro.scenarios.spec",
                "repro.analysis.runstore",
            ),
            # The fault harness IS an env-var transport by design:
            # REPRO_FAULT_PLAN must reach pool workers through the
            # environment, and the plan only ever *injects failures*
            # (which are retried or manifested), never metric values.
            allow=("repro.scenarios.faults",),
        ),
        # ScenarioSpec serialized-form discipline (see rules.RuleSpecFields).
        "RL006": ZoneConfig(apply=("repro.scenarios.spec",)),
    })


def load_config(path: Path, base: LintConfig) -> LintConfig:
    """Overlay zone overrides from a JSON file onto ``base``.

    The document maps rule codes to ``{"apply": [...], "allow": [...]}``;
    omitted rules keep their defaults, an omitted key keeps that half.
    Top-level ``spec_module``/``spec_class``/``baseline_spec_fields``/
    ``observational_keys_module``/``observational_keys_name`` may also be
    overridden (used by the test fixtures).
    """
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise ValueError("lint config must be a JSON object")
    zones = dict(base.zones)
    scalars: Dict[str, object] = {}
    for key, value in data.items():
        if key in ("spec_module", "spec_class", "observational_keys_module",
                   "observational_keys_name"):
            scalars[key] = str(value)
            continue
        if key == "baseline_spec_fields":
            scalars[key] = tuple(str(v) for v in value)
            continue
        if not isinstance(value, dict):
            raise ValueError(f"zone override for {key!r} must be an object")
        current = zones.get(key, ZoneConfig())
        zones[key] = ZoneConfig(
            apply=tuple(str(p) for p in value.get("apply", current.apply)),
            allow=tuple(str(p) for p in value.get("allow", current.allow)),
        )
    return replace(base, zones=zones, **scalars)  # type: ignore[arg-type]
