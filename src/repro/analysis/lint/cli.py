"""The ``repro-lint`` command line.

Usage::

    repro-lint                      # lint the installed repro package
    repro-lint src/repro tests      # lint explicit paths
    repro-lint --json -             # machine-readable report on stdout
    repro-lint --explain RL001      # why a rule exists + how to fix it
    repro-lint --list-rules         # one line per registered rule
    repro-lint --config zones.json  # override per-rule zones

Exit codes follow the repo convention: **0** clean (suppressed findings
are allowed — they are the contract's documented exceptions), **1** at
least one unsuppressed finding, **2** usage error (unknown rule code,
missing path, bad config).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.lint.config import LintConfig, default_config, load_config
from repro.analysis.lint.framework import Finding, lint_paths
from repro.analysis.lint.rules import ALL_RULES, RULES_BY_CODE

EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2

JSON_VERSION = "reprolint/v1"


def _default_target() -> Path:
    """The installed ``repro`` package source tree."""
    import repro

    return Path(repro.__file__).resolve().parent


def _source_root(target: Path) -> Path:
    """The directory module names are computed relative to.

    For the default target this is the ``src`` directory containing the
    ``repro`` package; for explicit paths, the nearest ancestor whose name
    is not a package (no ``__init__.py``).
    """
    candidate = target if target.is_dir() else target.parent
    while (candidate / "__init__.py").is_file():
        candidate = candidate.parent
    return candidate


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based determinism & purity linter for the repro stack "
            "(the rules are the repo's determinism contract)"
        ),
        epilog=__doc__.split("Usage::", 1)[-1],
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--json", metavar="FILE", dest="json_out",
        help="write the JSON report to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--explain", metavar="CODE",
        help="print a rule's rationale, fix-it and suppression policy",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every registered rule code with its summary",
    )
    parser.add_argument(
        "--config", metavar="FILE", type=Path,
        help="JSON zone overrides layered over the built-in contract",
    )
    parser.add_argument(
        "--root", metavar="DIR", type=Path,
        help="source root for module naming (default: inferred)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the human report (exit code + --json only)",
    )
    return parser


def _explain(code: str) -> int:
    rule = RULES_BY_CODE.get(code)
    if rule is None:
        print(
            f"error: unknown rule code {code!r}; known: "
            + ", ".join(sorted(RULES_BY_CODE)),
            file=sys.stderr,
        )
        return EXIT_USAGE
    print(f"{rule.code} [{rule.name}] — {rule.summary}")
    print()
    print(rule.rationale)
    print()
    print(f"Fix: {rule.fixit}.")
    print(
        "Suppress (only with a real justification): append\n"
        f"  # reprolint: ok {rule.code} (reason)\n"
        "to the offending line; reasonless suppressions are themselves "
        "findings (RL000)."
    )
    return EXIT_OK


def _list_rules() -> int:
    for rule in ALL_RULES:
        print(f"{rule.code}  {rule.name:<22} {rule.summary}")
    return EXIT_OK


def _report_json(findings: List[Finding], files: int, clean: bool) -> str:
    by_code: dict = {}
    for finding in findings:
        entry = by_code.setdefault(
            finding.code, {"total": 0, "suppressed": 0}
        )
        entry["total"] += 1
        if finding.suppressed:
            entry["suppressed"] += 1
    payload = {
        "version": JSON_VERSION,
        "files": files,
        "clean": clean,
        "counts": {
            "total": len(findings),
            "suppressed": sum(1 for f in findings if f.suppressed),
            "unsuppressed": sum(1 for f in findings if not f.suppressed),
            "by_code": {code: by_code[code] for code in sorted(by_code)},
        },
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.explain:
        return _explain(args.explain)
    if args.list_rules:
        return _list_rules()

    config: LintConfig = default_config()
    if args.config is not None:
        if not args.config.is_file():
            print(f"error: config file not found: {args.config}",
                  file=sys.stderr)
            return EXIT_USAGE
        try:
            config = load_config(args.config, config)
        except (ValueError, json.JSONDecodeError) as error:
            print(f"error: bad lint config: {error}", file=sys.stderr)
            return EXIT_USAGE

    paths = list(args.paths) or [_default_target()]
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return EXIT_USAGE
    root = args.root if args.root is not None else _source_root(paths[0])

    findings, files = lint_paths(paths, ALL_RULES, config, root)
    unsuppressed = [f for f in findings if not f.suppressed]
    clean = not unsuppressed

    if not args.quiet:
        for finding in findings:
            print(finding.render())
        suppressed = len(findings) - len(unsuppressed)
        print(
            f"reprolint: {files} file(s), {len(unsuppressed)} finding(s)"
            + (f", {suppressed} suppressed exception(s)" if suppressed else "")
            + (" — clean" if clean else "")
        )
    if args.json_out:
        text = _report_json(findings, files, clean)
        if args.json_out == "-":
            print(text)
        else:
            Path(args.json_out).write_text(text + "\n", encoding="utf-8")

    return EXIT_OK if clean else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
