"""The reprolint rule set: the determinism contract, one rule per clause.

Every rule has a stable code (``RL001``...), a one-line ``summary``, the
long ``rationale`` shown by ``repro-lint --explain``, and a ``fixit``
appended to each finding.  Codes are append-only: a retired rule keeps its
number so old suppression comments never silently re-target a new rule.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.lint.config import LintConfig
from repro.analysis.lint.framework import Finding, ModuleSource, Rule

__all__ = ["ALL_RULES", "RULES_BY_CODE", "rule_for"]


# ----------------------------------------------------------------------
# RL001 — builtin hash()
# ----------------------------------------------------------------------
class RuleBuiltinHash(Rule):
    code = "RL001"
    name = "builtin-hash"
    summary = "builtin hash() feeds a value that must be process-stable"
    fixit = (
        "derive digests with hashlib (sha256/blake2b) or "
        "repro.sim.vecstate.stream_key"
    )
    rationale = (
        "Builtin hash() is salted per interpreter process (PYTHONHASHSEED):\n"
        "hash('a') differs between two runs of the same fixed-seed\n"
        "experiment.  Any value derived from it — child RNG seeds, spec\n"
        "hashes, cache keys that feed draw streams — silently varies across\n"
        "processes, which is exactly the PR 2 bug: SeededRNG.fork derived\n"
        "child seeds from hash((seed, label)), so 'fixed-seed' runs\n"
        "disagreed between hosts.  The contract bans builtin hash()\n"
        "package-wide; use a content hash (hashlib.sha256/blake2b) or the\n"
        "splitmix64 stream keys in repro.sim.vecstate instead.  There is no\n"
        "legitimate use in this codebase, so suppressions should be rare\n"
        "and well argued."
    )

    def check(self, src: ModuleSource, config: LintConfig) -> Iterator[Finding]:
        if "hash" in src.imports:  # locally rebound: not the builtin
            return
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield self.finding(
                    src, node,
                    "builtin hash() is per-process salted (PYTHONHASHSEED); "
                    "the result is not stable across runs",
                )


# ----------------------------------------------------------------------
# RL002 — wall-clock reads in simulation semantics
# ----------------------------------------------------------------------
#: Qualified names whose value depends on the host's wall clock.
WALL_CLOCK_READS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


class RuleWallClock(Rule):
    code = "RL002"
    name = "wall-clock"
    summary = "wall-clock read inside a simulation-semantics module"
    fixit = (
        "derive time from Simulator.now (virtual clock) or thread it in as "
        "data; wall clocks belong to the supervision/runstore allowlist"
    )
    rationale = (
        "Simulation results must be a pure function of (spec, seed).  A\n"
        "wall-clock read (time.time/monotonic/perf_counter, datetime.now)\n"
        "inside the simulated world couples metrics to host speed and run\n"
        "scheduling, breaking byte-identical goldens and spec-hash resume.\n"
        "Simulation code gets time from the virtual clock (Simulator.now).\n"
        "Supervision timers (retry backoff budgets, hung-worker watchdogs\n"
        "in repro.scenarios.execution) and run-store bookkeeping (gc age\n"
        "cutoff, saved_at stamps in repro.analysis.runstore) legitimately\n"
        "read wall clocks — those modules are allowlisted by config because\n"
        "their clocks decide when to retry or how to label a run, never\n"
        "what a metric is worth."
    )

    def check(self, src: ModuleSource, config: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            qualname = src.resolve(node)
            if qualname in WALL_CLOCK_READS:
                yield self.finding(
                    src, node,
                    f"wall-clock read {qualname}() in simulation-semantics "
                    f"module {src.module}",
                )


# ----------------------------------------------------------------------
# RL003 — global / module-level RNG
# ----------------------------------------------------------------------
#: Draw/seed functions of the stdlib ``random`` module's hidden global.
STDLIB_GLOBAL_RNG = frozenset({
    "random." + name for name in (
        "random", "uniform", "randint", "randrange", "getrandbits",
        "randbytes", "choice", "choices", "sample", "shuffle", "seed",
        "gauss", "normalvariate", "lognormvariate", "expovariate",
        "paretovariate", "weibullvariate", "betavariate", "gammavariate",
        "triangular", "vonmisesvariate", "binomialvariate",
    )
})

#: Module-global numpy RNG functions (legacy np.random.* API).
NUMPY_GLOBAL_RNG = frozenset({
    "numpy.random." + name for name in (
        "seed", "random", "rand", "randn", "randint", "random_sample",
        "random_integers", "ranf", "sample", "bytes", "choice", "shuffle",
        "permutation", "uniform", "normal", "standard_normal",
        "exponential", "poisson", "pareto", "weibull", "lognormal",
        "binomial", "beta", "gamma", "zipf", "get_state", "set_state",
    )
})

#: Constructors that are only deterministic when given an explicit seed.
SEED_REQUIRED_CTORS = frozenset({
    "random.Random", "numpy.random.default_rng", "numpy.random.RandomState",
    "numpy.random.SeedSequence",
})


class RuleGlobalRNG(Rule):
    code = "RL003"
    name = "global-rng"
    summary = "module-global or unseeded RNG outside the seeded substrate"
    fixit = (
        "draw from a SeededRNG (fork a labelled child stream) or the "
        "counter-based repro.sim.vecstate hashes"
    )
    rationale = (
        "random.random()/np.random.*() draw from a hidden module-global\n"
        "generator: any consumer anywhere in the process perturbs every\n"
        "other consumer's stream, and an unseeded default_rng()/Random()\n"
        "seeds itself from the OS.  Either way the draw order is not a\n"
        "function of the experiment's seed, so fixed-seed runs diverge.\n"
        "All randomness flows from repro.sim.rng.SeededRNG (fork labelled\n"
        "child streams so new consumers never perturb existing ones) or,\n"
        "on the vectorized fast path, from the counter-based splitmix64\n"
        "hashes in repro.sim.vecstate — both modules are the rule's only\n"
        "allowlisted implementations."
    )

    def check(self, src: ModuleSource, config: LintConfig) -> Iterator[Finding]:
        reported: Set[Tuple[int, int]] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                qualname = src.resolve(node.func)
                if qualname in SEED_REQUIRED_CTORS and not (
                    node.args or node.keywords
                ):
                    key = (node.lineno, node.col_offset)
                    if key not in reported:
                        reported.add(key)
                        yield self.finding(
                            src, node,
                            f"unseeded {qualname}() self-seeds from the OS; "
                            "fixed-seed runs will differ",
                        )
                    continue
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            qualname = src.resolve(node)
            if qualname in STDLIB_GLOBAL_RNG or qualname in NUMPY_GLOBAL_RNG:
                key = (node.lineno, node.col_offset)
                if key in reported:
                    continue
                reported.add(key)
                yield self.finding(
                    src, node,
                    f"{qualname} draws from the process-global generator, "
                    "not from the experiment seed",
                )


# ----------------------------------------------------------------------
# RL004 — iteration over sets where order matters
# ----------------------------------------------------------------------
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})


def _is_set_expr(node: ast.AST, set_names: Set[str], src: ModuleSource) -> bool:
    """Whether ``node`` is statically certain to evaluate to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset") and \
                    node.func.id not in src.imports:
                return True
        if isinstance(node.func, ast.Attribute) and \
                node.func.attr in _SET_METHODS:
            return _is_set_expr(node.func.value, set_names, src)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return (
            _is_set_expr(node.left, set_names, src)
            or _is_set_expr(node.right, set_names, src)
        )
    if isinstance(node, ast.Name):
        return node.id in set_names
    return False


def _builds_output(body: List[ast.stmt]) -> bool:
    """Whether a loop body does anything order-sensitive.

    Heuristic on the conservative side: any call (could schedule events or
    draw randomness), yield, or store into a container counts.  A body that
    only, say, sets flags on loop variables escapes — and can be suppressed
    back in if it ever matters.
    """
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Call, ast.Yield, ast.YieldFrom,
                                 ast.Await, ast.AugAssign)):
                return True
            if isinstance(node, ast.Assign) and any(
                isinstance(t, (ast.Subscript, ast.Attribute))
                for t in node.targets
            ):
                return True
    return False


class _SetIterVisitor(ast.NodeVisitor):
    """Per-scope tracking of set-valued locals + set-iteration findings."""

    def __init__(self, rule: "RuleSetIteration", src: ModuleSource) -> None:
        self.rule = rule
        self.src = src
        self.findings: List[Finding] = []
        self._scopes: List[Set[str]] = [set()]

    @property
    def set_names(self) -> Set[str]:
        return self._scopes[-1]

    # -- scope handling -------------------------------------------------
    def _visit_scope(self, node: ast.AST) -> None:
        self._scopes.append(set())
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_scope(node)

    # -- assignment tracking --------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = _is_set_expr(node.value, self.set_names, self.src)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self.set_names.add(target.id)
                else:
                    self.set_names.discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            if _is_set_expr(node.value, self.set_names, self.src):
                self.set_names.add(node.target.id)
            else:
                self.set_names.discard(node.target.id)
        self.generic_visit(node)

    # -- the actual checks ----------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter, self.set_names, self.src) and \
                _builds_output(node.body):
            self.findings.append(self.rule.finding(
                self.src, node.iter,
                "loop over a set: iteration order is unspecified and the "
                "body is order-sensitive",
            ))
        self.generic_visit(node)

    def _check_comprehension(
        self, node: ast.AST, generators: List[ast.comprehension]
    ) -> None:
        for gen in generators:
            if _is_set_expr(gen.iter, self.set_names, self.src):
                self.findings.append(self.rule.finding(
                    self.src, gen.iter,
                    "comprehension over a set builds ordered output from "
                    "unspecified iteration order",
                ))

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, node.generators)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, node.generators)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        # A generator feeding sorted()/min()/max()/sum()/any()/all()/len()
        # or a set/frozenset constructor is order-insensitive by nature;
        # everything else (join, list(...), direct iteration) is not.  The
        # parent is not reachable from here, so stay conservative and only
        # flag when the generator is somebody's direct iterable — handled
        # by visit_For/visit_Call below.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # list(<set>) / tuple(<set>) materialize unspecified order into
        # ordered output.  sorted(<set>) is the fix, so it passes.
        if isinstance(node.func, ast.Name) and \
                node.func.id in ("list", "tuple") and \
                node.func.id not in self.src.imports and \
                len(node.args) == 1 and not node.keywords and \
                _is_set_expr(node.args[0], self.set_names, self.src):
            self.findings.append(self.rule.finding(
                self.src, node,
                f"{node.func.id}(<set>) materializes unspecified set order "
                "into ordered output",
            ))
        self.generic_visit(node)


class RuleSetIteration(Rule):
    code = "RL004"
    name = "set-iteration"
    summary = "order-sensitive iteration over a set/frozenset"
    fixit = "wrap the iterable in sorted(...) to pin a total order"
    rationale = (
        "Set iteration order is unspecified: it depends on insertion\n"
        "history and element hashes — for str/bytes/object elements that\n"
        "means PYTHONHASHSEED, i.e. it changes across processes.  A loop\n"
        "over a set whose body schedules events, draws randomness or\n"
        "appends to output therefore produces different event/draw orders\n"
        "per run even at a fixed seed.  The rule flags statically-certain\n"
        "set iterables (set literals, set()/frozenset() calls, set\n"
        "operators, locals assigned from them) in for-loops with\n"
        "order-sensitive bodies, comprehensions building ordered output,\n"
        "and list()/tuple() materialization.  sorted(<set>) pins a total\n"
        "order and passes; int-only sets iterated for pure membership\n"
        "tallies can be suppressed with a reason."
    )

    def check(self, src: ModuleSource, config: LintConfig) -> Iterator[Finding]:
        visitor = _SetIterVisitor(self, src)
        visitor.visit(src.tree)
        yield from visitor.findings


# ----------------------------------------------------------------------
# RL005 — environment / platform reads in unit-job execution paths
# ----------------------------------------------------------------------
ENV_READS = frozenset({
    "os.environ", "os.environb", "os.getenv", "os.getenvb", "os.putenv",
    "os.uname", "socket.gethostname", "getpass.getuser",
})

PLATFORM_PREFIX = "platform."


class RuleEnvRead(Rule):
    code = "RL005"
    name = "env-read"
    summary = "environment/platform read inside a unit-job execution path"
    fixit = (
        "thread the value through ScenarioSpec (so it is hashed) or read "
        "it at the CLI boundary and pass it down"
    )
    rationale = (
        "A unit job is content-addressed by ScenarioSpec.spec_hash: the\n"
        "cache, resume and golden machinery all assume the same (spec,\n"
        "seed) computes the same metrics on every host.  Reading\n"
        "os.environ/platform inside the execution path smuggles host state\n"
        "past the hash — two hosts disagree about a 'cached' unit and the\n"
        "diff layer reports phantom drift.  Configuration belongs in the\n"
        "spec (hashed) or at the CLI boundary (explicitly outside the\n"
        "job).  The fault-injection hook (REPRO_FAULT_PLAN) and run-store\n"
        "location (REPRO_RUNS_DIR) are the two sanctioned exceptions, each\n"
        "carrying an inline suppression with its reason."
    )

    def check(self, src: ModuleSource, config: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            qualname = src.resolve(node)
            if qualname is None:
                continue
            if qualname in ENV_READS or qualname.startswith(PLATFORM_PREFIX):
                yield self.finding(
                    src, node,
                    f"host-state read {qualname} inside the unit-job "
                    "execution zone breaks spec-hash purity",
                )


# ----------------------------------------------------------------------
# RL006 — ScenarioSpec serialized-form discipline
# ----------------------------------------------------------------------
class RuleSpecFields(Rule):
    code = "RL006"
    name = "spec-field-discipline"
    summary = "ScenarioSpec field breaks the frozen serialized form"
    fixit = (
        "emit the field conditionally in to_dict (only when != default) or "
        "register it in OBSERVATIONAL_SPEC_KEYS"
    )
    rationale = (
        "Every golden, unit-cache entry and RunStore object is keyed by\n"
        "ScenarioSpec.spec_hash — a hash of to_dict().  Adding a field\n"
        "that to_dict always emits changes the serialized form of every\n"
        "pre-existing spec, silently invalidating all recorded hashes (the\n"
        "cache would re-run everything; diffs would pair nothing).  New\n"
        "fields must either follow the conditional-emit pattern — emitted\n"
        "only when the value differs from its default, the way `metrics`\n"
        "is — or be registered in OBSERVATIONAL_SPEC_KEYS so the diff\n"
        "layer knows to drop them when pairing units.  Removing or\n"
        "conditionalising one of the original baseline fields shifts\n"
        "hashes just the same, so that direction is flagged too."
    )

    def check(self, src: ModuleSource, config: LintConfig) -> Iterator[Finding]:
        klass = next(
            (node for node in src.tree.body
             if isinstance(node, ast.ClassDef)
             and node.name == config.spec_class),
            None,
        )
        if klass is None:
            return
        fields: Dict[str, ast.AnnAssign] = {}
        for stmt in klass.body:
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name) and \
                    not stmt.target.id.startswith("_"):
                fields[stmt.target.id] = stmt

        to_dict = next(
            (stmt for stmt in klass.body
             if isinstance(stmt, ast.FunctionDef) and stmt.name == "to_dict"),
            None,
        )
        if to_dict is None:
            yield self.finding(
                src, klass,
                f"{config.spec_class} has no to_dict — the serialized form "
                "(and so every spec hash) is undefined",
            )
            return

        unconditional: Dict[str, ast.AST] = {}
        conditional: Dict[str, ast.AST] = {}

        def collect(stmts: List[ast.stmt], in_branch: bool) -> None:
            for stmt in stmts:
                bucket = conditional if in_branch else unconditional
                if isinstance(stmt, (ast.Assign, ast.Return)):
                    value = stmt.value
                    if isinstance(value, ast.Dict):
                        for key in value.keys:
                            if isinstance(key, ast.Constant) and \
                                    isinstance(key.value, str):
                                bucket.setdefault(key.value, key)
                if isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Subscript) and \
                                isinstance(target.slice, ast.Constant) and \
                                isinstance(target.slice.value, str):
                            bucket.setdefault(target.slice.value, target)
                for child_body, branch in _branches(stmt):
                    collect(child_body, in_branch or branch)

        def _branches(stmt: ast.stmt) -> List[Tuple[List[ast.stmt], bool]]:
            if isinstance(stmt, ast.If):
                return [(stmt.body, True), (stmt.orelse, True)]
            if isinstance(stmt, (ast.For, ast.While)):
                return [(stmt.body, True), (stmt.orelse, True)]
            if isinstance(stmt, ast.Try):
                out = [(stmt.body, True), (stmt.orelse, True),
                       (stmt.finalbody, True)]
                out.extend((h.body, True) for h in stmt.handlers)
                return out
            if isinstance(stmt, ast.With):
                return [(stmt.body, False)]
            return []

        collect(to_dict.body, False)

        observational = _observational_keys(src, config)
        baseline = set(config.baseline_spec_fields)

        for name, node in sorted(fields.items()):
            if name in baseline:
                if name not in unconditional:
                    yield self.finding(
                        src, to_dict,
                        f"baseline spec field {name!r} is no longer emitted "
                        "unconditionally by to_dict — every pre-existing "
                        "spec hash shifts",
                    )
                continue
            if name in unconditional:
                yield self.finding(
                    src, unconditional[name],
                    f"new spec field {name!r} is emitted unconditionally by "
                    "to_dict — every pre-existing spec hash shifts",
                )
            elif name not in conditional and name not in observational:
                yield self.finding(
                    src, node,
                    f"new spec field {name!r} is neither conditionally "
                    "emitted by to_dict nor registered in "
                    f"{config.observational_keys_name}",
                )


def _observational_keys(src: ModuleSource, config: LintConfig) -> Set[str]:
    """Statically read OBSERVATIONAL_SPEC_KEYS from its home module."""
    rel = Path(*config.observational_keys_module.split(".")).with_suffix(".py")
    # Walk up from the linted file to find the source root that contains
    # the observational-keys module (handles both the real tree and test
    # fixture trees).
    base = src.path.resolve().parent
    for _ in range(len(src.module.split(".")) + 1):
        candidate = base / rel
        if candidate.is_file():
            break
        base = base.parent
    else:
        return set()
    if not candidate.is_file():
        return set()
    try:
        tree = ast.parse(candidate.read_text(encoding="utf-8"))
    except SyntaxError:
        return set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and \
                        target.id == config.observational_keys_name and \
                        isinstance(node.value, (ast.Tuple, ast.List, ast.Set)):
                    return {
                        elt.value for elt in node.value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)
                    }
    return set()


#: Every rule, in code order.  Append-only.
ALL_RULES: Tuple[Rule, ...] = (
    RuleBuiltinHash(),
    RuleWallClock(),
    RuleGlobalRNG(),
    RuleSetIteration(),
    RuleEnvRead(),
    RuleSpecFields(),
)

RULES_BY_CODE: Dict[str, Rule] = {rule.code: rule for rule in ALL_RULES}


def rule_for(code: str) -> Optional[Rule]:
    """The rule registered under ``code``, if any."""
    return RULES_BY_CODE.get(code)
