"""``python -m repro.analysis.lint`` — see :mod:`repro.analysis.lint.cli`."""

import sys

from repro.analysis.lint.cli import main

if __name__ == "__main__":
    sys.exit(main())
