"""Small, dependency-light statistics helpers.

These are intentionally simple re-implementations (mean, percentile,
bootstrap confidence intervals, least-squares fit) so that experiment code
reads clearly and works on plain Python lists produced by the simulators.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two values."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((value - mu) ** 2 for value in values) / len(values))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of strictly positive values; 0.0 for an empty input."""
    values = [value for value in values if value > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(value) for value in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile with ``q`` in [0, 100]."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile must be in [0, 100]")
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    weight = rank - low
    # Interpolate as low + delta*w (not low*(1-w) + high*w) and clamp: the
    # two-product form can round outside [low, high] for denormal values.
    interpolated = ordered[low] + (ordered[high] - ordered[low]) * weight
    return min(max(interpolated, ordered[low]), ordered[high])


def describe(values: Sequence[float]) -> Dict[str, float]:
    """Headline summary statistics as a dictionary."""
    values = list(values)
    return {
        "count": float(len(values)),
        "mean": mean(values),
        "stdev": stdev(values),
        "min": min(values) if values else 0.0,
        "p50": percentile(values, 50),
        "p90": percentile(values, 90),
        "p99": percentile(values, 99),
        "max": max(values) if values else 0.0,
    }


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as sorted (value, cumulative fraction) pairs."""
    ordered = sorted(values)
    n = len(ordered)
    return [(value, (index + 1) / n) for index, value in enumerate(ordered)]


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    iterations: int = 1000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Bootstrap confidence interval for the mean of ``values``."""
    values = list(values)
    if not values:
        return (0.0, 0.0)
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = random.Random(seed)
    resampled_means = []
    for _ in range(iterations):
        resample = [rng.choice(values) for _ in range(len(values))]
        resampled_means.append(mean(resample))
    alpha = (1.0 - confidence) / 2.0
    return (
        percentile(resampled_means, 100.0 * alpha),
        percentile(resampled_means, 100.0 * (1.0 - alpha)),
    )


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit ``y = slope * x + intercept``; returns (slope, intercept)."""
    xs = list(xs)
    ys = list(ys)
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if len(xs) < 2:
        return (0.0, ys[0] if ys else 0.0)
    mean_x = mean(xs)
    mean_y = mean(ys)
    covariance = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    variance = sum((x - mean_x) ** 2 for x in xs)
    if variance == 0:
        return (0.0, mean_y)
    slope = covariance / variance
    return (slope, mean_y - slope * mean_x)
