"""Drift verification: structural + numeric comparison of two ResultSets.

The repo's product is *numbers that stay right*: every registered scenario
is deterministic at a fixed seed, so two runs of the same configuration
must agree exactly, and a longitudinal grid (the nightly ``figure1``
study) must agree within its statistical noise.  This module is the
comparison layer that makes either statement checkable:

* **Structural**: results are keyed by the content hash of their stored
  spec (:meth:`ScenarioSpec.spec_hash`), so the diff reports *added*,
  *removed* and *changed* units rather than positional noise.  Units whose
  spec changed but whose (scenario, label) identity is stable — a flipped
  seed, a retuned knob — pair up as ``changed`` with ``spec_changed`` set
  instead of degrading into an add/remove pair.
* **Numeric**: every shared metric of a matched pair is compared under a
  per-metric :class:`Tolerance` (relative + absolute, zero by default), and
  when both sides carry replicates the 95% bootstrap intervals are tested
  for overlap — the statistically honest check for noisy nightly grids.
* **Reportable**: a :class:`DiffReport` renders as a
  :class:`~repro.analysis.tables.ResultTable` for humans and serialises via
  :meth:`DiffReport.to_json` for machines (the nightly CI job parses it).

Usage::

    from repro.analysis.diff import Tolerance, diff_resultsets

    report = diff_resultsets(golden, current)          # zero tolerance
    assert report.identical, report.table().render()

    report = diff_resultsets(
        last_night, tonight,
        tolerances={"throughput_tps": Tolerance(rel=0.05), "*": Tolerance(rel=0.2)},
    )
    print(report.summary())
    print(report.to_json())

Per-metric tolerances accept ``fnmatch`` globs (``"*_latency_s"``,
``"p9?_latency_s"``), resolved most-specific-first: an exact metric name
wins over glob patterns (tried in declaration order), which win over the
``"*"`` fallback.  :data:`TOLERANCE_PROFILES` names curated tolerance
maps for recurring comparisons — ``"sketch"`` bounds the agreement
between streaming-sketch and exact metrics collection
(:mod:`repro.sim.metrics`), ``"latency"`` absorbs the sampling noise of
latency percentiles across seeds/nights while keeping everything else
tight, and ``"cross-substrate"`` compares the scalar and vectorized
(``kad-fast``) Kademlia substrates at overlapping network sizes —
ignoring fast-path-only bookkeeping metrics and (being a
:data:`SPEC_DRIFT_PROFILES` member) pairing across the deliberate
``architecture.overlay`` spec difference.

The CLI front end is ``repro-run diff A B [--profile NAME]
[--tol metric=rel]`` where A/B are RunStore names, JSON paths, or ``-``
for stdin; explicit ``--tol`` entries override the profile's.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Mapping, Optional, Tuple

from repro.analysis.resultset import ResultSet
from repro.analysis.tables import ResultTable

#: Schema tag written into every serialised report.
SCHEMA = "diffreport/v1"

#: Replicate count from which CI-overlap testing switches on.
MIN_REPLICATES_FOR_CI = 2


@dataclass(frozen=True)
class Tolerance:
    """Acceptable per-metric drift: ``|a - b| <= abs + rel * |a|``.

    The reference side of the relative term is A (the baseline run), so a
    5% tolerance means "within 5% of where we started".  The default is
    exact equality — the right contract for fixed-seed golden comparisons.

    ``ignore=True`` drops the metric from the comparison entirely: it is
    neither judged numerically nor counted as a one-sided
    (``only_a``/``only_b``) asymmetry.  This is how cross-substrate
    profiles absorb bookkeeping metrics only one implementation reports
    (the fast path's ``events_processed``, for example).
    """

    rel: float = 0.0
    abs: float = 0.0
    ignore: bool = False

    def __post_init__(self) -> None:
        if self.rel < 0.0 or self.abs < 0.0:
            raise ValueError("tolerances must be non-negative")

    def allows(self, a: float, b: float) -> bool:
        """Whether a baseline value ``a`` drifting to ``b`` is acceptable."""
        if self.ignore:
            return True
        return abs(a - b) <= self.abs + self.rel * abs(a)

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"rel": self.rel, "abs": self.abs}
        if self.ignore:
            data["ignore"] = True
        return data


def parse_tolerance(argument: str) -> Tuple[str, Tolerance]:
    """Parse one CLI ``--tol`` assignment into ``(metric, Tolerance)``.

    Accepted forms (``*`` as the metric applies to every metric without a
    more specific entry)::

        --tol throughput_tps=0.05          5% relative
        --tol latency_mean_s=abs:0.002     2 ms absolute
        --tol stale_rate=rel:0.1,abs:1e-6  both terms
        --tol events_processed=ignore      drop the metric entirely
    """
    metric, separator, value = argument.partition("=")
    metric = metric.strip()
    if not separator or not metric or not value.strip():
        raise ValueError(
            f"--tol expects METRIC=REL (or METRIC=abs:X / rel:X,abs:Y / "
            f"METRIC=ignore), got {argument!r}"
        )
    if value.strip().lower() == "ignore":
        return metric, Tolerance(ignore=True)
    rel = 0.0
    absolute = 0.0
    for part in value.split(","):
        kind, tagged, magnitude = part.strip().partition(":")
        if not tagged:
            kind, magnitude = "rel", part
        try:
            magnitude = float(magnitude)
        except ValueError:
            raise ValueError(
                f"--tol {argument!r}: {part.strip()!r} is not a number"
            ) from None
        if kind == "rel":
            rel = magnitude
        elif kind == "abs":
            absolute = magnitude
        else:
            raise ValueError(
                f"--tol {argument!r}: unknown term {kind!r} (use rel/abs)"
            )
    return metric, Tolerance(rel=rel, abs=absolute)


def tolerance_for(metric: str,
                  tolerances: Optional[Mapping[str, Tolerance]]) -> Tolerance:
    """The tolerance of one metric, most specific entry first.

    Resolution order: an exact metric-name entry, then glob patterns
    (``fnmatch`` syntax — ``*_latency_s``, ``p9?_latency_s``) in
    declaration order, then the ``"*"`` fallback, then zero (exact
    equality).  ``"*"`` always resolves last regardless of position, so
    profiles can list it anywhere.
    """
    if not tolerances:
        return Tolerance()
    if metric in tolerances:
        return tolerances[metric]
    for pattern, tolerance in tolerances.items():
        if pattern == "*":
            continue
        if any(ch in pattern for ch in "*?[") and fnmatchcase(metric, pattern):
            return tolerance
    return tolerances.get("*", Tolerance())


#: Named tolerance maps for recurring comparison jobs
#: (``repro-run diff --profile NAME``).  Explicit ``--tol`` entries are
#: layered on top of the chosen profile.
TOLERANCE_PROFILES: Dict[str, Dict[str, Tolerance]] = {
    # Streaming-sketch vs exact metrics collection over the *same*
    # trajectory (repro.sim.metrics).  Percentiles come from a
    # 1%-relative-error log-bucketed sketch, so they may shift by the
    # bucket width plus rank-interpolation discreteness (bounded well
    # inside 2.5% — asserted across distributions by
    # tests/test_streaming_metrics.py); threshold fractions can move by
    # the mass of one boundary bucket; everything not derived from a
    # percentile sketch (counts, means, rates) must agree exactly.
    "sketch": {
        # Means are exact in both modes (Welford vs list sum); the
        # allowance is float summation-order slack only.
        "mean_latency_s": Tolerance(rel=1e-9, abs=1e-12),
        "median_latency_s": Tolerance(rel=0.025, abs=1e-6),
        "p9?_latency_s": Tolerance(rel=0.025, abs=1e-6),
        "*_latency_s": Tolerance(rel=0.025, abs=1e-6),
        "fraction_within_*": Tolerance(abs=0.02),
        "*": Tolerance(),
    },
    # Cross-seed / night-over-night comparisons where latency order
    # statistics are legitimately noisy (tail percentiles especially)
    # but throughput-like metrics should stay put.  The carried-over
    # ROADMAP item for the nightly grid.
    "latency": {
        "p99_latency_s": Tolerance(rel=0.40),
        "p90_latency_s": Tolerance(rel=0.25),
        "*_latency_s": Tolerance(rel=0.20),
        "fraction_within_*": Tolerance(abs=0.05),
        "*": Tolerance(rel=0.05),
    },
    # Scalar (event-driven) vs vectorized (kad-fast) Kademlia at the same
    # overlay size: two *models* of the same system, not two runs of the
    # same model.  Latency and hop distributions should land in the same
    # regime but never match exactly; fast-path bookkeeping metrics with
    # no scalar counterpart are dropped outright.  Used with
    # ``spec_changed_ok`` pairing (the two sides differ in
    # ``architecture.overlay`` by construction, so spec drift is the
    # premise of the comparison, not a failure of it).
    "cross-substrate": {
        "online_fraction": Tolerance(ignore=True),
        "events_processed": Tolerance(ignore=True),
        "churn_rate_per_hour": Tolerance(ignore=True),
        "lookups": Tolerance(),  # same workload on both sides, exactly
        "p99_latency_s": Tolerance(rel=0.60, abs=0.5),
        "p90_latency_s": Tolerance(rel=0.50, abs=0.25),
        "*_latency_s": Tolerance(rel=0.50, abs=0.25),
        "fraction_within_*": Tolerance(abs=0.15),
        "failure_rate": Tolerance(abs=0.10),
        "timeouts_per_lookup": Tolerance(rel=0.75, abs=0.5),
        # The scalar path counts every parallel RPC as a hop; the fast
        # path counts iterative routing depth.  Same O(log N) shape,
        # different constant — hence the wide relative band.
        "hops_per_lookup": Tolerance(rel=0.80, abs=0.5),
        "routing_staleness": Tolerance(abs=0.20),
        "*": Tolerance(rel=0.50),
    },
}

#: Profiles whose comparison *expects* the paired specs to differ (the
#: two sides deliberately run different substrates/knobs), so a pair
#: matched by (scenario, label) identity is judged on its metrics alone
#: instead of being forced to ``changed`` by the spec divergence.  The
#: CLI passes ``spec_changed_ok=True`` to :func:`diff_resultsets` for
#: these.
SPEC_DRIFT_PROFILES = frozenset({"cross-substrate"})


def tolerance_profile(name: str) -> Dict[str, Tolerance]:
    """A copy of one named profile from :data:`TOLERANCE_PROFILES`."""
    if name not in TOLERANCE_PROFILES:
        raise ValueError(
            f"unknown tolerance profile {name!r}; "
            f"pick one of {sorted(TOLERANCE_PROFILES)}"
        )
    return dict(TOLERANCE_PROFILES[name])


# ----------------------------------------------------------------------
# Per-unit comparison records
# ----------------------------------------------------------------------
@dataclass
class MetricDelta:
    """One metric compared across a matched pair of results."""

    metric: str
    a: float
    b: float
    within: bool
    #: CI-overlap verdict: ``None`` when either side lacks replicates.
    ci_overlap: Optional[bool] = None

    @property
    def abs_delta(self) -> float:
        return self.b - self.a

    @property
    def rel_delta(self) -> Optional[float]:
        """Signed relative delta vs A; ``None`` when A is zero and B is not."""
        if self.a == 0.0:
            return 0.0 if self.b == 0.0 else None
        return (self.b - self.a) / abs(self.a)

    def to_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "a": self.a,
            "b": self.b,
            "abs_delta": self.abs_delta,
            "rel_delta": self.rel_delta,
            "within_tolerance": self.within,
            "ci_overlap": self.ci_overlap,
        }


@dataclass
class UnitDiff:
    """One result slot compared across the two sets.

    ``status`` is ``"added"`` (only in B), ``"removed"`` (only in A),
    ``"changed"`` or ``"unchanged"``.  ``spec_changed`` marks pairs that
    matched by (scenario, label) identity after their spec hashes diverged
    (a flipped seed, a retuned knob).  ``deltas`` holds every compared
    metric; :attr:`changed_metrics` filters to the out-of-tolerance ones.
    """

    key: str
    scenario: str
    label: str
    status: str
    spec_changed: bool = False
    deltas: List[MetricDelta] = field(default_factory=list)
    metrics_only_in_a: List[str] = field(default_factory=list)
    metrics_only_in_b: List[str] = field(default_factory=list)

    @property
    def display(self) -> str:
        """Human key: the label where set, else the scenario name."""
        return self.label or self.scenario

    @property
    def changed_metrics(self) -> List[MetricDelta]:
        return [delta for delta in self.deltas if not delta.within]

    @property
    def ci_failures(self) -> List[MetricDelta]:
        return [delta for delta in self.deltas if delta.ci_overlap is False]

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "scenario": self.scenario,
            "label": self.label,
            "status": self.status,
            "spec_changed": self.spec_changed,
            "metrics_only_in_a": list(self.metrics_only_in_a),
            "metrics_only_in_b": list(self.metrics_only_in_b),
            "deltas": [delta.to_dict() for delta in self.deltas],
        }


# ----------------------------------------------------------------------
# The report
# ----------------------------------------------------------------------
@dataclass
class DiffReport:
    """The full outcome of comparing two ResultSets."""

    a_label: str
    b_label: str
    units: List[UnitDiff] = field(default_factory=list)
    tolerances: Dict[str, Tolerance] = field(default_factory=dict)

    def _with_status(self, status: str) -> List[UnitDiff]:
        return [unit for unit in self.units if unit.status == status]

    @property
    def added(self) -> List[UnitDiff]:
        return self._with_status("added")

    @property
    def removed(self) -> List[UnitDiff]:
        return self._with_status("removed")

    @property
    def changed(self) -> List[UnitDiff]:
        return self._with_status("changed")

    @property
    def unchanged(self) -> List[UnitDiff]:
        return self._with_status("unchanged")

    @property
    def identical(self) -> bool:
        """No structural drift and every metric within tolerance."""
        return not (self.added or self.removed or self.changed)

    @property
    def ci_failures(self) -> List[Tuple[UnitDiff, MetricDelta]]:
        """Every (unit, delta) whose bootstrap intervals fail to overlap."""
        return [(unit, delta) for unit in self.units
                for delta in unit.ci_failures]

    def summary(self) -> str:
        """A one-line verdict suitable for CLI output and CI logs."""
        counts = (f"{len(self.unchanged)} unchanged, {len(self.changed)} "
                  f"changed, {len(self.added)} added, {len(self.removed)} "
                  f"removed")
        verdict = "identical" if self.identical else "DRIFT"
        line = f"{self.a_label} vs {self.b_label}: {verdict} ({counts})"
        failures = self.ci_failures
        if failures:
            line += f"; {len(failures)} metric(s) outside CI overlap"
        return line

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "a": self.a_label,
            "b": self.b_label,
            "identical": self.identical,
            "summary": {
                "added": len(self.added),
                "removed": len(self.removed),
                "changed": len(self.changed),
                "unchanged": len(self.unchanged),
                "ci_failures": len(self.ci_failures),
            },
            "tolerances": {metric: tolerance.to_dict()
                           for metric, tolerance in sorted(self.tolerances.items())},
            "units": [unit.to_dict() for unit in self.units],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Deterministic, machine-readable JSON rendering."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # -- rendering -----------------------------------------------------
    def table(self, max_unchanged: int = 0) -> ResultTable:
        """The drift as a :class:`ResultTable`.

        One row per out-of-tolerance metric of every changed pair, one row
        per added/removed unit, plus (optionally) up to ``max_unchanged``
        rows confirming clean units.
        """
        table = ResultTable(
            ["unit", "status", "metric", "a", "b", "delta", "rel", "ci95"],
            title=self.summary(),
        )
        for unit in self.units:
            if unit.status in ("added", "removed"):
                table.add_row(unit.display, unit.status,
                              "-", "-", "-", "-", "-", "-")
                continue
            status = unit.status
            if unit.spec_changed:
                status += " (spec)"
            for name in unit.metrics_only_in_a:
                table.add_row(unit.display, status, name, "present", "-",
                              "-", "-", "-")
            for name in unit.metrics_only_in_b:
                table.add_row(unit.display, status, name, "-", "present",
                              "-", "-", "-")
            shown = unit.changed_metrics or (
                unit.deltas[:1] if unit.spec_changed else [])
            for delta in shown:
                rel = delta.rel_delta
                table.add_row(
                    unit.display, status, delta.metric, delta.a, delta.b,
                    delta.abs_delta,
                    f"{rel:+.2%}" if rel is not None else "-",
                    {True: "overlap", False: "DISJOINT", None: "-"}[delta.ci_overlap],
                )
        for unit in self.unchanged[:max_unchanged]:
            table.add_row(unit.display, "unchanged", "-", "-", "-", "-", "-", "-")
        return table


# ----------------------------------------------------------------------
# The comparison itself
# ----------------------------------------------------------------------
#: Spec keys that select how a run is *measured*, not what it simulates.
#: They are excluded from diff identity so an exact-metrics run and a
#: ``metrics: streaming`` rerun of the same experiment pair up as one
#: unit — the whole point of ``--profile sketch`` is to judge exactly
#: that numeric drift, which spec-level pairing would otherwise mask as
#: an unconditional "changed (spec)".
OBSERVATIONAL_SPEC_KEYS = ("metrics",)


def result_key(result) -> str:
    """The structural identity of one result: its spec's content hash.

    Uses :meth:`ScenarioSpec.spec_hash` when the stored spec round-trips
    (the normal case for framework output) and falls back to hashing the
    raw spec JSON for hand-built documents, so foreign ResultSets still
    diff structurally.  :data:`OBSERVATIONAL_SPEC_KEYS` are dropped
    before hashing.
    """
    from repro.scenarios.spec import ScenarioSpec

    spec = {key: value for key, value in (result.spec or {}).items()
            if key not in OBSERVATIONAL_SPEC_KEYS}
    try:
        return ScenarioSpec.from_dict(spec).spec_hash()
    except (TypeError, ValueError, KeyError):
        payload = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _keyed(results: ResultSet) -> Dict[str, object]:
    """Results keyed by spec hash; duplicates disambiguated with ``#n``."""
    keyed: Dict[str, object] = {}
    seen: Dict[str, int] = {}
    for result in results:
        key = result_key(result)
        seen[key] = seen.get(key, 0) + 1
        if seen[key] > 1:
            key = f"{key}#{seen[key]}"
        keyed[key] = result
    return keyed


def _ci_overlap(a_result, b_result, metric: str) -> Optional[bool]:
    """Whether the 95% bootstrap intervals of a metric overlap.

    ``None`` when either side lacks enough replicates reporting the metric
    for an interval to mean anything.
    """
    def _interval(result) -> Optional[Tuple[float, float]]:
        values = [replicate.metrics[metric] for replicate in result.replicates
                  if metric in replicate.metrics]
        if len(values) < MIN_REPLICATES_FOR_CI:
            return None
        return result.ci95(metric)

    interval_a = _interval(a_result)
    interval_b = _interval(b_result)
    if interval_a is None or interval_b is None:
        return None
    return interval_a[0] <= interval_b[1] and interval_b[0] <= interval_a[1]


def _compare_pair(key: str, a_result, b_result, spec_changed: bool,
                  tolerances: Optional[Mapping[str, Tolerance]],
                  spec_changed_ok: bool = False) -> UnitDiff:
    """Numeric comparison of one matched pair of results.

    Metrics whose resolved :class:`Tolerance` has ``ignore`` set are
    excluded from both the delta list and the one-sided
    (``only_a``/``only_b``) bookkeeping.  ``spec_changed_ok`` stops a
    ``spec_changed`` pair from being forced to *changed*: the verdict
    then rests on the metrics alone (the ``spec_changed`` flag is still
    recorded and rendered).
    """
    def _ignored(metric: str) -> bool:
        return tolerance_for(metric, tolerances).ignore

    a_metrics = a_result.metrics
    b_metrics = b_result.metrics
    shared = sorted(set(a_metrics) & set(b_metrics))
    deltas = []
    for metric in shared:
        if _ignored(metric):
            continue
        a_value = a_metrics[metric]
        b_value = b_metrics[metric]
        within = tolerance_for(metric, tolerances).allows(a_value, b_value)
        if not within and (math.isnan(a_value) and math.isnan(b_value)):
            within = True  # a reproduced NaN is not drift
        deltas.append(MetricDelta(
            metric=metric, a=a_value, b=b_value, within=within,
            ci_overlap=_ci_overlap(a_result, b_result, metric),
        ))
    only_a = sorted(metric for metric in set(a_metrics) - set(b_metrics)
                    if not _ignored(metric))
    only_b = sorted(metric for metric in set(b_metrics) - set(a_metrics)
                    if not _ignored(metric))
    changed = (spec_changed and not spec_changed_ok) or only_a or only_b \
        or any(not delta.within for delta in deltas)
    return UnitDiff(
        key=key,
        scenario=b_result.scenario,
        label=b_result.label or a_result.label,
        status="changed" if changed else "unchanged",
        spec_changed=spec_changed,
        deltas=deltas,
        metrics_only_in_a=only_a,
        metrics_only_in_b=only_b,
    )


def diff_resultsets(
    a: ResultSet,
    b: ResultSet,
    tolerances: Optional[Mapping[str, Tolerance]] = None,
    a_label: str = "A",
    b_label: str = "B",
    spec_changed_ok: bool = False,
) -> DiffReport:
    """Compare two ResultSets structurally and numerically.

    Matching is two-pass: first by spec hash (exact structural identity),
    then leftover units pair by (scenario, label) so a spec change on a
    stable slot — the flipped-seed case — reports as *changed* with
    ``spec_changed`` set rather than as an add/remove pair.  Everything
    still unmatched is *removed* (A only) or *added* (B only).

    ``spec_changed_ok=True`` makes spec-divergent pairs acceptable: they
    are judged on their metrics only.  This is the pairing mode of
    :data:`SPEC_DRIFT_PROFILES` comparisons (e.g. ``cross-substrate``),
    where the two sides run *different* substrates of the same scenario
    on purpose.
    """
    a_keyed = _keyed(a)
    b_keyed = _keyed(b)
    units: List[UnitDiff] = []

    removed_leftovers: Dict[Tuple[str, str], List[Tuple[str, object]]] = {}
    for key, result in a_keyed.items():
        if key in b_keyed:
            units.append(_compare_pair(key, result, b_keyed[key],
                                       spec_changed=False,
                                       tolerances=tolerances))
        else:
            identity = (result.scenario, result.label)
            removed_leftovers.setdefault(identity, []).append((key, result))

    added_leftovers: List[Tuple[str, object]] = []
    for key, result in b_keyed.items():
        if key in a_keyed:
            continue
        identity = (result.scenario, result.label)
        candidates = removed_leftovers.get(identity)
        if candidates:
            a_key, a_result = candidates.pop(0)
            if not candidates:
                del removed_leftovers[identity]
            units.append(_compare_pair(f"{a_key}->{key}", a_result, result,
                                       spec_changed=True,
                                       tolerances=tolerances,
                                       spec_changed_ok=spec_changed_ok))
        else:
            added_leftovers.append((key, result))

    for identity, leftovers in removed_leftovers.items():
        for key, result in leftovers:
            units.append(UnitDiff(key=key, scenario=result.scenario,
                                  label=result.label, status="removed"))
    for key, result in added_leftovers:
        units.append(UnitDiff(key=key, scenario=result.scenario,
                              label=result.label, status="added"))

    return DiffReport(a_label=a_label, b_label=b_label, units=units,
                      tolerances=dict(tolerances or {}))
