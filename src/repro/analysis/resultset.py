"""ResultSet — the universal container for collections of scenario results.

Everything the framework produces more than one
:class:`~repro.scenarios.result.ScenarioResult` at a time — a ``--sweep``
expansion, a replicate fan-out, a cross-family study — lands in a
:class:`ResultSet`.  It gives sweep/study output a query surface instead of
a raw list: ``filter``/``group_by``/``aggregate`` return new ResultSets,
``pivot``/``to_table`` render through
:class:`~repro.analysis.tables.ResultTable`, ``ci95`` exposes per-metric
95% bootstrap confidence intervals computed from the replicates, and
``to_json`` is deterministic (two runs of the same spec set at the same
seeds produce byte-identical output).

Axes
----
Most query methods take an *axis*: a callable ``result -> value``, one of
the result attributes (``"scenario"``, ``"family"``, ``"label"``), the
spec's ``"claim"``, a dotted path into the stored spec
(``"architecture.replicas"``, ``"workload.rate_tps"``, optionally prefixed
with ``spec.``), or — as a last resort — an aggregated metric name.

Usage::

    from repro.scenarios import run_sweep
    points = run_sweep("bft-committee-sweep")          # a ResultSet
    small = points.filter(**{"architecture.replicas": [4, 7]})
    table = points.pivot(rows="architecture.replicas",
                         cols="family", metric="throughput_tps")
    lo, hi = points.aggregate(by="scenario")[0].ci95("throughput_tps")
"""

from __future__ import annotations

import json
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.stats import mean
from repro.analysis.tables import ResultTable

#: An axis is a callable or a name resolved by :func:`axis_value`.
Axis = Union[str, Callable]

_MISSING = object()


def axis_value(result, axis: Axis):
    """Resolve an axis (see the module docstring) against one result.

    Returns ``None`` when the axis does not apply to this result, so
    heterogeneous sets can still be grouped/pivoted on family-specific
    coordinates.
    """
    if callable(axis):
        return axis(result)
    if axis in ("scenario", "family", "label"):
        return getattr(result, axis)
    spec = result.spec or {}
    if axis == "claim":
        return spec.get("claim", "")
    path = axis[len("spec."):] if axis.startswith("spec.") else axis
    node = spec
    for part in path.split("."):
        if isinstance(node, dict) and part in node:
            node = node[part]
        else:
            node = _MISSING
            break
    if node is not _MISSING:
        return node
    return result.metrics.get(axis)


class ResultSet:
    """An ordered, immutable collection of :class:`ScenarioResult` objects."""

    def __init__(self, results: Iterable = (), name: str = "",
                 description: str = "",
                 failures: Optional[Iterable[Mapping]] = None) -> None:
        self._results: List = list(results)
        self.name = name
        self.description = description
        #: Failure manifest: one plain dict per unit job that exhausted its
        #: retry budget (see ``JobFailure.to_dict``), in plan order.  Empty
        #: for a complete run — and omitted from ``to_dict`` when empty, so
        #: fault-free serialisations are unchanged.
        self.failures: List[Dict[str, object]] = [dict(entry)
                                                  for entry in failures or ()]

    # ------------------------------------------------------------------
    # Sequence behaviour
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator:
        return iter(self._results)

    def __getitem__(self, index: int):
        return self._results[index]

    def __add__(self, other: "ResultSet") -> "ResultSet":
        """Concatenate two result sets (keeps the left-hand name)."""
        return ResultSet(list(self._results) + list(other),
                         name=self.name, description=self.description,
                         failures=self.failures + getattr(other, "failures", []))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ResultSet(name={self.name!r}, results={len(self._results)})"

    @property
    def results(self) -> List:
        """The contained results, as a fresh list."""
        return list(self._results)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def labels(self) -> List[str]:
        """Per-result display keys: the label where set, else the scenario."""
        return [result.label or result.scenario for result in self._results]

    def scenarios(self) -> List[str]:
        """Distinct scenario names, in first-seen order."""
        return list(dict.fromkeys(result.scenario for result in self._results))

    def families(self) -> List[str]:
        """Distinct architecture families, in first-seen order."""
        return list(dict.fromkeys(result.family for result in self._results))

    def axis_values(self, axis: Axis) -> List:
        """Distinct values of an axis, in first-seen order."""
        values: List = []
        for result in self._results:
            value = axis_value(result, axis)
            if value not in values:
                values.append(value)
        return values

    def metric_names(self, common: bool = False) -> List[str]:
        """Sorted union (default) or intersection of the metric names."""
        if not self._results:
            return []
        names = set(self._results[0].metrics)
        for result in self._results[1:]:
            if common:
                names &= set(result.metrics)
            else:
                names |= set(result.metrics)
        return sorted(names)

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------
    def filter(self, predicate: Optional[Callable] = None, **axes) -> "ResultSet":
        """Results matching a predicate and/or per-axis expected values.

        Keyword keys are axes (pass dotted paths via ``**{"a.b": v}``);
        an expected value that is a list/tuple/set/frozenset matches by
        membership, anything else by equality.
        """
        kept = []
        for result in self._results:
            if predicate is not None and not predicate(result):
                continue
            matched = True
            for axis, expected in axes.items():
                value = axis_value(result, axis)
                if isinstance(expected, (list, tuple, set, frozenset)):
                    matched = value in expected
                else:
                    matched = value == expected
                if not matched:
                    break
            if matched:
                kept.append(result)
        return ResultSet(kept, name=self.name, description=self.description)

    def only(self, predicate: Optional[Callable] = None, **axes):
        """The single result matching the query; raises otherwise."""
        matches = self.filter(predicate, **axes)
        if len(matches) != 1:
            query = ", ".join(f"{axis}={value!r}" for axis, value in axes.items())
            raise KeyError(
                f"expected exactly one result for ({query}) in "
                f"{self.name or 'result set'}, found {len(matches)} "
                f"of {self.labels()}"
            )
        return matches[0]

    def group_by(self, axis: Axis) -> Dict[object, "ResultSet"]:
        """Partition into sub-ResultSets keyed by axis value (stable order)."""
        groups: Dict[object, List] = {}
        for result in self._results:
            groups.setdefault(axis_value(result, axis), []).append(result)
        return {
            key: ResultSet(results, name=self.name, description=self.description)
            for key, results in groups.items()
        }

    def aggregate(self, by: Axis = "scenario") -> "ResultSet":
        """Merge results sharing an axis value by pooling their replicates.

        Each group becomes one :class:`ScenarioResult` whose replicates are
        the concatenation of the group's replicates — so ``ci95`` and
        ``spread`` then describe the pooled sample.  The merged result keeps
        the group's scenario/family/spec where they are unique and degrades
        to the stringified axis value / ``"mixed"`` / ``{}`` where not.
        """
        from repro.scenarios.result import ScenarioResult

        merged = []
        for key, group in self.group_by(by).items():
            scenarios = group.scenarios()
            families = group.families()
            merged.append(ScenarioResult(
                scenario=scenarios[0] if len(scenarios) == 1 else str(key),
                family=families[0] if len(families) == 1 else "mixed",
                label=str(key) if key is not None else "",
                spec=group[0].spec if len(group) == 1 else {},
                replicates=[replicate for result in group
                            for replicate in result.replicates],
            ))
        return ResultSet(merged, name=self.name, description=self.description)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def ci95(self, metric: str) -> Dict[str, Tuple[float, float]]:
        """Per-result 95% bootstrap CI of a metric, keyed by display label.

        Results whose replicates never report the metric are omitted, and
        repeated display labels are disambiguated with ``#2``, ``#3``, ...
        suffixes (in result order) so no interval is silently dropped.
        """
        intervals: Dict[str, Tuple[float, float]] = {}
        seen: Dict[str, int] = {}
        for label, result in zip(self.labels(), self._results):
            if not any(metric in replicate.metrics for replicate in result.replicates):
                continue
            seen[label] = seen.get(label, 0) + 1
            key = label if seen[label] == 1 else f"{label}#{seen[label]}"
            intervals[key] = result.ci95(metric)
        return intervals

    def rows(self, metrics: Optional[Sequence[str]] = None) -> List[Dict[str, object]]:
        """One plain dict per result: display label plus aggregated metrics."""
        rows = []
        for label, result in zip(self.labels(), self._results):
            row: Dict[str, object] = {"label": label}
            aggregated = result.metrics
            for key in (metrics if metrics is not None else sorted(aggregated)):
                if key in aggregated:
                    row[key] = aggregated[key]
            rows.append(row)
        return rows

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_table(self, metrics: Optional[Sequence[str]] = None,
                 axis: Axis = "label", ci: Optional[bool] = None,
                 title: Optional[str] = None) -> ResultTable:
        """One row per result: axis value plus the selected metrics.

        ``metrics`` defaults to the metrics common to every result (falling
        back to the union when the intersection is empty).  ``ci`` adds a
        95% bootstrap interval column per metric; ``None`` enables it
        automatically when any result carries more than one replicate.
        """
        if metrics is None:
            metrics = self.metric_names(common=True) or self.metric_names()
        metrics = list(metrics)
        if ci is None:
            ci = any(len(result.replicates) > 1 for result in self._results)
        columns = [axis if isinstance(axis, str) else "key"]
        for metric in metrics:
            columns.append(metric)
            if ci:
                columns.append(f"{metric} ci95")
        if title is None:
            title = self.name and f"{self.name}: {self.description}".rstrip(": ")
        table = ResultTable(columns, title=title or "")
        for label, result in zip(self.labels(), self._results):
            key = label if axis == "label" else axis_value(result, axis)
            cells: List[object] = [key if key is not None else "-"]
            aggregated = result.metrics
            for metric in metrics:
                cells.append(aggregated.get(metric, "-"))
                if ci:
                    cells.append(_format_interval(result, metric))
            table.add_row(*cells)
        return table

    def pivot(self, rows: Axis, cols: Axis, metric: str) -> ResultTable:
        """A rows-by-cols table of one metric (mean over matching results)."""
        row_keys = self.axis_values(rows)
        col_keys = self.axis_values(cols)
        row_name = rows if isinstance(rows, str) else "key"
        table = ResultTable(
            [row_name] + [str(key) for key in col_keys],
            title=f"{metric} by {row_name} x {cols if isinstance(cols, str) else 'key'}",
        )
        for row_key in row_keys:
            cells: List[object] = [str(row_key)]
            for col_key in col_keys:
                values = [
                    result.metrics[metric]
                    for result in self._results
                    if axis_value(result, rows) == row_key
                    and axis_value(result, cols) == col_key
                    and metric in result.metrics
                ]
                cells.append(mean(values) if values else "-")
            table.add_row(*cells)
        return table

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Plain JSON-serialisable representation (deterministic ordering)."""
        payload: Dict[str, object] = {
            "name": self.name,
            "description": self.description,
            "results": [result.to_dict() for result in self._results],
        }
        if self.failures:
            payload["failures"] = [dict(entry) for entry in self.failures]
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Deterministic JSON rendering of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ResultSet":
        """Inverse of :meth:`to_dict`."""
        from repro.scenarios.result import ScenarioResult

        return cls(
            [ScenarioResult.from_dict(entry) for entry in data.get("results", [])],
            name=str(data.get("name", "")),
            description=str(data.get("description", "")),
            failures=data.get("failures") or (),
        )

    @classmethod
    def from_json(cls, payload: str) -> "ResultSet":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(payload))


def _format_interval(result, metric: str) -> str:
    """A compact ``[lo, hi]`` cell, or ``-`` without replicate support."""
    values = [replicate.metrics[metric] for replicate in result.replicates
              if metric in replicate.metrics]
    if len(values) < 2:
        return "-"
    low, high = result.ci95(metric)
    return f"[{low:.4g}, {high:.4g}]"
