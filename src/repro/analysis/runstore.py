"""RunStore — named, content-addressed persistence of ResultSets.

The scenario framework produces deterministic
:class:`~repro.analysis.resultset.ResultSet` JSON; this module gives it a
place to live so studies can be tracked longitudinally and interrupted
grids can resume.  A store is a plain directory (``runs/`` by default,
overridable with ``--runs-dir`` or ``$REPRO_RUNS_DIR``)::

    runs/
      objects/<sha256 of payload>.json   # ResultSet JSON, content-addressed
      named/<name>.json                  # name -> object pointer + metadata
      units/<job key>.json               # finished unit-job metrics (resume)

``save`` writes the ResultSet object once per distinct content (re-saving
identical results under a new name just adds a pointer) and ``load``
verifies the content hash on the way back in, so a corrupted object fails
loudly instead of feeding a comparison silently.  The ``units/`` tier is
the resume cache of the execution layer: every finished
:class:`~repro.scenarios.execution.UnitJob` is recorded under its
spec-hash key, and re-running a plan skips the jobs already present.

Usage::

    from repro.analysis.runstore import RunStore
    from repro.scenarios import run_study

    store = RunStore()                          # ./runs
    results = run_study("figure1", store=store) # unit jobs cached as they finish
    store.save(results, "figure1-nightly")
    again = store.load("figure1-nightly")       # identical ResultSet
    for record in store.list():
        print(record.name, record.results, record.object_hash)

The same store drives the CLI: ``repro-run study figure1 --save demo``,
``repro-run ls``, ``repro-run show demo``.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.analysis.resultset import ResultSet

#: Schema tag written into every named record.
SCHEMA = "runstore/v1"

#: Environment override for the default store directory.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

#: Run names become file names; keep them portable.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def default_runs_dir() -> Path:
    """``$REPRO_RUNS_DIR`` when set, else ``./runs``."""
    return Path(os.environ.get(RUNS_DIR_ENV) or "runs")


def _sha256(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class RunRecord:
    """Metadata of one named, saved run."""

    name: str
    object_hash: str
    results: int
    labels: List[str]
    resultset_name: str
    saved_at: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "name": self.name,
            "object": self.object_hash,
            "results": self.results,
            "labels": list(self.labels),
            "resultset_name": self.resultset_name,
            "saved_at": self.saved_at,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunRecord":
        return cls(
            name=str(data["name"]),
            object_hash=str(data["object"]),
            results=int(data.get("results", 0)),
            labels=[str(label) for label in data.get("labels", [])],
            resultset_name=str(data.get("resultset_name", "")),
            saved_at=str(data.get("saved_at", "")),
        )


class RunStore:
    """A directory of saved ResultSets plus the unit-job resume cache."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_runs_dir()

    # -- layout --------------------------------------------------------
    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def named_dir(self) -> Path:
        return self.root / "named"

    @property
    def units_dir(self) -> Path:
        return self.root / "units"

    def _named_path(self, name: str) -> Path:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"invalid run name {name!r}; use letters, digits, '.', '_', '-'"
            )
        return self.named_dir / f"{name}.json"

    # -- named runs ----------------------------------------------------
    def save(self, results: ResultSet, name: str) -> RunRecord:
        """Persist a ResultSet under a name; returns the written record.

        The object file is content-addressed, so saving byte-identical
        results twice stores one object with two pointers.
        """
        path = self._named_path(name)
        payload = results.to_json()
        object_hash = _sha256(payload)
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        object_path = self.objects_dir / f"{object_hash}.json"
        if not object_path.exists():
            object_path.write_text(payload + "\n", encoding="utf-8")
        record = RunRecord(
            name=name,
            object_hash=object_hash,
            results=len(results),
            labels=results.labels(),
            resultset_name=results.name,
            saved_at=datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        )
        self.named_dir.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return record

    def record(self, name: str) -> RunRecord:
        """The metadata record of a named run."""
        path = self._named_path(name)
        if not path.exists():
            known = ", ".join(record.name for record in self.list()) or "(none)"
            raise KeyError(
                f"no saved run {name!r} in {self.root}; saved runs: {known}"
            )
        return RunRecord.from_dict(json.loads(path.read_text(encoding="utf-8")))

    def load(self, name: str) -> ResultSet:
        """Reload a named ResultSet, verifying its content hash."""
        record = self.record(name)
        object_path = self.objects_dir / f"{record.object_hash}.json"
        if not object_path.exists():
            raise KeyError(
                f"run {name!r} points at missing object {record.object_hash}"
            )
        payload = object_path.read_text(encoding="utf-8").rstrip("\n")
        if _sha256(payload) != record.object_hash:
            raise ValueError(
                f"run {name!r}: object {record.object_hash} failed its "
                f"content-hash check (corrupted store?)"
            )
        return ResultSet.from_json(payload)

    def list(self) -> List[RunRecord]:
        """All named runs, sorted by name."""
        if not self.named_dir.is_dir():
            return []
        records = []
        for path in sorted(self.named_dir.glob("*.json")):
            records.append(RunRecord.from_dict(
                json.loads(path.read_text(encoding="utf-8"))))
        return records

    def delete(self, name: str) -> None:
        """Remove a named pointer (objects are kept: content-addressed)."""
        path = self._named_path(name)
        if not path.exists():
            raise KeyError(f"no saved run {name!r} in {self.root}")
        path.unlink()

    # -- unit-job resume cache -----------------------------------------
    def get_unit(self, key: str) -> Optional[Dict[str, float]]:
        """The cached metrics of a finished unit job, if present.

        An unreadable or torn cache file (interrupted write, full disk) is
        treated as a miss — the job is simply recomputed — never an error.
        """
        path = self.units_dir / f"{key}.json"
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            return {name: float(value) for name, value in data["metrics"].items()}
        except (ValueError, KeyError, TypeError, AttributeError, OSError):
            return None

    def put_unit(self, key: str, metrics: Dict[str, float]) -> None:
        """Record one finished unit job for future resume.

        Written via a temp file + atomic rename so a kill mid-write leaves
        either the old state or the complete new file, never a torn one.
        """
        self.units_dir.mkdir(parents=True, exist_ok=True)
        payload = {"key": key, "metrics": dict(sorted(metrics.items()))}
        path = self.units_dir / f"{key}.json"
        temp = path.with_suffix(".json.tmp")
        temp.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(temp, path)

    def completed_units(self, keys: Iterable[str]) -> Dict[str, Dict[str, float]]:
        """The subset of ``keys`` already cached, with their metrics."""
        completed: Dict[str, Dict[str, float]] = {}
        for key in keys:
            metrics = self.get_unit(key)
            if metrics is not None:
                completed[key] = metrics
        return completed
