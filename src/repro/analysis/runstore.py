"""RunStore — named, content-addressed persistence of ResultSets.

The scenario framework produces deterministic
:class:`~repro.analysis.resultset.ResultSet` JSON; this module gives it a
place to live so studies can be tracked longitudinally and interrupted
grids can resume.  A store is a plain directory (``runs/`` by default,
overridable with ``--runs-dir`` or ``$REPRO_RUNS_DIR``)::

    runs/
      objects/<sha256 of payload>.json   # ResultSet JSON, content-addressed
      named/<name>.json                  # name -> object pointer + metadata
      units/<job key>.json               # finished unit-job metrics (resume)

``save`` writes the ResultSet object once per distinct content (re-saving
identical results under a new name just adds a pointer) and ``load``
verifies the content hash on the way back in, so a corrupted object fails
loudly instead of feeding a comparison silently.  The ``units/`` tier is
the resume cache of the execution layer: every finished
:class:`~repro.scenarios.execution.UnitJob` is recorded under its
spec-hash key, and re-running a plan skips the jobs already present.

Usage::

    from repro.analysis.runstore import RunStore
    from repro.scenarios import run_study

    store = RunStore()                          # ./runs
    results = run_study("figure1", store=store) # unit jobs cached as they finish
    store.save(results, "figure1-nightly")
    again = store.load("figure1-nightly")       # identical ResultSet
    for record in store.list():
        print(record.name, record.results, record.object_hash)

Lifecycle: because objects are content-addressed and units are cached for
every executed plan (saved or not), a long-lived store accumulates garbage.
``gc`` drops every object and unit not reachable from ``named/`` (an
object is reachable when a named record points at it; a unit is reachable
when a reachable ResultSet contains the (spec, seed) the unit caches) and
``verify`` re-hashes every stored object and sanity-checks every named
record and cached unit, reporting corruption instead of letting it feed a
comparison.

The same store drives the CLI: ``repro-run study figure1 --save demo``,
``repro-run ls``, ``repro-run show demo``, ``repro-run gc --dry-run``,
``repro-run verify``.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.analysis.resultset import ResultSet

#: Schema tag written into every named record.
SCHEMA = "runstore/v1"

#: Environment override for the default store directory.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

#: Run names become file names; keep them portable.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: gc only sweeps ``.tmp`` files older than this (seconds), so it cannot
#: race the write-then-rename window of a concurrently running grid.
TMP_SWEEP_AGE_S = 3600.0


def default_runs_dir() -> Path:
    """``$REPRO_RUNS_DIR`` when set, else ``./runs``."""
    # reprolint: ok RL005 (store location only; never feeds unit-job results)
    return Path(os.environ.get(RUNS_DIR_ENV) or "runs")


def is_run_name(text: str) -> bool:
    """Whether ``text`` is a valid saved-run name (vs a path or ``-``)."""
    return bool(_NAME_RE.match(text))


def _sha256(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class RunRecord:
    """Metadata of one named, saved run."""

    name: str
    object_hash: str
    results: int
    labels: List[str]
    resultset_name: str
    saved_at: str
    #: Unit jobs in the saved ResultSet's failure manifest (0 = complete).
    failures: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA,
            "name": self.name,
            "object": self.object_hash,
            "results": self.results,
            "labels": list(self.labels),
            "resultset_name": self.resultset_name,
            "saved_at": self.saved_at,
            "failures": self.failures,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunRecord":
        return cls(
            name=str(data["name"]),
            object_hash=str(data["object"]),
            results=int(data.get("results", 0)),
            labels=[str(label) for label in data.get("labels", [])],
            resultset_name=str(data.get("resultset_name", "")),
            saved_at=str(data.get("saved_at", "")),
            failures=int(data.get("failures", 0)),
        )


@dataclass
class GcReport:
    """What one :meth:`RunStore.gc` pass removed (or would remove)."""

    dry_run: bool
    objects_removed: List[str] = field(default_factory=list)
    units_removed: List[str] = field(default_factory=list)
    objects_kept: int = 0
    units_kept: int = 0

    @property
    def removed(self) -> int:
        return len(self.objects_removed) + len(self.units_removed)

    def summary(self) -> str:
        verb = "would remove" if self.dry_run else "removed"
        return (f"{verb} {len(self.objects_removed)} object(s) and "
                f"{len(self.units_removed)} unit(s); kept "
                f"{self.objects_kept} object(s), {self.units_kept} unit(s)")


@dataclass
class StoreProblem:
    """One integrity problem found by :meth:`RunStore.verify`."""

    kind: str  # corrupt-object | missing-object | unreadable-record |
    #            unreadable-unit | unit-key-mismatch
    path: str
    detail: str

    def __str__(self) -> str:
        return f"{self.kind}: {self.path} — {self.detail}"


class RunStore:
    """A directory of saved ResultSets plus the unit-job resume cache."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_runs_dir()
        # A crashed run can strand the temp half of an atomic unit write;
        # sweeping stale ones on open keeps the cache clean without
        # waiting for an explicit gc.
        self.sweep_tmp()

    # -- layout --------------------------------------------------------
    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def named_dir(self) -> Path:
        return self.root / "named"

    @property
    def units_dir(self) -> Path:
        return self.root / "units"

    def _named_path(self, name: str) -> Path:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"invalid run name {name!r}; use letters, digits, '.', '_', '-'"
            )
        return self.named_dir / f"{name}.json"

    # -- named runs ----------------------------------------------------
    def save(self, results: ResultSet, name: str) -> RunRecord:
        """Persist a ResultSet under a name; returns the written record.

        The object file is content-addressed, so saving byte-identical
        results twice stores one object with two pointers.
        """
        path = self._named_path(name)
        payload = results.to_json()
        object_hash = _sha256(payload)
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        object_path = self.objects_dir / f"{object_hash}.json"
        if not object_path.exists():
            object_path.write_text(payload + "\n", encoding="utf-8")
        record = RunRecord(
            name=name,
            object_hash=object_hash,
            results=len(results),
            labels=results.labels(),
            resultset_name=results.name,
            saved_at=datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
            failures=len(getattr(results, "failures", None) or ()),
        )
        self.named_dir.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(record.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return record

    def record(self, name: str) -> RunRecord:
        """The metadata record of a named run."""
        path = self._named_path(name)
        if not path.exists():
            known = ", ".join(record.name for record in self.list()) or "(none)"
            raise KeyError(
                f"no saved run {name!r} in {self.root}; saved runs: {known}"
            )
        return RunRecord.from_dict(json.loads(path.read_text(encoding="utf-8")))

    def load(self, name: str) -> ResultSet:
        """Reload a named ResultSet, verifying its content hash."""
        record = self.record(name)
        object_path = self.objects_dir / f"{record.object_hash}.json"
        if not object_path.exists():
            raise KeyError(
                f"run {name!r} points at missing object {record.object_hash}"
            )
        payload = object_path.read_text(encoding="utf-8").rstrip("\n")
        if _sha256(payload) != record.object_hash:
            raise ValueError(
                f"run {name!r}: object {record.object_hash} failed its "
                f"content-hash check (corrupted store?)"
            )
        return ResultSet.from_json(payload)

    def list(self) -> List[RunRecord]:
        """All named runs, sorted by name."""
        if not self.named_dir.is_dir():
            return []
        records = []
        for path in sorted(self.named_dir.glob("*.json")):
            records.append(RunRecord.from_dict(
                json.loads(path.read_text(encoding="utf-8"))))
        return records

    def delete(self, name: str) -> None:
        """Remove a named pointer (objects are kept: content-addressed)."""
        path = self._named_path(name)
        if not path.exists():
            raise KeyError(f"no saved run {name!r} in {self.root}")
        path.unlink()

    # -- unit-job resume cache -----------------------------------------
    def get_unit(self, key: str) -> Optional[Dict[str, float]]:
        """The cached metrics of a finished unit job, if present.

        An unreadable or torn cache file (interrupted write, full disk) is
        treated as a miss — the job is simply recomputed — never an error.
        """
        path = self.units_dir / f"{key}.json"
        if not path.exists():
            return None
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            return {name: float(value) for name, value in data["metrics"].items()}
        except (ValueError, KeyError, TypeError, AttributeError, OSError):
            return None

    def put_unit(self, key: str, metrics: Dict[str, float]) -> None:
        """Record one finished unit job for future resume.

        Written via a temp file + atomic rename so a kill mid-write leaves
        either the old state or the complete new file, never a torn one.
        """
        self.units_dir.mkdir(parents=True, exist_ok=True)
        payload = {"key": key, "metrics": dict(sorted(metrics.items()))}
        path = self.units_dir / f"{key}.json"
        temp = path.with_suffix(".json.tmp")
        temp.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(temp, path)

    def completed_units(self, keys: Iterable[str]) -> Dict[str, Dict[str, float]]:
        """The subset of ``keys`` already cached, with their metrics."""
        completed: Dict[str, Dict[str, float]] = {}
        for key in keys:
            metrics = self.get_unit(key)
            if metrics is not None:
                completed[key] = metrics
        return completed

    def sweep_tmp(self, older_than_s: float = TMP_SWEEP_AGE_S,
                  dry_run: bool = False) -> List[str]:
        """Remove orphaned ``.tmp`` halves of interrupted unit writes.

        Only files older than ``older_than_s`` are touched — a younger
        one may be the in-flight half of a *concurrent* run's atomic
        write.  Runs on store open and during :meth:`gc`; returns the
        file names removed (or that would be, under ``dry_run``).
        """
        if not self.units_dir.is_dir():
            return []
        removed: List[str] = []
        cutoff = time.time() - older_than_s
        for path in sorted(self.units_dir.glob("*.tmp")):
            try:
                if path.stat().st_mtime > cutoff:
                    continue
            except OSError:  # renamed/removed underneath us: not ours
                continue
            removed.append(path.name)
            if not dry_run:
                try:
                    path.unlink()
                except OSError:
                    removed.pop()
        return removed

    # -- lifecycle: reachability, gc, verify ---------------------------
    def reachable(self) -> Tuple[Set[str], Set[str]]:
        """``(object hashes, unit keys)`` reachable from ``named/``.

        An object is reachable when a named record points at it; a unit is
        reachable when a reachable ResultSet contains the exact (spec,
        seed) the unit caches.  Unit keys are *recomputed* from the stored
        result specs (via the same :class:`~repro.scenarios.execution.
        UnitJob` derivation the execution layer uses), so reachability
        survives renames of the cache files themselves.  Unreadable
        objects contribute no unit keys — run :meth:`verify` first if the
        store may be corrupt.
        """
        from repro.scenarios.execution import UnitJob
        from repro.scenarios.spec import ScenarioSpec

        object_hashes: Set[str] = set()
        unit_keys: Set[str] = set()
        for record in self.list():
            object_hashes.add(record.object_hash)
            object_path = self.objects_dir / f"{record.object_hash}.json"
            if not object_path.exists():
                continue
            try:
                results = ResultSet.from_json(
                    object_path.read_text(encoding="utf-8"))
            except (ValueError, KeyError, TypeError):
                continue
            for result in results:
                try:
                    spec = ScenarioSpec.from_dict(result.spec)
                except (ValueError, KeyError, TypeError):
                    continue
                for replicate in result.replicates:
                    unit_keys.add(UnitJob.for_spec(spec, replicate.seed).key)
        return object_hashes, unit_keys

    def gc(self, dry_run: bool = False) -> GcReport:
        """Drop objects and units unreachable from ``named/``.

        With ``dry_run`` nothing is deleted; the returned
        :class:`GcReport` lists what a real pass would remove.  Leftover
        ``.tmp`` files from interrupted unit writes are swept too, but
        only once older than :data:`TMP_SWEEP_AGE_S` — a younger one may
        be the in-flight half of a concurrent run's atomic write.
        """
        reachable_objects, reachable_units = self.reachable()
        report = GcReport(dry_run=dry_run)
        if self.objects_dir.is_dir():
            for path in sorted(self.objects_dir.glob("*.json")):
                if path.stem in reachable_objects:
                    report.objects_kept += 1
                else:
                    report.objects_removed.append(path.stem)
                    if not dry_run:
                        path.unlink()
        if self.units_dir.is_dir():
            for path in sorted(self.units_dir.glob("*.json")):
                if path.stem in reachable_units:
                    report.units_kept += 1
                else:
                    report.units_removed.append(path.stem)
                    if not dry_run:
                        path.unlink()
            report.units_removed.extend(self.sweep_tmp(dry_run=dry_run))
        return report

    def verify(self) -> List[StoreProblem]:
        """Integrity-check the whole store; an empty list means healthy.

        Every object is re-hashed against its file name (the content
        address), every named record must parse and point at an existing
        object, and every cached unit must parse with a ``key`` matching
        its file name.
        """
        problems: List[StoreProblem] = []
        if self.objects_dir.is_dir():
            for path in sorted(self.objects_dir.glob("*.json")):
                payload = path.read_text(encoding="utf-8").rstrip("\n")
                if _sha256(payload) != path.stem:
                    problems.append(StoreProblem(
                        "corrupt-object", str(path),
                        "content does not hash to its file name"))
        if self.named_dir.is_dir():
            for path in sorted(self.named_dir.glob("*.json")):
                try:
                    record = RunRecord.from_dict(
                        json.loads(path.read_text(encoding="utf-8")))
                except (ValueError, KeyError, TypeError):
                    problems.append(StoreProblem(
                        "unreadable-record", str(path),
                        "named record does not parse"))
                    continue
                object_path = self.objects_dir / f"{record.object_hash}.json"
                if not object_path.exists():
                    problems.append(StoreProblem(
                        "missing-object", str(path),
                        f"points at missing object {record.object_hash}"))
        if self.units_dir.is_dir():
            for path in sorted(self.units_dir.glob("*.json")):
                try:
                    data = json.loads(path.read_text(encoding="utf-8"))
                    key = str(data["key"])
                    for value in data["metrics"].values():
                        float(value)
                except (ValueError, KeyError, TypeError, AttributeError):
                    problems.append(StoreProblem(
                        "unreadable-unit", str(path),
                        "unit cache entry does not parse"))
                    continue
                if key != path.stem:
                    problems.append(StoreProblem(
                        "unit-key-mismatch", str(path),
                        f"entry key {key!r} does not match its file name"))
        return problems
