"""Statistics and reporting helpers shared by experiments and benchmarks."""

from repro.analysis.resultset import ResultSet
from repro.analysis.runstore import RunRecord, RunStore
from repro.analysis.stats import (
    bootstrap_ci,
    cdf_points,
    describe,
    geometric_mean,
    linear_fit,
    mean,
    percentile,
    stdev,
)
from repro.analysis.tables import ResultTable

__all__ = [
    "bootstrap_ci",
    "cdf_points",
    "describe",
    "geometric_mean",
    "linear_fit",
    "mean",
    "percentile",
    "stdev",
    "ResultSet",
    "ResultTable",
    "RunRecord",
    "RunStore",
]
