"""Statistics and reporting helpers shared by experiments and benchmarks."""

from repro.analysis.diff import DiffReport, Tolerance, diff_resultsets
from repro.analysis.resultset import ResultSet
from repro.analysis.runstore import GcReport, RunRecord, RunStore, StoreProblem
from repro.analysis.stats import (
    bootstrap_ci,
    cdf_points,
    describe,
    geometric_mean,
    linear_fit,
    mean,
    percentile,
    stdev,
)
from repro.analysis.tables import ResultTable

__all__ = [
    "bootstrap_ci",
    "cdf_points",
    "describe",
    "diff_resultsets",
    "geometric_mean",
    "linear_fit",
    "mean",
    "percentile",
    "stdev",
    "DiffReport",
    "GcReport",
    "ResultSet",
    "ResultTable",
    "RunRecord",
    "RunStore",
    "StoreProblem",
    "Tolerance",
]
