"""Plain-text result tables.

Every benchmark in :mod:`benchmarks` regenerates one of the paper's
quantitative claims and prints the resulting rows with a :class:`ResultTable`
so the output can be compared against the paper's text directly (and copied
into ``EXPERIMENTS.md``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence


class ResultTable:
    """A small fixed-column text table used for experiment output."""

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: Any, **named: Any) -> None:
        """Append a row either positionally or by column name."""
        if values and named:
            raise ValueError("pass values positionally or by name, not both")
        if named:
            missing = [column for column in self.columns if column not in named]
            if missing:
                raise ValueError(f"missing values for columns: {missing}")
            row = [named[column] for column in self.columns]
        else:
            if len(values) != len(self.columns):
                raise ValueError(
                    f"expected {len(self.columns)} values, got {len(values)}"
                )
            row = list(values)
        self.rows.append([self._format(value) for value in row])

    def as_dicts(self) -> List[Dict[str, str]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def column(self, name: str) -> List[str]:
        """All formatted values of one column."""
        if name not in self.columns:
            raise KeyError(name)
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """Render the table as aligned plain text."""
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(
            column.ljust(width) for column, width in zip(self.columns, widths)
        )
        lines.append(header)
        lines.append("-+-".join("-" * width for width in widths))
        for row in self.rows:
            lines.append(
                " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
            )
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """Render the table as GitHub-flavoured markdown.

        Used by :mod:`repro.analysis.experiments` to regenerate
        ``EXPERIMENTS.md``; the title (if any) becomes a bold caption line.
        """
        lines: List[str] = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            cells = [cell.replace("|", "\\|") for cell in row]
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)

    def print(self) -> None:
        """Print the rendered table (benchmarks call this with ``-s``)."""
        print()
        print(self.render())

    @staticmethod
    def _format(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            magnitude = abs(value)
            if magnitude >= 1000 or magnitude < 0.001:
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ResultTable(title={self.title!r}, rows={len(self.rows)})"
