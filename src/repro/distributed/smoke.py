"""End-to-end distributed chaos smoke: broker + 2 workers + a mid-run kill.

This is the executable proof behind the distributed backend's contract,
run by ``make distributed`` and the CI ``distributed`` job:

1. start a ``repro-broker`` subprocess on an ephemeral localhost port;
2. start two ``repro-worker`` subprocesses sharing one RunStore — the
   first with a scripted ``REPRO_FAULT_PLAN`` that hard-kills it on its
   first leased job (the OOM-killer stand-in), the second clean;
3. run the trimmed fixed-seed ``figure1`` study through
   :class:`~repro.distributed.backend.DistributedBackend` and save it;
4. assert the killed worker actually died (exit 17), the saved run's
   failure manifest is empty (the lost lease was requeued *uncharged*
   and re-run by the surviving worker), and the ResultSet is
   byte-identical to the committed serial golden
   (``tests/goldens/study-figure1.json``).

Because unit jobs are pure functions of ``(spec, seed)``, the worker
kill is invisible in the output — that is the property this script
exists to keep true.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from typing import List, Optional

from repro.analysis.runstore import RunStore
from repro.distributed.backend import DistributedBackend
from repro.scenarios import compile_study, get_study
from repro.scenarios.execution import JobPolicy, execute_plan
from repro.scenarios.goldens import STUDY_TRIMS, golden_path

#: The whole smoke must finish well inside this budget or something hangs.
WATCHDOG_S = 900


def _spawn(args: List[str], env: dict) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m"] + args,
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)


def _terminate(processes: List[subprocess.Popen]) -> None:
    for process in processes:
        if process.poll() is None:
            process.terminate()
    for process in processes:
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Distributed-execution chaos smoke "
                    "(broker + 2 workers, one killed mid-run).")
    parser.add_argument("--runs-dir", default=None, metavar="PATH",
                        help="shared run store (default: a fresh temp dir)")
    parser.add_argument("--save", default="distributed-fig1", metavar="NAME",
                        help="run name to save the study under")
    args = parser.parse_args(argv)

    if hasattr(signal, "alarm"):
        signal.alarm(WATCHDOG_S)

    runs_dir = args.runs_dir or tempfile.mkdtemp(prefix="repro-distributed-")
    base_env = dict(os.environ)
    base_env.pop("REPRO_FAULT_PLAN", None)

    processes: List[subprocess.Popen] = []
    try:
        broker = _spawn(["repro.distributed.broker",
                         "--listen", "127.0.0.1:0"], base_env)
        processes.append(broker)
        # runpy may emit a RuntimeWarning line before the banner; scan.
        address = None
        for _ in range(20):
            line = broker.stdout.readline()
            if not line:
                break
            if line.startswith("repro-broker listening on "):
                address = line.strip().rsplit(" ", 1)[-1]
                break
        if address is None:
            print("smoke: FAIL - broker never printed its address",
                  file=sys.stderr)
            return 1
        print(f"smoke: broker on {address}", flush=True)

        # Worker A inherits a fault plan killing it on its first leased
        # job; worker B is clean.  A starts first so it owns the first
        # lease when the study is submitted.
        kill_env = dict(base_env)
        kill_env["REPRO_FAULT_PLAN"] = json.dumps(
            {"faults": [{"match": "", "attempts": [1], "action": "kill"}]})
        doomed = _spawn(["repro.distributed.worker", "--broker", address,
                         "--name", "doomed", "--runs-dir", runs_dir],
                        kill_env)
        processes.append(doomed)
        time.sleep(1.0)
        survivor = _spawn(["repro.distributed.worker", "--broker", address,
                           "--name", "survivor", "--runs-dir", runs_dir],
                          base_env)
        processes.append(survivor)

        plan = compile_study(get_study("figure1"),
                             member_overrides=STUDY_TRIMS["figure1"])
        store = RunStore(runs_dir)
        results = execute_plan(
            plan,
            backend=DistributedBackend(address, run_id="smoke-fig1"),
            store=store, progress=True,
            policy=JobPolicy(max_retries=1, keep_going=True))
        record = store.save(results, args.save)

        doomed_rc = doomed.wait(timeout=30)
        if doomed_rc != 17:
            print(f"smoke: FAIL - the doomed worker exited {doomed_rc}, "
                  f"expected the injected kill (17)", file=sys.stderr)
            return 1
        if record.failures != 0 or results.failures:
            print(f"smoke: FAIL - failure manifest not empty: "
                  f"{results.failures}", file=sys.stderr)
            return 1
        golden = golden_path("study", "figure1").read_text(encoding="utf-8")
        if results.to_json() + "\n" != golden:
            print("smoke: FAIL - distributed figure1 is not byte-identical "
                  "to the serial golden", file=sys.stderr)
            return 1
        print(f"smoke: OK - {len(results)} results, empty manifest, "
              f"byte-identical to the golden after a mid-run worker kill "
              f"(saved as {record.name!r} under {store.root})", flush=True)
        return 0
    finally:
        _terminate(processes)
        if hasattr(signal, "alarm"):
            signal.alarm(0)


if __name__ == "__main__":
    raise SystemExit(main())
