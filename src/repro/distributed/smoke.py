"""End-to-end distributed chaos smoke: worker kills and a broker kill.

This is the executable proof behind the distributed backend's contract,
run by ``make distributed`` and the CI ``distributed`` job.  Two stages:

**Stage 1 — worker kill** (``--stage worker``):

1. start a ``repro-broker`` subprocess on an ephemeral localhost port;
2. start two ``repro-worker`` subprocesses sharing one RunStore — the
   first with a scripted ``REPRO_FAULT_PLAN`` that hard-kills it on its
   first leased job (the OOM-killer stand-in), the second clean;
3. run the trimmed fixed-seed ``figure1`` study through
   :class:`~repro.distributed.backend.DistributedBackend` and save it;
4. assert the killed worker actually died (exit 17), the saved run's
   failure manifest is empty (the lost lease was requeued *uncharged*
   and re-run by the surviving worker), and the ResultSet is
   byte-identical to the committed serial golden
   (``tests/goldens/study-figure1.json``).

**Stage 2 — broker kill + journal recovery** (``--stage broker``):

1. start a journaled ``repro-broker`` on a unix socket, plus two clean
   workers on a fresh RunStore;
2. submit the same trimmed ``figure1``; after the first completion
   streams back, ``SIGKILL`` the broker mid-run;
3. restart the broker against the same journal and socket path and
   attach two fresh workers; the client backend reconnects and
   re-attaches to the journaled run by id;
4. assert the run completes with an empty failure manifest, the output
   is byte-identical to the committed serial golden, and the retired
   run's journal file was garbage-collected.

Because unit jobs are pure functions of ``(spec, seed)``, both kills are
invisible in the output — that is the property this script exists to
keep true.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional

from repro.analysis.runstore import RunStore
from repro.distributed.backend import DistributedBackend
from repro.scenarios import compile_study, get_study
from repro.scenarios.execution import JobFailure, JobPolicy, execute_plan
from repro.scenarios.goldens import STUDY_TRIMS, golden_path

#: The whole smoke must finish well inside this budget or something hangs.
WATCHDOG_S = 1500


def _spawn(args: List[str], env: dict) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m"] + args,
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)


def _terminate(processes: List[subprocess.Popen]) -> None:
    for process in processes:
        if process.poll() is None:
            process.terminate()
    for process in processes:
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


def _read_banner(process: subprocess.Popen, prefix: str) -> Optional[str]:
    """The address from a server's listening banner (scan a few lines)."""
    for _ in range(20):
        line = process.stdout.readline()
        if not line:
            return None
        if line.startswith(prefix):
            return line.strip().rsplit(" ", 1)[-1]
    return None


def _figure1_plan():
    return compile_study(get_study("figure1"),
                         member_overrides=STUDY_TRIMS["figure1"])


def _check_golden(results) -> bool:
    golden = golden_path("study", "figure1").read_text(encoding="utf-8")
    return results.to_json() + "\n" == golden


def worker_kill_stage(runs_dir: Optional[str], save: str) -> int:
    runs_dir = runs_dir or tempfile.mkdtemp(prefix="repro-distributed-")
    base_env = dict(os.environ)
    base_env.pop("REPRO_FAULT_PLAN", None)

    processes: List[subprocess.Popen] = []
    try:
        broker = _spawn(["repro.distributed.broker",
                         "--listen", "127.0.0.1:0", "--no-journal"],
                        base_env)
        processes.append(broker)
        address = _read_banner(broker, "repro-broker listening on ")
        if address is None:
            print("smoke: FAIL - broker never printed its address",
                  file=sys.stderr)
            return 1
        print(f"smoke: broker on {address}", flush=True)

        # Worker A inherits a fault plan killing it on its first leased
        # job; worker B is clean.  A starts first so it owns the first
        # lease when the study is submitted.
        kill_env = dict(base_env)
        kill_env["REPRO_FAULT_PLAN"] = json.dumps(
            {"faults": [{"match": "", "attempts": [1], "action": "kill"}]})
        doomed = _spawn(["repro.distributed.worker", "--broker", address,
                         "--name", "doomed", "--runs-dir", runs_dir],
                        kill_env)
        processes.append(doomed)
        time.sleep(1.0)
        survivor = _spawn(["repro.distributed.worker", "--broker", address,
                           "--name", "survivor", "--runs-dir", runs_dir],
                          base_env)
        processes.append(survivor)

        plan = _figure1_plan()
        store = RunStore(runs_dir)
        results = execute_plan(
            plan,
            backend=DistributedBackend(address, run_id="smoke-fig1"),
            store=store, progress=True,
            policy=JobPolicy(max_retries=1, keep_going=True))
        record = store.save(results, save)

        doomed_rc = doomed.wait(timeout=30)
        if doomed_rc != 17:
            print(f"smoke: FAIL - the doomed worker exited {doomed_rc}, "
                  f"expected the injected kill (17)", file=sys.stderr)
            return 1
        if record.failures != 0 or results.failures:
            print(f"smoke: FAIL - failure manifest not empty: "
                  f"{results.failures}", file=sys.stderr)
            return 1
        if not _check_golden(results):
            print("smoke: FAIL - distributed figure1 is not byte-identical "
                  "to the serial golden", file=sys.stderr)
            return 1
        print(f"smoke: OK - {len(results)} results, empty manifest, "
              f"byte-identical to the golden after a mid-run worker kill "
              f"(saved as {record.name!r} under {store.root})", flush=True)
        return 0
    finally:
        _terminate(processes)


def broker_kill_stage(runs_dir: Optional[str], save: str) -> int:
    work_dir = tempfile.mkdtemp(prefix="repro-broker-restart-")
    runs_dir = runs_dir or os.path.join(work_dir, "runs")
    journal_dir = os.path.join(runs_dir, "journal")
    # A unix socket keeps the address stable across the broker restart.
    address = f"unix:{os.path.join(work_dir, 'broker.sock')}"
    base_env = dict(os.environ)
    base_env.pop("REPRO_FAULT_PLAN", None)
    broker_args = ["repro.distributed.broker", "--listen", address,
                   "--journal", journal_dir, "--lease-ttl", "5"]
    worker_args = ["repro.distributed.worker", "--broker", address,
                   "--runs-dir", runs_dir]

    processes: List[subprocess.Popen] = []

    def _start_broker() -> Optional[subprocess.Popen]:
        broker = _spawn(broker_args, base_env)
        processes.append(broker)
        if _read_banner(broker, "repro-broker listening on ") is None:
            print("smoke: FAIL - broker never printed its address",
                  file=sys.stderr)
            return None
        return broker

    def _start_workers(generation: str) -> None:
        for index in range(2):
            worker = _spawn(worker_args
                            + ["--name", f"{generation}-{index}"], base_env)
            processes.append(worker)

    try:
        broker = _start_broker()
        if broker is None:
            return 1
        print(f"smoke: journaled broker on {address}", flush=True)
        _start_workers("gen1")

        plan = _figure1_plan()
        first_done = threading.Event()
        completed: Dict[str, Dict[str, float]] = {}

        def _on_result(key: str, metrics: Dict[str, float]) -> None:
            completed[key] = metrics
            first_done.set()

        backend = DistributedBackend(address, run_id="smoke-restart",
                                     reattach=True, reattach_timeout=300.0)
        failures: Dict[str, JobFailure] = {}
        outcome: Dict[str, object] = {}

        def _drive() -> None:
            try:
                outcome["fresh"] = backend.execute(
                    plan, on_result=_on_result,
                    policy=JobPolicy(keep_going=True), failures=failures)
            except BaseException as error:  # noqa: BLE001 - reported below
                outcome["error"] = error

        driver = threading.Thread(target=_drive, name="smoke-driver",
                                  daemon=True)
        driver.start()

        if not first_done.wait(timeout=600):
            print("smoke: FAIL - no job completed before the kill window",
                  file=sys.stderr)
            return 1
        if not driver.is_alive():
            print("smoke: FAIL - the run finished before the broker could "
                  "be killed mid-run (trims too small?)", file=sys.stderr)
            return 1
        done_at_kill = len(completed)
        broker.send_signal(signal.SIGKILL)
        broker.wait(timeout=30)
        print(f"smoke: SIGKILLed the broker after {done_at_kill} "
              f"completion(s); restarting on the same journal", flush=True)

        if _start_broker() is None:
            return 1
        _start_workers("gen2")

        driver.join(timeout=900)
        if driver.is_alive():
            print("smoke: FAIL - the run never completed after the broker "
                  "restart", file=sys.stderr)
            return 1
        if "error" in outcome:
            print(f"smoke: FAIL - client error across the restart: "
                  f"{outcome['error']!r}", file=sys.stderr)
            return 1
        if failures:
            print(f"smoke: FAIL - failure manifest not empty: "
                  f"{sorted(failures)}", file=sys.stderr)
            return 1
        results = plan.assemble(outcome["fresh"], failures=failures)
        if not _check_golden(results):
            print("smoke: FAIL - post-restart figure1 is not byte-identical "
                  "to the serial golden", file=sys.stderr)
            return 1
        store = RunStore(runs_dir)
        record = store.save(results, save)
        # Retirement garbage-collects the run's journal file; the delete
        # races the client's run-done receipt, so poll briefly.
        for _ in range(50):
            leftover = [name for name in (os.listdir(journal_dir)
                                          if os.path.isdir(journal_dir)
                                          else [])
                        if name.endswith(".jsonl")]
            if not leftover:
                break
            time.sleep(0.2)
        else:
            print(f"smoke: FAIL - journal not garbage-collected after "
                  f"retirement: {leftover}", file=sys.stderr)
            return 1
        print(f"smoke: OK - {len(results)} results, empty manifest, "
              f"byte-identical to the golden across a broker SIGKILL + "
              f"journal recovery ({done_at_kill} pre-kill completion(s); "
              f"saved as {record.name!r} under {store.root})", flush=True)
        return 0
    finally:
        _terminate(processes)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Distributed-execution chaos smoke: a mid-run worker "
                    "kill, then a mid-run broker SIGKILL + journal "
                    "recovery.")
    parser.add_argument("--runs-dir", default=None, metavar="PATH",
                        help="shared run store (default: a fresh temp dir "
                             "per stage)")
    parser.add_argument("--save", default="distributed-fig1", metavar="NAME",
                        help="run name to save the study under")
    parser.add_argument("--stage", choices=("worker", "broker", "all"),
                        default="all",
                        help="which chaos stage(s) to run (default: all)")
    args = parser.parse_args(argv)

    if hasattr(signal, "alarm"):
        signal.alarm(WATCHDOG_S)
    try:
        if args.stage in ("worker", "all"):
            code = worker_kill_stage(args.runs_dir, args.save)
            if code != 0:
                return code
        if args.stage in ("broker", "all"):
            code = broker_kill_stage(args.runs_dir,
                                     args.save + "-restart")
            if code != 0:
                return code
        return 0
    finally:
        if hasattr(signal, "alarm"):
            signal.alarm(0)


if __name__ == "__main__":
    raise SystemExit(main())
