"""``repro-serve``: an always-on simulation service over the broker protocol.

The service is a :class:`~repro.distributed.broker.BrokerServer` (workers
attach to it exactly as to a plain broker) that additionally accepts
*study submissions* and owns a :class:`~repro.analysis.runstore.RunStore`:

- ``submit-study`` — compile a registered study server-side (with the
  same seed/replicates/member/override knobs as the CLI), resume
  already-cached unit jobs from the store, enqueue the rest, stream
  ``progress``/``job-failed`` events to the submitting client, and on
  completion assemble the ResultSet, persist it under a name, and reply
  ``study-done`` with the full result document.
- ``fetch-run`` — serve a finished ResultSet (and its RunRecord) by name.
- ``list-runs`` — enumerate saved runs.

Unit metrics are written into the service's store *as workers report
them*, so an interrupted study resumes from the last completed job and
concurrent studies share work through the content-addressed unit cache.
Studies always run in ``keep_going`` mode: a job that exhausts its
retries lands in the saved ResultSet's failure manifest (graceful
degradation) instead of aborting the service's run.

The service journals its queue under ``<runs>/journal`` (see
:mod:`repro.distributed.journal`): a killed service replays the journal
on restart, flushes every already-settled unit result into the store,
and resumes the outstanding jobs — so the *next* ``submit-study`` for
the same study picks up exactly where the dead one stopped.  Finished
runs are retired (queue entry dropped, journal file deleted) as soon as
their ``study-done`` reply is sent, so an always-on service stays flat.

Run as a process::

    repro-serve --listen 127.0.0.1:7480 --runs-dir runs
"""

from __future__ import annotations

import argparse
import itertools
import os
from typing import Dict, List, Optional, Union

from repro.analysis.runstore import RunStore
from repro.distributed.broker import DEFAULT_LEASE_TTL_S, BrokerServer
from repro.distributed.journal import JournalDir
from repro.distributed.protocol import FrameError, send_frame
from repro.scenarios.execution import JobFailure, JobPolicy

_STUDY_SEQ = itertools.count(1)


class ServiceServer(BrokerServer):
    """Broker plus study compilation, result persistence and retrieval.

    ``journal`` is ``True`` (journal under ``<store>/journal``), a path
    or :class:`~repro.distributed.journal.JournalDir`, or ``False`` to
    run without durability.
    """

    PROG = "repro-serve"

    def __init__(self, listen: str = "127.0.0.1:0",
                 runs_dir: Optional[str] = None,
                 lease_ttl: float = DEFAULT_LEASE_TTL_S,
                 journal: Union[bool, str, JournalDir] = True,
                 orphan_ttl: Optional[float] = None) -> None:
        self.store = RunStore(runs_dir)
        journal_dir: Optional[JournalDir] = None
        if journal is True:
            journal_dir = JournalDir(self.store.root / "journal")
        elif isinstance(journal, JournalDir):
            journal_dir = journal
        elif journal:
            journal_dir = JournalDir(journal)
        super().__init__(listen=listen, lease_ttl=lease_ttl,
                         journal=journal_dir, orphan_ttl=orphan_ttl)
        # Worker results stay durable in the unit cache even when the
        # submitting client (or the submit-study loop) is gone.
        self.queue.on_complete = self.store.put_unit

    def _after_recover(self, run_ids: List[str]) -> None:
        """Flush journal-replayed unit results into the store.

        Settled metrics recorded before the crash become cache hits for
        the re-dispatched jobs and for the next ``submit-study``.
        """
        flushed = 0
        for run_id in run_ids:
            for key, metrics in self.queue.run_results(run_id).items():
                self.store.put_unit(key, metrics)
                flushed += 1
        if flushed:
            print(f"{self.PROG}: flushed {flushed} recovered unit "
                  f"result(s) into {self.store.root}", flush=True)

    # -- extra message types -------------------------------------------
    def _handle_extra(self, conn, kind: str, message: Dict[str, object]) -> bool:
        if kind == "submit-study":
            self._handle_submit_study(conn, message)
            return True
        if kind == "fetch-run":
            self._handle_fetch_run(conn, message)
            return True
        if kind == "list-runs":
            send_frame(conn, {"type": "runs",
                              "runs": [record.to_dict()
                                       for record in self.store.list()]})
            return True
        return False

    def _handle_fetch_run(self, conn, message: Dict[str, object]) -> None:
        name = str(message.get("name", ""))
        try:
            results = self.store.load(name)
            record = self.store.record(name)
        except (KeyError, ValueError) as error:
            send_frame(conn, {"type": "error",
                              "error": error.args[0] if error.args
                              else str(error)})
            return
        send_frame(conn, {"type": "run", "name": name,
                          "record": record.to_dict(),
                          "results": results.to_dict()})

    def _handle_submit_study(self, conn, message: Dict[str, object]) -> None:
        from repro.scenarios import compile_study, get_study

        study_name = str(message.get("study", ""))
        try:
            study = get_study(study_name)
            members = message.get("members")
            plan = compile_study(
                study,
                seed=message.get("seed"),  # type: ignore[arg-type]
                replicates=message.get("replicates"),  # type: ignore[arg-type]
                members=[str(m) for m in members] if members else None,  # type: ignore[union-attr]
                member_overrides=dict(message.get("member_overrides") or {}),  # type: ignore[arg-type]
            )
        except (KeyError, ValueError, TypeError) as error:
            send_frame(conn, {"type": "error",
                              "error": error.args[0] if error.args
                              else str(error)})
            return

        policy = JobPolicy(
            max_retries=int(message.get("retries", 0)),  # type: ignore[arg-type]
            timeout_s=message.get("job_timeout"),  # type: ignore[arg-type]
            keep_going=True,
        )
        completed: Dict[str, Dict[str, float]] = {}
        if message.get("resume", True):
            completed = self.store.completed_units(plan.job_keys())
        pending = [job for job in plan.jobs if job.key not in completed]
        run_id = f"study-{study_name}-{os.getpid()}-{next(_STUDY_SEQ)}"
        events = self.queue.submit(
            run_id,
            [{"key": job.key, "spec": job.spec.to_dict(), "seed": job.seed,
              "scenario": job.spec.name} for job in pending],
            policy=policy)
        send_frame(conn, {"type": "accepted", "run": run_id,
                          "jobs": len(plan.jobs), "cached": len(completed)})

        total = len(plan.jobs)
        done = total - len(pending)
        failures: Dict[str, JobFailure] = {}
        try:
            while True:
                event = events.get()
                kind = str(event.get("type", ""))
                if kind == "job-done":
                    key = str(event["key"])
                    metrics = dict(event.get("metrics") or {})  # type: ignore[arg-type]
                    completed[key] = metrics
                    self.store.put_unit(key, metrics)
                    done += 1
                    send_frame(conn, {"type": "progress", "done": done,
                                      "total": total, "key": key,
                                      "cached": bool(event.get("cached"))})
                elif kind == "job-failed":
                    failure = JobFailure.from_dict(
                        event.get("failure") or {})  # type: ignore[arg-type]
                    failures[failure.key] = failure
                    done += 1
                    send_frame(conn, event)
                elif kind == "run-done":
                    break
        except (FrameError, OSError):
            self.queue.cancel(run_id)
            raise

        # The run's lifecycle ends here: retire it (and its journal)
        # instead of leaking a _Run per study in an always-on service.
        self.queue.retire(run_id)
        results = plan.assemble(completed, failures=failures)
        save_name = str(message.get("save") or run_id)
        record = self.store.save(results, save_name)
        send_frame(conn, {"type": "study-done", "name": save_name,
                          "run": run_id, "failures": len(failures),
                          "record": record.to_dict(),
                          "results": results.to_dict()})


_EPILOG = """\
journal & recovery:
  Unless --no-journal is given, the queue is journaled under --journal
  PATH (default: <runs-dir>/journal) with the broker's write-ahead
  discipline: every submit / lease grant / attempt charge / complete /
  fail / cancel is appended per run.  A killed service replays the
  journal on restart, flushes every already-settled unit result into
  the store, and re-queues the jobs that were in flight (lost leases
  come back uncharged), so the next submit-study of the same study
  resumes from the unit cache instead of starting over.  A run's
  journal file is deleted when the run retires (study-done sent, or
  the run cancelled and drained).

heartbeat-ack:
  Worker heartbeats are answered with heartbeat-ack {ok}; ok=false
  tells the worker its lease was reaped so it abandons the orphaned
  attempt instead of computing a result the queue would drop.
"""


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Always-on simulation service: broker + study "
                    "submission + result store (see repro.distributed).",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--listen", default="127.0.0.1:0", metavar="ADDR",
                        help="HOST:PORT or unix:/path (default: 127.0.0.1 "
                             "on an ephemeral port)")
    parser.add_argument("--runs-dir", default=None, metavar="PATH",
                        help="run-store directory (default: ./runs or "
                             "$REPRO_RUNS_DIR)")
    parser.add_argument("--lease-ttl", type=float,
                        default=DEFAULT_LEASE_TTL_S, metavar="S",
                        help="seconds a lease survives without a heartbeat")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="write-ahead journal directory (default: "
                             "<runs-dir>/journal; see epilog)")
    parser.add_argument("--no-journal", action="store_true",
                        help="run without a journal: a service crash "
                             "loses every queued run")
    args = parser.parse_args(argv)
    journal: Union[bool, str] = True
    if args.no_journal:
        journal = False
    elif args.journal:
        journal = args.journal
    server = ServiceServer(listen=args.listen, runs_dir=args.runs_dir,
                           lease_ttl=args.lease_ttl, journal=journal)
    print(f"repro-serve listening on {server.address} "
          f"(store: {server.store.root})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
