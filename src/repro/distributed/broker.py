"""``repro-broker``: the job queue at the centre of distributed execution.

The broker holds submitted runs — each an ordered list of seed-pinned
unit jobs plus a :class:`~repro.scenarios.execution.JobPolicy` — and
dispatches them to workers under *leases*: a leased job belongs to one
worker until it reports ``complete``/``fail`` or its lease expires
(missed heartbeats, dropped connection).  The accounting mirrors the
in-process supervised backends exactly:

- a **reported failure** charges one attempt; below the policy's budget
  the job is requeued after the policy's deterministic
  :meth:`~repro.scenarios.execution.JobPolicy.backoff_delay`, past it the
  job becomes a :class:`~repro.scenarios.execution.JobFailure` in the
  run's manifest;
- a **lost lease** (worker disconnect or expiry) requeues the job
  *uncharged* at the same attempt number — infrastructure failures never
  eat into a job's retry budget, matching how the pool backend requeues
  innocents after a hung-worker kill;
- a **duplicate completion** for an already-settled lease is dropped
  (first report wins), so a worker that was presumed dead but limps back
  cannot double-report.

Because unit jobs are pure functions of ``(spec, seed)``, any sequence of
retries, requeues and worker deaths converges on the same metrics, and
the submitting client's merge-by-key output is byte-identical to a
serial run.

Durability and lifecycle (see :mod:`repro.distributed.journal`): with a
journal configured, every transition is appended to a per-run
write-ahead file and replayed on start, so ``kill -9`` mid-run resumes
with in-flight leases requeued uncharged; a client that reconnects and
re-submits the same run id *re-attaches* and receives every settled
event again before the live ones.  Settled runs are *retired* — removed
from the queue and their journal deleted — once their ``run-done`` event
is delivered (or the run is cancelled and drained), so an always-on
broker does not leak a ``_Run`` per study.  Every worker heartbeat is
answered with a ``heartbeat-ack``; ``ok=false`` tells the worker its
lease was reaped so it abandons the orphaned attempt.

The queue logic (:class:`BrokerQueue`) is pure threads-and-state with no
sockets, so the lease/retry/accounting behaviour is unit-testable
without a network; :class:`BrokerServer` wraps it in a thread-per-
connection frame loop.  Run as a process::

    repro-broker --listen 127.0.0.1:7480
    repro-broker --listen unix:/tmp/repro-broker.sock --journal runs/journal
"""

from __future__ import annotations

import argparse
import heapq
import itertools
import sys
import threading
import time
from dataclasses import dataclass, field
from queue import Empty, Queue
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.distributed.journal import SCHEMA_VERSION, JournalDir, RunJournal
from repro.distributed.protocol import (
    FrameError,
    create_listener,
    listener_address,
    recv_frame,
    send_frame,
)
from repro.scenarios.execution import JobFailure, JobPolicy

#: Seconds a lease lives without a heartbeat before the job is requeued.
DEFAULT_LEASE_TTL_S = 15.0

_POLICY_FIELDS = ("max_retries", "timeout_s", "keep_going", "backoff_base_s",
                  "backoff_factor", "backoff_max_s", "backoff_jitter")


def policy_to_dict(policy: JobPolicy) -> Dict[str, object]:
    """A JobPolicy as plain wire data."""
    return {name: getattr(policy, name) for name in _POLICY_FIELDS}


def policy_from_dict(data: Optional[Dict[str, object]]) -> JobPolicy:
    """Rebuild a JobPolicy from wire data (missing fields keep defaults)."""
    data = data or {}
    kwargs = {name: data[name] for name in _POLICY_FIELDS if name in data}
    return JobPolicy(**kwargs)  # type: ignore[arg-type]


@dataclass
class _Job:
    """One unit job inside a submitted run."""

    key: str
    spec: Dict[str, object]
    seed: int
    scenario: str
    priority: int
    state: str = "pending"  # pending | leased | done | failed
    failed_attempts: int = 0
    first_dispatch: Optional[float] = None


@dataclass
class _Run:
    """One submitted run: its jobs, policy, event stream and lifecycle."""

    run_id: str
    policy: JobPolicy
    order: int = 0
    jobs: Dict[str, _Job] = field(default_factory=dict)
    events: "Queue[Dict[str, object]]" = field(default_factory=Queue)
    open_jobs: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: bool = False
    #: True once run-done has been emitted (all jobs settled).
    done: bool = False
    #: Bumped on every (re)attach; a stale stream's epoch no longer
    #: matches, so its cancel-on-dead-client cannot kill the run.
    attach_seq: int = 0
    attached: bool = True
    detached_at: float = 0.0
    #: key -> (metrics, cached); kept until retirement so a re-attaching
    #: client can be replayed every settled event.
    results: Dict[str, Tuple[Dict[str, float], bool]] = field(
        default_factory=dict)
    failures: Dict[str, Dict[str, object]] = field(default_factory=dict)
    journal: Optional[RunJournal] = None


@dataclass
class _Lease:
    """One dispatched job: who holds it and until when."""

    lease_id: str
    run_id: str
    key: str
    worker: str
    attempt: int
    deadline: float


class BrokerQueue:
    """The broker's job queue and lease table (no sockets, fully locked).

    All methods are thread-safe.  ``lease`` blocks up to ``wait_s`` for a
    ready job and returns a wire-shaped payload dict (``job`` / ``idle``
    / ``stop``), so the server can forward it verbatim.

    ``journal`` (a :class:`~repro.distributed.journal.JournalDir`)
    enables the write-ahead journal; :meth:`recover` replays it.
    ``orphan_ttl`` bounds how long a finished-or-clientless run may sit
    unattached before :meth:`sweep_orphans` retires it.
    """

    def __init__(self, lease_ttl: float = DEFAULT_LEASE_TTL_S,
                 journal: Optional[JournalDir] = None,
                 orphan_ttl: Optional[float] = None) -> None:
        self.lease_ttl = float(lease_ttl)
        self.orphan_ttl = (float(orphan_ttl) if orphan_ttl is not None
                           else max(60.0, 4.0 * self.lease_ttl))
        #: Optional hook called with (key, metrics) on every non-cached
        #: completion; the service points this at its RunStore so worker
        #: results stay durable even if the submitting client is gone.
        self.on_complete: Optional[
            Callable[[str, Dict[str, float]], None]] = None
        self._journal = journal
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._runs: Dict[str, _Run] = {}
        #: (ready_at, run_seq, priority, seq, run_id, key) — plan order
        #: within a run, submission order across runs, backoff-aware.
        self._heap: List[tuple] = []
        self._leases: Dict[str, _Lease] = {}
        self._run_seq = itertools.count()
        self._run_order: Dict[str, int] = {}
        self._seq = itertools.count()
        self._lease_seq = itertools.count(1)
        self._stopping = False

    # -- submission ----------------------------------------------------
    def submit(self, run_id: str, jobs: Sequence[Dict[str, object]],
               policy: Optional[JobPolicy] = None) -> "Queue[Dict[str, object]]":
        """Enqueue a run's jobs; returns its event stream.

        ``jobs`` entries are dicts with ``key``, ``spec`` (a ScenarioSpec
        ``to_dict``), ``seed`` and ``scenario``.  An empty job list
        completes immediately (the ``run-done`` event is pre-queued).
        """
        with self._lock:
            if run_id in self._runs:
                raise ValueError(f"run {run_id!r} already submitted")
            order = next(self._run_seq)
            run = _Run(run_id=run_id, policy=policy or JobPolicy(),
                       order=order)
            self._runs[run_id] = run
            self._run_order[run_id] = order
            for index, entry in enumerate(jobs):
                key = str(entry["key"])
                if key in run.jobs:
                    continue  # plans deduplicate; tolerate a duplicate key
                run.jobs[key] = _Job(
                    key=key,
                    spec=dict(entry["spec"]),  # type: ignore[arg-type]
                    seed=int(entry["seed"]),  # type: ignore[arg-type]
                    scenario=str(entry.get("scenario", "")),
                    priority=index,
                )
                run.open_jobs += 1
            self._journal_open(run)
            self._journal_append(run, {
                "v": SCHEMA_VERSION, "type": "submit", "run": run_id,
                "order": order, "policy": policy_to_dict(run.policy),
                "jobs": [{"key": job.key, "spec": job.spec,
                          "seed": job.seed, "scenario": job.scenario}
                         for job in run.jobs.values()],
            })
            for job in run.jobs.values():
                self._push(run_id, job, ready_at=0.0)
            if run.open_jobs == 0:
                self._finish_run(run)
            self._ready.notify_all()
            return run.events

    def attach(self, run_id: str,
               jobs: Optional[Sequence[Dict[str, object]]] = None,
               ) -> "Queue[Dict[str, object]]":
        """Re-attach a client to a live run after a lost connection.

        The re-submitted job keys must all belong to the run (a *different*
        job set under a reused run id is still rejected).  Returns a fresh
        event stream primed with a ``job-done``/``job-failed`` event for
        every already-settled job (and ``run-done`` if the run finished
        while no client was attached), then the live events follow.  The
        previous stream's epoch is invalidated, so a zombie stream thread
        can no longer cancel the run.
        """
        with self._lock:
            run = self._runs.get(run_id)
            if run is None:
                raise ValueError(f"unknown run {run_id!r}")
            if run.cancelled:
                raise ValueError(f"run {run_id!r} was cancelled")
            if jobs is not None:
                unknown = [str(entry["key"]) for entry in jobs
                           if str(entry["key"]) not in run.jobs]
                if unknown:
                    raise ValueError(
                        f"run {run_id!r} already submitted with a "
                        f"different job set ({len(unknown)} unknown "
                        f"key(s), e.g. {unknown[0]!r})")
            run.attach_seq += 1
            run.attached = True
            events: "Queue[Dict[str, object]]" = Queue()
            for job in sorted(run.jobs.values(), key=lambda j: j.priority):
                if job.key in run.results:
                    metrics, was_cached = run.results[job.key]
                    events.put({"type": "job-done", "key": job.key,
                                "metrics": dict(metrics), "worker": "",
                                "cached": was_cached})
                elif job.key in run.failures:
                    events.put({"type": "job-failed", "key": job.key,
                                "failure": dict(run.failures[job.key])})
            if run.done:
                events.put({"type": "run-done", "run": run.run_id,
                            "completed": run.completed,
                            "failed": run.failed})
            run.events = events
            return events

    def cancel(self, run_id: str, epoch: Optional[int] = None) -> None:
        """Drop a run: revoke its leases, drain its pending jobs, retire.

        ``epoch`` (from :meth:`stream_epoch`) makes the cancel conditional:
        a stale stream whose client re-attached since cannot cancel the
        run out from under the new stream.
        """
        with self._ready:
            run = self._runs.get(run_id)
            if run is None:
                return
            if epoch is not None and epoch != run.attach_seq:
                return
            self._cancel_locked(run)
            self._ready.notify_all()

    # -- dispatch ------------------------------------------------------
    def lease(self, worker: str, wait_s: float = 0.0) -> Dict[str, object]:
        """The next ready job for ``worker``; blocks up to ``wait_s``.

        Returns ``{"type": "job", ...}`` with the lease id, spec, seed,
        attempt number and timeout, ``{"type": "idle"}`` when nothing
        became ready in time, or ``{"type": "stop"}`` when the broker is
        shutting down.
        """
        deadline = time.monotonic() + max(0.0, wait_s)
        with self._ready:
            while True:
                if self._stopping:
                    return {"type": "stop"}
                now = time.monotonic()
                self._expire_locked(now)
                entry = self._pop_ready(now)
                if entry is not None:
                    return self._grant(entry, worker, now)
                remaining = deadline - now
                if remaining <= 0:
                    return {"type": "idle"}
                if self._heap:
                    remaining = min(remaining, self._heap[0][0] - now)
                self._ready.wait(timeout=max(0.01, remaining))

    def heartbeat(self, lease_id: str) -> bool:
        """Extend a live lease; ``False`` when it is gone (reaped lease).

        The server forwards the verdict as a ``heartbeat-ack`` so the
        worker can abandon an attempt whose lease was requeued.
        """
        with self._lock:
            lease = self._leases.get(lease_id)
            if lease is None:
                return False
            lease.deadline = time.monotonic() + self.lease_ttl
            return True

    # -- settlement ----------------------------------------------------
    def complete(self, lease_id: str, metrics: Dict[str, float],
                 cached: bool = False) -> bool:
        """Settle a lease with metrics; ``False`` drops a stale duplicate."""
        with self._lock:
            lease = self._leases.pop(lease_id, None)
            if lease is None:
                return False  # expired/duplicate: the first report won
            run = self._runs[lease.run_id]
            job = run.jobs[lease.key]
            job.state = "done"
            run.open_jobs -= 1
            run.completed += 1
            run.results[job.key] = (dict(metrics), bool(cached))
            self._journal_append(run, {"type": "done", "key": job.key,
                                       "metrics": dict(metrics),
                                       "cached": bool(cached)})
            if self.on_complete is not None and not cached:
                try:
                    self.on_complete(job.key, dict(metrics))
                except Exception:  # noqa: BLE001 - a sick store must not
                    pass  # take the broker down; the journal still has it
            if not run.cancelled:
                run.events.put({
                    "type": "job-done", "key": job.key,
                    "metrics": dict(metrics), "worker": lease.worker,
                    "cached": bool(cached),
                })
            if run.open_jobs == 0:
                self._finish_run(run)
            return True

    def fail(self, lease_id: str, kind: str, error: str) -> bool:
        """Settle a lease with a failure: charge an attempt, retry or
        manifest per the run's policy; ``False`` drops a stale report."""
        with self._ready:
            lease = self._leases.pop(lease_id, None)
            if lease is None:
                return False
            run = self._runs[lease.run_id]
            job = run.jobs[lease.key]
            job.failed_attempts += 1
            policy = run.policy
            if job.failed_attempts < policy.attempts and not run.cancelled:
                job.state = "pending"
                self._journal_append(run, {"type": "charge", "key": job.key,
                                           "attempts": job.failed_attempts})
                delay = policy.backoff_delay(job.key, job.failed_attempts)
                self._push(run.run_id, job,
                           ready_at=time.monotonic() + delay)
                self._ready.notify_all()
                return True
            job.state = "failed"
            run.open_jobs -= 1
            run.failed += 1
            started = job.first_dispatch or time.monotonic()
            failure = JobFailure(
                key=job.key, scenario=job.scenario, seed=job.seed,
                kind=kind, error=error, attempts=job.failed_attempts,
                elapsed_s=time.monotonic() - started,
            )
            run.failures[job.key] = failure.to_dict()
            self._journal_append(run, {"type": "failed", "key": job.key,
                                       "failure": failure.to_dict()})
            if not run.cancelled:
                run.events.put({"type": "job-failed", "key": job.key,
                                "failure": failure.to_dict()})
            if run.open_jobs == 0:
                self._finish_run(run)
            return True

    # -- lease loss (uncharged requeue) --------------------------------
    def release_worker(self, worker: str) -> int:
        """Requeue every lease held by a departed worker, uncharged."""
        with self._ready:
            lost = [lease for lease in self._leases.values()
                    if lease.worker == worker]
            for lease in lost:
                self._requeue_locked(lease)
            if lost:
                self._ready.notify_all()
            return len(lost)

    def expire(self, now: Optional[float] = None) -> int:
        """Requeue every lease past its heartbeat deadline, uncharged."""
        with self._ready:
            count = self._expire_locked(now if now is not None
                                        else time.monotonic())
            if count:
                self._ready.notify_all()
            return count

    # -- lifecycle -----------------------------------------------------
    def retire(self, run_id: str) -> bool:
        """Drop a settled run once its ``run-done`` has been delivered.

        Removes the run from ``_runs``/``_run_order`` and deletes its
        journal file.  ``False`` when the run is unknown or still open —
        retiring is only legal after ``run-done``.
        """
        with self._lock:
            run = self._runs.get(run_id)
            if run is None or not run.done or run.open_jobs > 0:
                return False
            self._retire_locked(run)
            return True

    def detach(self, run_id: str, epoch: int) -> None:
        """Record that the stream holding ``epoch`` is gone.

        An unattached run is fair game for :meth:`sweep_orphans` once
        ``orphan_ttl`` passes without a re-attach.
        """
        with self._lock:
            run = self._runs.get(run_id)
            if run is not None and run.attach_seq == epoch:
                run.attached = False
                run.detached_at = time.monotonic()

    def sweep_orphans(self, now: Optional[float] = None) -> int:
        """Retire runs whose client has been gone past ``orphan_ttl``.

        Finished runs are dropped outright; unfinished ones are cancelled
        (leases revoked, pending jobs drained) and retire once drained.
        This is the backstop that keeps a journal-restored broker from
        holding runs forever when the submitting client never returns.
        """
        if now is None:
            now = time.monotonic()
        swept = 0
        with self._ready:
            for run in list(self._runs.values()):
                if run.attached or now - run.detached_at < self.orphan_ttl:
                    continue
                if run.done:
                    self._retire_locked(run)
                else:
                    self._cancel_locked(run)
                swept += 1
            if swept:
                self._ready.notify_all()
        return swept

    def recover(self) -> List[str]:
        """Replay the journal directory into the queue (broker start).

        Settled jobs keep their recorded metrics/failures; jobs that were
        pending or leased at the crash come back pending at the same
        attempt number (lost leases are never charged).  Restored runs
        start unattached: a client that re-submits the same run id
        re-attaches, anything else is swept after ``orphan_ttl``.
        """
        if self._journal is None:
            return []
        restored: List[str] = []
        max_order = -1
        with self._ready:
            for state in self._journal.replay():
                max_order = max(max_order, state.order)
                if state.run_id in self._runs:
                    continue
                if state.cancelled:
                    # A cancelled run has no client and, post-crash, no
                    # leases left to drain: drop its journal outright.
                    self._journal.discard(state.run_id)
                    continue
                run = _Run(run_id=state.run_id, order=state.order,
                           policy=policy_from_dict(state.policy))
                for index, entry in enumerate(state.jobs):
                    key = str(entry.get("key", ""))
                    if not key or key in run.jobs:
                        continue
                    job = _Job(
                        key=key,
                        spec=dict(entry.get("spec") or {}),  # type: ignore[arg-type]
                        seed=int(entry.get("seed", 0)),  # type: ignore[arg-type]
                        scenario=str(entry.get("scenario", "")),
                        priority=index,
                        failed_attempts=state.charges.get(key, 0),
                    )
                    if key in state.results:
                        job.state = "done"
                        run.completed += 1
                        run.results[key] = (state.results[key],
                                            key in state.cached)
                    elif key in state.failures:
                        job.state = "failed"
                        run.failed += 1
                        run.failures[key] = state.failures[key]
                    else:
                        run.open_jobs += 1  # pending again, uncharged
                    run.jobs[key] = job
                run.attached = False
                run.detached_at = time.monotonic()
                self._runs[run.run_id] = run
                self._run_order[run.run_id] = run.order
                self._journal_open(run)
                for job in sorted(run.jobs.values(),
                                  key=lambda j: j.priority):
                    if job.state == "pending":
                        self._push(run.run_id, job, ready_at=0.0)
                if run.open_jobs == 0:
                    # run-done is primed into the stream on re-attach.
                    run.done = True
                restored.append(run.run_id)
            if max_order >= 0:
                self._run_seq = itertools.count(max_order + 1)
            if restored:
                self._ready.notify_all()
        return restored

    def stop(self) -> None:
        """Tell every waiting worker to exit (lease returns ``stop``)."""
        with self._ready:
            self._stopping = True
            self._ready.notify_all()

    # -- introspection -------------------------------------------------
    def has_run(self, run_id: str) -> bool:
        with self._lock:
            return run_id in self._runs

    def stream_epoch(self, run_id: str) -> int:
        """The run's current attach epoch (-1 for an unknown run)."""
        with self._lock:
            run = self._runs.get(run_id)
            return run.attach_seq if run is not None else -1

    def run_results(self, run_id: str) -> Dict[str, Dict[str, float]]:
        """Settled metrics of a live run (key -> metrics), a copy."""
        with self._lock:
            run = self._runs.get(run_id)
            if run is None:
                return {}
            return {key: dict(metrics)
                    for key, (metrics, _) in run.results.items()}

    def stats(self) -> Dict[str, object]:
        with self._lock:
            runs = {
                run_id: {
                    "open": run.open_jobs, "completed": run.completed,
                    "failed": run.failed, "cancelled": run.cancelled,
                    "done": run.done, "attached": run.attached,
                }
                for run_id, run in sorted(self._runs.items())
            }
            return {"runs": runs, "leases": len(self._leases),
                    "queued": len(self._heap),
                    "journal": self._journal is not None}

    # -- internals (call with the lock held) ---------------------------
    def _journal_open(self, run: _Run) -> None:
        if self._journal is None:
            return
        try:
            run.journal = self._journal.open_run(run.run_id)
        except OSError as error:
            run.journal = None
            print(f"broker: cannot open journal for run {run.run_id!r}: "
                  f"{error}; continuing without one", file=sys.stderr)

    def _journal_append(self, run: _Run, record: Dict[str, object]) -> None:
        if run.journal is None:
            return
        try:
            run.journal.append(record)
        except (OSError, ValueError) as error:
            # Durability degrades, the broker stays up: drop this run's
            # journal rather than failing live traffic on a sick disk.
            run.journal.close()
            run.journal = None
            print(f"broker: journal write failed for run {run.run_id!r}: "
                  f"{error}; continuing without one", file=sys.stderr)

    def _push(self, run_id: str, job: _Job, ready_at: float) -> None:
        heapq.heappush(self._heap, (ready_at, self._run_order[run_id],
                                    job.priority, next(self._seq),
                                    run_id, job.key))

    def _pop_ready(self, now: float) -> Optional[tuple]:
        """The first heap entry whose job is still pending and ready."""
        while self._heap:
            ready_at, _, _, _, run_id, key = self._heap[0]
            run = self._runs.get(run_id)
            job = run.jobs.get(key) if run is not None else None
            if job is None or job.state != "pending" or run.cancelled:
                heapq.heappop(self._heap)
                if (job is not None and run.cancelled
                        and job.state == "pending"):
                    # Backstop — cancel() drains proactively, but any
                    # job requeued into a cancelled run is dropped here
                    # with the same accounting so the run still finishes.
                    self._drop_locked(run, job)
                continue
            if ready_at > now:
                return None
            return heapq.heappop(self._heap)
        return None

    def _grant(self, entry: tuple, worker: str, now: float) -> Dict[str, object]:
        _, _, _, _, run_id, key = entry
        run = self._runs[run_id]
        job = run.jobs[key]
        job.state = "leased"
        if job.first_dispatch is None:
            job.first_dispatch = now
        lease = _Lease(
            lease_id=f"L{next(self._lease_seq)}",
            run_id=run_id, key=key, worker=worker,
            attempt=job.failed_attempts + 1,
            deadline=now + self.lease_ttl,
        )
        self._leases[lease.lease_id] = lease
        self._journal_append(run, {"type": "lease", "key": job.key,
                                   "worker": worker,
                                   "attempt": lease.attempt})
        return {
            "type": "job",
            "lease": lease.lease_id,
            "key": job.key,
            "spec": job.spec,
            "seed": job.seed,
            "scenario": job.scenario,
            "attempt": lease.attempt,
            "timeout_s": run.policy.timeout_s,
            "lease_ttl": self.lease_ttl,
        }

    def _requeue_locked(self, lease: _Lease) -> None:
        """Return a lost lease's job to the queue at the same attempt."""
        self._leases.pop(lease.lease_id, None)
        run = self._runs.get(lease.run_id)
        job = run.jobs.get(lease.key) if run is not None else None
        if job is None or job.state != "leased":
            return
        if run.cancelled:
            self._drop_locked(run, job)
            return
        job.state = "pending"
        self._push(lease.run_id, job, ready_at=0.0)

    def _expire_locked(self, now: float) -> int:
        expired = [lease for lease in self._leases.values()
                   if lease.deadline < now]
        for lease in expired:
            self._requeue_locked(lease)
        return len(expired)

    def _drop_locked(self, run: _Run, job: _Job) -> None:
        """Drop one job of a cancelled run with full accounting."""
        job.state = "failed"
        run.open_jobs -= 1
        run.failed += 1
        if run.open_jobs == 0:
            self._finish_run(run)

    def _cancel_locked(self, run: _Run) -> None:
        if run.cancelled:
            return
        run.cancelled = True
        self._journal_append(run, {"type": "cancel"})
        # Revoke the run's outstanding leases: each holder's next
        # heartbeat is answered ok=false and the worker abandons.
        for lease_id, lease in list(self._leases.items()):
            if lease.run_id != run.run_id:
                continue
            del self._leases[lease_id]
            job = run.jobs.get(lease.key)
            if job is not None and job.state == "leased":
                self._drop_locked(run, job)
        for job in list(run.jobs.values()):
            if job.state == "pending":
                self._drop_locked(run, job)
        if run.open_jobs == 0:
            if run.done:
                self._retire_locked(run)
            else:
                self._finish_run(run)

    def _finish_run(self, run: _Run) -> None:
        if run.done:
            return
        run.done = True
        run.events.put({"type": "run-done", "run": run.run_id,
                        "completed": run.completed, "failed": run.failed})
        if run.cancelled:
            # Nobody is listening to a cancelled run: retire it now.
            self._retire_locked(run)

    def _retire_locked(self, run: _Run) -> None:
        self._runs.pop(run.run_id, None)
        self._run_order.pop(run.run_id, None)
        if run.journal is not None:
            run.journal.close()
            run.journal = None
        if self._journal is not None:
            self._journal.discard(run.run_id)


class BrokerServer:
    """Thread-per-connection frame server around a :class:`BrokerQueue`.

    Handles ``hello``/``lease``/``heartbeat``/``complete``/``fail`` from
    workers, ``submit`` (stream events until ``run-done``) from clients,
    and ``ping``/``stats``/``shutdown`` from anyone.  A submit stream
    emits a ``tick`` keep-alive every few seconds so a dead client is
    detected and its run cancelled instead of leaking; a ``submit`` for a
    run id the queue already holds (after a broker restart + journal
    replay, or a client reconnect) re-attaches instead of erroring.
    Every ``heartbeat`` is answered with a ``heartbeat-ack``.
    """

    #: Seconds between keep-alive ticks on an idle submit stream.
    TICK_S = 5.0

    PROG = "repro-broker"

    def __init__(self, listen: str = "127.0.0.1:0",
                 lease_ttl: float = DEFAULT_LEASE_TTL_S,
                 queue: Optional[BrokerQueue] = None,
                 journal: Optional[JournalDir] = None,
                 orphan_ttl: Optional[float] = None) -> None:
        self.queue = queue or BrokerQueue(lease_ttl, journal=journal,
                                          orphan_ttl=orphan_ttl)
        self._listener = create_listener(listen)
        self.address = listener_address(self._listener)
        self._threads: List[threading.Thread] = []
        self._conn_seq = itertools.count(1)
        self._shutdown = threading.Event()
        self._started = False
        #: Run ids restored from the journal by the last start().
        self.recovered: List[str] = []

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Replay the journal, then start the accept loop and reaper."""
        if self._started:
            return
        self._started = True
        self.recovered = self.queue.recover()
        if self.recovered:
            print(f"{self.PROG}: recovered {len(self.recovered)} run(s) "
                  f"from the journal", flush=True)
        self._after_recover(self.recovered)
        for target, name in ((self._accept_loop, "broker-accept"),
                             (self._reaper_loop, "broker-reaper")):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)

    def _after_recover(self, run_ids: List[str]) -> None:
        """Hook for subclasses (the service flushes replayed results)."""

    def stop(self) -> None:
        self._shutdown.set()
        self.queue.stop()
        try:
            self._listener.close()
        except OSError:
            pass

    def serve_forever(self) -> None:
        self.start()
        self._shutdown.wait()

    # -- loops ---------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._handle, args=(conn,),
                name=f"broker-conn-{next(self._conn_seq)}", daemon=True)
            thread.start()

    def _reaper_loop(self) -> None:
        interval = max(0.5, self.queue.lease_ttl / 4.0)
        while not self._shutdown.wait(interval):
            self.queue.expire()
            self.queue.sweep_orphans()

    # -- per-connection handling ---------------------------------------
    def _handle(self, conn) -> None:
        worker_id: Optional[str] = None
        try:
            while True:
                message = recv_frame(conn)
                if message is None:
                    return
                kind = str(message.get("type", ""))
                if kind == "hello":
                    name = str(message.get("worker", "worker"))
                    worker_id = f"{name}#{threading.get_ident()}"
                elif kind == "lease":
                    wait_s = float(message.get("wait_s", 0.0))  # type: ignore[arg-type]
                    send_frame(conn, self.queue.lease(
                        worker_id or "anonymous", wait_s))
                elif kind == "heartbeat":
                    lease_id = str(message.get("lease", ""))
                    send_frame(conn, {"type": "heartbeat-ack",
                                      "lease": lease_id,
                                      "ok": self.queue.heartbeat(lease_id)})
                elif kind == "complete":
                    self.queue.complete(
                        str(message.get("lease", "")),
                        dict(message.get("metrics") or {}),  # type: ignore[arg-type]
                        cached=bool(message.get("cached", False)))
                elif kind == "fail":
                    self.queue.fail(str(message.get("lease", "")),
                                    str(message.get("kind", "exception")),
                                    str(message.get("error", "")))
                elif kind == "submit":
                    self._handle_submit(conn, message)
                elif kind == "ping":
                    send_frame(conn, {"type": "pong"})
                elif kind == "stats":
                    send_frame(conn, {"type": "stats", **self.queue.stats()})
                elif kind == "shutdown":
                    send_frame(conn, {"type": "bye"})
                    self.stop()
                    return
                elif not self._handle_extra(conn, kind, message):
                    send_frame(conn, {"type": "error",
                                      "error": f"unknown message type {kind!r}"})
        except (FrameError, OSError, ValueError):
            pass  # a dead or misbehaving peer only loses its own session
        finally:
            if worker_id is not None:
                self.queue.release_worker(worker_id)
            try:
                conn.close()
            except OSError:
                pass

    def _handle_extra(self, conn, kind: str, message: Dict[str, object]) -> bool:
        """Hook for subclasses (the service) to add message types."""
        return False

    def _handle_submit(self, conn, message: Dict[str, object]) -> None:
        run_id = str(message.get("run", ""))
        if not run_id:
            send_frame(conn, {"type": "error", "error": "submit needs a run id"})
            return
        jobs = list(message.get("jobs") or [])  # type: ignore[arg-type]
        resumed = False
        try:
            policy = policy_from_dict(message.get("policy"))  # type: ignore[arg-type]
            if self.queue.has_run(run_id):
                events = self.queue.attach(run_id, jobs)
                resumed = True
            else:
                try:
                    events = self.queue.submit(run_id, jobs, policy=policy)
                except ValueError:
                    # Raced a concurrent submit of the same id; attach
                    # validates the job set or rejects for us.
                    events = self.queue.attach(run_id, jobs)
                    resumed = True
        except (ValueError, KeyError, TypeError) as error:
            send_frame(conn, {"type": "error", "error": str(error)})
            return
        epoch = self.queue.stream_epoch(run_id)
        send_frame(conn, {"type": "submitted", "run": run_id,
                          "jobs": len(jobs), "resumed": resumed})
        self._stream_events(conn, run_id, events, epoch)

    def _stream_events(self, conn, run_id: str,
                       events: "Queue[Dict[str, object]]",
                       epoch: int = 0) -> None:
        """Forward run events until ``run-done``; cancel on a dead client.

        After delivering ``run-done`` the run is retired (its journal is
        deleted); on a client error the cancel carries this stream's
        epoch, so a newer re-attached stream is never cancelled by a
        stale one.
        """
        try:
            while True:
                try:
                    event = events.get(timeout=self.TICK_S)
                except Empty:  # idle: prove the client is alive
                    send_frame(conn, {"type": "tick", "run": run_id})
                    continue
                send_frame(conn, event)
                if event.get("type") == "run-done":
                    self.queue.retire(run_id)
                    return
        except (FrameError, OSError):
            self.queue.cancel(run_id, epoch=epoch)
            raise
        finally:
            self.queue.detach(run_id, epoch)


_EPILOG = """\
journal & recovery:
  Unless --no-journal is given, every queue transition (submit, lease
  grant, attempt charge, complete, fail, cancel) is appended to a
  per-run JSONL journal under the --journal directory (default:
  <runs>/journal next to the RunStore, i.e. $REPRO_RUNS_DIR or ./runs).
  On start the journal is replayed: settled jobs keep their recorded
  metrics/failures, jobs that were leased at the crash come back pending
  at the same attempt number (lost leases are never charged), and a
  client that reconnects and re-submits the same run id re-attaches and
  receives every already-settled event before the live ones — so a
  kill -9 mid-run resumes to output byte-identical to a serial run.
  A run's journal file is deleted when the run retires (its run-done
  was delivered, or it was cancelled and drained).

heartbeat-ack:
  Every worker heartbeat is answered with heartbeat-ack {ok}.  ok=false
  means the lease was reaped (expired or its run cancelled): the worker
  abandons the orphaned attempt instead of computing a result the
  broker would silently drop.
"""


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-broker",
        description="Job broker for distributed scenario execution "
                    "(see repro.distributed).",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--listen", default="127.0.0.1:0", metavar="ADDR",
                        help="HOST:PORT or unix:/path (default: "
                             "127.0.0.1 on an ephemeral port)")
    parser.add_argument("--lease-ttl", type=float,
                        default=DEFAULT_LEASE_TTL_S, metavar="S",
                        help="seconds a lease survives without a heartbeat "
                             f"(default: {DEFAULT_LEASE_TTL_S:g})")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="write-ahead journal directory (default: "
                             "<runs>/journal; see epilog)")
    parser.add_argument("--no-journal", action="store_true",
                        help="run without a journal: a broker crash "
                             "loses every queued run")
    args = parser.parse_args(argv)
    journal = None
    if not args.no_journal:
        from repro.analysis.runstore import default_runs_dir

        root = args.journal or (default_runs_dir() / "journal")
        journal = JournalDir(root)
    server = BrokerServer(listen=args.listen, lease_ttl=args.lease_ttl,
                          journal=journal)
    print(f"repro-broker listening on {server.address}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
