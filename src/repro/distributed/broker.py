"""``repro-broker``: the job queue at the centre of distributed execution.

The broker holds submitted runs — each an ordered list of seed-pinned
unit jobs plus a :class:`~repro.scenarios.execution.JobPolicy` — and
dispatches them to workers under *leases*: a leased job belongs to one
worker until it reports ``complete``/``fail`` or its lease expires
(missed heartbeats, dropped connection).  The accounting mirrors the
in-process supervised backends exactly:

- a **reported failure** charges one attempt; below the policy's budget
  the job is requeued after the policy's deterministic
  :meth:`~repro.scenarios.execution.JobPolicy.backoff_delay`, past it the
  job becomes a :class:`~repro.scenarios.execution.JobFailure` in the
  run's manifest;
- a **lost lease** (worker disconnect or expiry) requeues the job
  *uncharged* at the same attempt number — infrastructure failures never
  eat into a job's retry budget, matching how the pool backend requeues
  innocents after a hung-worker kill;
- a **duplicate completion** for an already-settled lease is dropped
  (first report wins), so a worker that was presumed dead but limps back
  cannot double-report.

Because unit jobs are pure functions of ``(spec, seed)``, any sequence of
retries, requeues and worker deaths converges on the same metrics, and
the submitting client's merge-by-key output is byte-identical to a
serial run.

The queue logic (:class:`BrokerQueue`) is pure threads-and-state with no
sockets, so the lease/retry/accounting behaviour is unit-testable
without a network; :class:`BrokerServer` wraps it in a thread-per-
connection frame loop.  Run as a process::

    repro-broker --listen 127.0.0.1:7480
    repro-broker --listen unix:/tmp/repro-broker.sock
"""

from __future__ import annotations

import argparse
import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from queue import Queue
from typing import Dict, List, Optional, Sequence

from repro.distributed.protocol import (
    FrameError,
    create_listener,
    listener_address,
    recv_frame,
    send_frame,
)
from repro.scenarios.execution import JobFailure, JobPolicy

#: Seconds a lease lives without a heartbeat before the job is requeued.
DEFAULT_LEASE_TTL_S = 15.0

_POLICY_FIELDS = ("max_retries", "timeout_s", "keep_going", "backoff_base_s",
                  "backoff_factor", "backoff_max_s", "backoff_jitter")


def policy_to_dict(policy: JobPolicy) -> Dict[str, object]:
    """A JobPolicy as plain wire data."""
    return {name: getattr(policy, name) for name in _POLICY_FIELDS}


def policy_from_dict(data: Optional[Dict[str, object]]) -> JobPolicy:
    """Rebuild a JobPolicy from wire data (missing fields keep defaults)."""
    data = data or {}
    kwargs = {name: data[name] for name in _POLICY_FIELDS if name in data}
    return JobPolicy(**kwargs)  # type: ignore[arg-type]


@dataclass
class _Job:
    """One unit job inside a submitted run."""

    key: str
    spec: Dict[str, object]
    seed: int
    scenario: str
    priority: int
    state: str = "pending"  # pending | leased | done | failed
    failed_attempts: int = 0
    first_dispatch: Optional[float] = None


@dataclass
class _Run:
    """One submitted run: its jobs, policy and event stream."""

    run_id: str
    policy: JobPolicy
    jobs: Dict[str, _Job] = field(default_factory=dict)
    events: "Queue[Dict[str, object]]" = field(default_factory=Queue)
    open_jobs: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: bool = False


@dataclass
class _Lease:
    """One dispatched job: who holds it and until when."""

    lease_id: str
    run_id: str
    key: str
    worker: str
    attempt: int
    deadline: float


class BrokerQueue:
    """The broker's job queue and lease table (no sockets, fully locked).

    All methods are thread-safe.  ``lease`` blocks up to ``wait_s`` for a
    ready job and returns a wire-shaped payload dict (``job`` / ``idle``
    / ``stop``), so the server can forward it verbatim.
    """

    def __init__(self, lease_ttl: float = DEFAULT_LEASE_TTL_S) -> None:
        self.lease_ttl = float(lease_ttl)
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._runs: Dict[str, _Run] = {}
        #: (ready_at, run_seq, priority, seq, run_id, key) — plan order
        #: within a run, submission order across runs, backoff-aware.
        self._heap: List[tuple] = []
        self._leases: Dict[str, _Lease] = {}
        self._run_seq = itertools.count()
        self._run_order: Dict[str, int] = {}
        self._seq = itertools.count()
        self._lease_seq = itertools.count(1)
        self._stopping = False

    # -- submission ----------------------------------------------------
    def submit(self, run_id: str, jobs: Sequence[Dict[str, object]],
               policy: Optional[JobPolicy] = None) -> "Queue[Dict[str, object]]":
        """Enqueue a run's jobs; returns its event stream.

        ``jobs`` entries are dicts with ``key``, ``spec`` (a ScenarioSpec
        ``to_dict``), ``seed`` and ``scenario``.  An empty job list
        completes immediately (the ``run-done`` event is pre-queued).
        """
        with self._lock:
            if run_id in self._runs:
                raise ValueError(f"run {run_id!r} already submitted")
            run = _Run(run_id=run_id, policy=policy or JobPolicy())
            self._runs[run_id] = run
            self._run_order[run_id] = next(self._run_seq)
            for index, entry in enumerate(jobs):
                key = str(entry["key"])
                if key in run.jobs:
                    continue  # plans deduplicate; tolerate a duplicate key
                run.jobs[key] = _Job(
                    key=key,
                    spec=dict(entry["spec"]),  # type: ignore[arg-type]
                    seed=int(entry["seed"]),  # type: ignore[arg-type]
                    scenario=str(entry.get("scenario", "")),
                    priority=index,
                )
                run.open_jobs += 1
                self._push(run_id, run.jobs[key], ready_at=0.0)
            if run.open_jobs == 0:
                self._finish_run(run)
            self._ready.notify_all()
            return run.events

    def cancel(self, run_id: str) -> None:
        """Drop a run: pending jobs are discarded, in-flight results too."""
        with self._lock:
            run = self._runs.get(run_id)
            if run is not None:
                run.cancelled = True

    # -- dispatch ------------------------------------------------------
    def lease(self, worker: str, wait_s: float = 0.0) -> Dict[str, object]:
        """The next ready job for ``worker``; blocks up to ``wait_s``.

        Returns ``{"type": "job", ...}`` with the lease id, spec, seed,
        attempt number and timeout, ``{"type": "idle"}`` when nothing
        became ready in time, or ``{"type": "stop"}`` when the broker is
        shutting down.
        """
        deadline = time.monotonic() + max(0.0, wait_s)
        with self._ready:
            while True:
                if self._stopping:
                    return {"type": "stop"}
                now = time.monotonic()
                self._expire_locked(now)
                entry = self._pop_ready(now)
                if entry is not None:
                    return self._grant(entry, worker, now)
                remaining = deadline - now
                if remaining <= 0:
                    return {"type": "idle"}
                if self._heap:
                    remaining = min(remaining, self._heap[0][0] - now)
                self._ready.wait(timeout=max(0.01, remaining))

    def heartbeat(self, lease_id: str) -> bool:
        """Extend a live lease; ``False`` when it is gone (stale worker)."""
        with self._lock:
            lease = self._leases.get(lease_id)
            if lease is None:
                return False
            lease.deadline = time.monotonic() + self.lease_ttl
            return True

    # -- settlement ----------------------------------------------------
    def complete(self, lease_id: str, metrics: Dict[str, float],
                 cached: bool = False) -> bool:
        """Settle a lease with metrics; ``False`` drops a stale duplicate."""
        with self._lock:
            lease = self._leases.pop(lease_id, None)
            if lease is None:
                return False  # expired/duplicate: the first report won
            run = self._runs[lease.run_id]
            job = run.jobs[lease.key]
            job.state = "done"
            run.open_jobs -= 1
            run.completed += 1
            if not run.cancelled:
                run.events.put({
                    "type": "job-done", "key": job.key,
                    "metrics": dict(metrics), "worker": lease.worker,
                    "cached": bool(cached),
                })
            if run.open_jobs == 0:
                self._finish_run(run)
            return True

    def fail(self, lease_id: str, kind: str, error: str) -> bool:
        """Settle a lease with a failure: charge an attempt, retry or
        manifest per the run's policy; ``False`` drops a stale report."""
        with self._ready:
            lease = self._leases.pop(lease_id, None)
            if lease is None:
                return False
            run = self._runs[lease.run_id]
            job = run.jobs[lease.key]
            job.failed_attempts += 1
            policy = run.policy
            if job.failed_attempts < policy.attempts and not run.cancelled:
                job.state = "pending"
                delay = policy.backoff_delay(job.key, job.failed_attempts)
                self._push(run.run_id, job,
                           ready_at=time.monotonic() + delay)
                self._ready.notify_all()
                return True
            job.state = "failed"
            run.open_jobs -= 1
            run.failed += 1
            started = job.first_dispatch or time.monotonic()
            failure = JobFailure(
                key=job.key, scenario=job.scenario, seed=job.seed,
                kind=kind, error=error, attempts=job.failed_attempts,
                elapsed_s=time.monotonic() - started,
            )
            if not run.cancelled:
                run.events.put({"type": "job-failed", "key": job.key,
                                "failure": failure.to_dict()})
            if run.open_jobs == 0:
                self._finish_run(run)
            return True

    # -- lease loss (uncharged requeue) --------------------------------
    def release_worker(self, worker: str) -> int:
        """Requeue every lease held by a departed worker, uncharged."""
        with self._ready:
            lost = [lease for lease in self._leases.values()
                    if lease.worker == worker]
            for lease in lost:
                self._requeue_locked(lease)
            if lost:
                self._ready.notify_all()
            return len(lost)

    def expire(self, now: Optional[float] = None) -> int:
        """Requeue every lease past its heartbeat deadline, uncharged."""
        with self._ready:
            count = self._expire_locked(now if now is not None
                                        else time.monotonic())
            if count:
                self._ready.notify_all()
            return count

    # -- lifecycle / introspection -------------------------------------
    def stop(self) -> None:
        """Tell every waiting worker to exit (lease returns ``stop``)."""
        with self._ready:
            self._stopping = True
            self._ready.notify_all()

    def stats(self) -> Dict[str, object]:
        with self._lock:
            runs = {
                run_id: {
                    "open": run.open_jobs, "completed": run.completed,
                    "failed": run.failed, "cancelled": run.cancelled,
                }
                for run_id, run in sorted(self._runs.items())
            }
            return {"runs": runs, "leases": len(self._leases),
                    "queued": len(self._heap)}

    # -- internals (call with the lock held) ---------------------------
    def _push(self, run_id: str, job: _Job, ready_at: float) -> None:
        heapq.heappush(self._heap, (ready_at, self._run_order[run_id],
                                    job.priority, next(self._seq),
                                    run_id, job.key))

    def _pop_ready(self, now: float) -> Optional[tuple]:
        """The first heap entry whose job is still pending and ready."""
        while self._heap:
            ready_at, _, _, _, run_id, key = self._heap[0]
            run = self._runs.get(run_id)
            job = run.jobs.get(key) if run is not None else None
            if job is None or job.state != "pending" or run.cancelled:
                heapq.heappop(self._heap)
                if (job is not None and run.cancelled
                        and job.state == "pending"):
                    # Account the dropped job so a cancelled run drains.
                    job.state = "failed"
                    run.open_jobs -= 1
                continue
            if ready_at > now:
                return None
            return heapq.heappop(self._heap)
        return None

    def _grant(self, entry: tuple, worker: str, now: float) -> Dict[str, object]:
        _, _, _, _, run_id, key = entry
        run = self._runs[run_id]
        job = run.jobs[key]
        job.state = "leased"
        if job.first_dispatch is None:
            job.first_dispatch = now
        lease = _Lease(
            lease_id=f"L{next(self._lease_seq)}",
            run_id=run_id, key=key, worker=worker,
            attempt=job.failed_attempts + 1,
            deadline=now + self.lease_ttl,
        )
        self._leases[lease.lease_id] = lease
        return {
            "type": "job",
            "lease": lease.lease_id,
            "key": job.key,
            "spec": job.spec,
            "seed": job.seed,
            "scenario": job.scenario,
            "attempt": lease.attempt,
            "timeout_s": run.policy.timeout_s,
            "lease_ttl": self.lease_ttl,
        }

    def _requeue_locked(self, lease: _Lease) -> None:
        """Return a lost lease's job to the queue at the same attempt."""
        self._leases.pop(lease.lease_id, None)
        run = self._runs.get(lease.run_id)
        job = run.jobs.get(lease.key) if run is not None else None
        if job is None or job.state != "leased":
            return
        job.state = "pending"
        self._push(lease.run_id, job, ready_at=0.0)

    def _expire_locked(self, now: float) -> int:
        expired = [lease for lease in self._leases.values()
                   if lease.deadline < now]
        for lease in expired:
            self._requeue_locked(lease)
        return len(expired)

    def _finish_run(self, run: _Run) -> None:
        run.events.put({"type": "run-done", "run": run.run_id,
                        "completed": run.completed, "failed": run.failed})


class BrokerServer:
    """Thread-per-connection frame server around a :class:`BrokerQueue`.

    Handles ``hello``/``lease``/``heartbeat``/``complete``/``fail`` from
    workers, ``submit`` (stream events until ``run-done``) from clients,
    and ``ping``/``stats``/``shutdown`` from anyone.  A submit stream
    emits a ``tick`` keep-alive every few seconds so a dead client is
    detected and its run cancelled instead of leaking.
    """

    #: Seconds between keep-alive ticks on an idle submit stream.
    TICK_S = 5.0

    def __init__(self, listen: str = "127.0.0.1:0",
                 lease_ttl: float = DEFAULT_LEASE_TTL_S,
                 queue: Optional[BrokerQueue] = None) -> None:
        self.queue = queue or BrokerQueue(lease_ttl)
        self._listener = create_listener(listen)
        self.address = listener_address(self._listener)
        self._threads: List[threading.Thread] = []
        self._conn_seq = itertools.count(1)
        self._shutdown = threading.Event()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Start the accept loop and the lease reaper (daemon threads)."""
        for target, name in ((self._accept_loop, "broker-accept"),
                             (self._reaper_loop, "broker-reaper")):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        self._shutdown.set()
        self.queue.stop()
        try:
            self._listener.close()
        except OSError:
            pass

    def serve_forever(self) -> None:
        self.start()
        self._shutdown.wait()

    # -- loops ---------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._handle, args=(conn,),
                name=f"broker-conn-{next(self._conn_seq)}", daemon=True)
            thread.start()

    def _reaper_loop(self) -> None:
        interval = max(0.5, self.queue.lease_ttl / 4.0)
        while not self._shutdown.wait(interval):
            self.queue.expire()

    # -- per-connection handling ---------------------------------------
    def _handle(self, conn) -> None:
        worker_id: Optional[str] = None
        try:
            while True:
                message = recv_frame(conn)
                if message is None:
                    return
                kind = str(message.get("type", ""))
                if kind == "hello":
                    name = str(message.get("worker", "worker"))
                    worker_id = f"{name}#{threading.get_ident()}"
                elif kind == "lease":
                    wait_s = float(message.get("wait_s", 0.0))  # type: ignore[arg-type]
                    send_frame(conn, self.queue.lease(
                        worker_id or "anonymous", wait_s))
                elif kind == "heartbeat":
                    self.queue.heartbeat(str(message.get("lease", "")))
                elif kind == "complete":
                    self.queue.complete(
                        str(message.get("lease", "")),
                        dict(message.get("metrics") or {}),  # type: ignore[arg-type]
                        cached=bool(message.get("cached", False)))
                elif kind == "fail":
                    self.queue.fail(str(message.get("lease", "")),
                                    str(message.get("kind", "exception")),
                                    str(message.get("error", "")))
                elif kind == "submit":
                    self._handle_submit(conn, message)
                elif kind == "ping":
                    send_frame(conn, {"type": "pong"})
                elif kind == "stats":
                    send_frame(conn, {"type": "stats", **self.queue.stats()})
                elif kind == "shutdown":
                    send_frame(conn, {"type": "bye"})
                    self.stop()
                    return
                elif not self._handle_extra(conn, kind, message):
                    send_frame(conn, {"type": "error",
                                      "error": f"unknown message type {kind!r}"})
        except (FrameError, OSError, ValueError):
            pass  # a dead or misbehaving peer only loses its own session
        finally:
            if worker_id is not None:
                self.queue.release_worker(worker_id)
            try:
                conn.close()
            except OSError:
                pass

    def _handle_extra(self, conn, kind: str, message: Dict[str, object]) -> bool:
        """Hook for subclasses (the service) to add message types."""
        return False

    def _handle_submit(self, conn, message: Dict[str, object]) -> None:
        run_id = str(message.get("run", ""))
        if not run_id:
            send_frame(conn, {"type": "error", "error": "submit needs a run id"})
            return
        try:
            policy = policy_from_dict(message.get("policy"))  # type: ignore[arg-type]
            events = self.queue.submit(
                run_id, list(message.get("jobs") or []),  # type: ignore[arg-type]
                policy=policy)
        except (ValueError, KeyError, TypeError) as error:
            send_frame(conn, {"type": "error", "error": str(error)})
            return
        send_frame(conn, {"type": "submitted", "run": run_id,
                          "jobs": len(list(message.get("jobs") or []))})  # type: ignore[arg-type]
        self._stream_events(conn, run_id, events)

    def _stream_events(self, conn, run_id: str,
                       events: "Queue[Dict[str, object]]") -> None:
        """Forward run events until ``run-done``; cancel on a dead client."""
        try:
            while True:
                try:
                    event = events.get(timeout=self.TICK_S)
                except Exception:  # queue.Empty — prove the client is alive
                    send_frame(conn, {"type": "tick", "run": run_id})
                    continue
                send_frame(conn, event)
                if event.get("type") == "run-done":
                    return
        except (FrameError, OSError):
            self.queue.cancel(run_id)
            raise


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-broker",
        description="Job broker for distributed scenario execution "
                    "(see repro.distributed).")
    parser.add_argument("--listen", default="127.0.0.1:0", metavar="ADDR",
                        help="HOST:PORT or unix:/path (default: "
                             "127.0.0.1 on an ephemeral port)")
    parser.add_argument("--lease-ttl", type=float,
                        default=DEFAULT_LEASE_TTL_S, metavar="S",
                        help="seconds a lease survives without a heartbeat "
                             f"(default: {DEFAULT_LEASE_TTL_S:g})")
    args = parser.parse_args(argv)
    server = BrokerServer(listen=args.listen, lease_ttl=args.lease_ttl)
    print(f"repro-broker listening on {server.address}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
