"""The wire format shared by broker, workers, backend and service.

One frame is a 4-byte big-endian length prefix followed by that many
bytes of UTF-8 JSON encoding a single object (dict).  The framing is
deliberately minimal: every participant — broker, worker, submitting
client — speaks the same two functions, :func:`send_frame` and
:func:`recv_frame`, and everything above them is plain message dicts
with a ``"type"`` key.

Addresses come in two spellings:

- ``host:port`` — a TCP endpoint (``127.0.0.1:7480``, ``:0`` for an
  ephemeral port on all interfaces);
- ``unix:/path/to.sock`` — a Unix domain socket.

:func:`recv_frame` distinguishes a *clean* close (EOF exactly on a frame
boundary → ``None``) from a *truncated* one (EOF mid-header or mid-body →
:class:`FrameError`), which is what lets the broker tell "worker finished
and left" from "worker died mid-message".
"""

from __future__ import annotations

import json
import os
import select
import socket
import struct
from typing import Dict, Optional, Tuple, Union

#: Upper bound on one frame's payload; a length prefix past this is a
#: protocol violation (corruption or a non-frame peer), not a big message.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Parsed address: ("tcp", (host, port)) or ("unix", path).
Address = Tuple[str, Union[Tuple[str, int], str]]


class FrameError(RuntimeError):
    """A malformed, truncated, or oversized frame on the wire."""


def send_frame(sock: socket.socket, message: Dict[str, object]) -> None:
    """Serialise one message dict and write it as a single frame."""
    payload = json.dumps(message, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})")
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, object]]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    Raises :class:`FrameError` on a truncated header or body, an
    oversized length prefix, invalid JSON, or a payload that is not a
    JSON object.
    """
    header = _recv_exact(sock, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte limit")
    payload = _recv_exact(sock, length) if length else b""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise FrameError(f"frame payload is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise FrameError(
            f"frame payload must be a JSON object, got {type(message).__name__}")
    return message


def _recv_exact(sock: socket.socket, count: int,
                allow_eof: bool = False) -> Optional[bytes]:
    """Read exactly ``count`` bytes (or ``None`` on clean EOF at byte 0)."""
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise FrameError(
                f"connection closed mid-frame "
                f"({count - remaining}/{count} bytes read)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def wait_readable(sock: socket.socket, timeout: float) -> bool:
    """Whether ``sock`` has data (or EOF) to read within ``timeout`` s.

    This is how a peer polls for incoming frames without committing to a
    blocking :func:`recv_frame` — e.g. a worker watching for
    ``heartbeat-ack`` verdicts while its attempt thread runs.  Only
    *call* recv_frame after a ``True``: a read timeout mid-frame would
    lose the partial bytes, so the frame functions stay blocking.  A
    closed or invalid socket reports ``True`` and lets the read surface
    the error.
    """
    try:
        readable, _, _ = select.select([sock], [], [], max(0.0, timeout))
    except (OSError, ValueError):
        return True
    return bool(readable)


def parse_address(text: str) -> Address:
    """Parse ``host:port`` or ``unix:/path`` into a typed address."""
    text = text.strip()
    if text.startswith("unix:"):
        path = text[len("unix:"):]
        if not path:
            raise ValueError("unix: address needs a socket path")
        return ("unix", path)
    host, separator, port = text.rpartition(":")
    if not separator:
        raise ValueError(
            f"address {text!r} is neither HOST:PORT nor unix:/path")
    try:
        port_number = int(port)
    except ValueError:
        raise ValueError(f"address {text!r} has a non-numeric port") from None
    return ("tcp", (host or "127.0.0.1", port_number))


def format_address(address: Address) -> str:
    """The canonical string spelling of a parsed address."""
    kind, endpoint = address
    if kind == "unix":
        return f"unix:{endpoint}"
    host, port = endpoint  # type: ignore[misc]
    return f"{host}:{port}"


def connect(address: str, timeout: Optional[float] = None) -> socket.socket:
    """Open a blocking client connection to a broker/service address."""
    kind, endpoint = parse_address(address)
    if kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.settimeout(timeout)
        sock.connect(endpoint)
        sock.settimeout(None)
    except BaseException:
        sock.close()
        raise
    return sock


def _reclaim_stale_unix_socket(path: str) -> None:
    """Unlink a unix-socket file left behind by a dead listener.

    A crashed/killed broker leaves its socket file on disk and a plain
    bind() then fails with EADDRINUSE forever.  Probe-connect first so a
    *live* listener on the path is never stolen: only a refused
    connection (nobody accepting) marks the file stale.
    """
    if not os.path.exists(path):
        return
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        probe.connect(path)
    except ConnectionRefusedError:
        os.unlink(path)
    except OSError:
        pass  # not a socket / no permission: let bind() report it
    else:
        raise OSError(f"unix socket {path} already has a live listener")
    finally:
        probe.close()


def create_listener(address: str, backlog: int = 64) -> socket.socket:
    """Bind and listen on an address (TCP port 0 picks an ephemeral port).

    A stale unix-socket file from a dead listener is reclaimed; a live
    one raises rather than being stolen.
    """
    kind, endpoint = parse_address(address)
    if kind == "unix":
        _reclaim_stale_unix_socket(str(endpoint))
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        sock.bind(endpoint)
        sock.listen(backlog)
    except BaseException:
        sock.close()
        raise
    return sock


def listener_address(sock: socket.socket) -> str:
    """The actual bound address of a listener (resolves TCP port 0)."""
    if sock.family == socket.AF_UNIX:
        return f"unix:{sock.getsockname()}"
    host, port = sock.getsockname()[:2]
    return f"{host}:{port}"
