"""Write-ahead journal for the broker queue (crash-safe run recovery).

Every queue state transition — ``submit``, ``lease``, ``charge`` (a
reported failure that consumed one attempt), ``done``, ``failed``,
``cancel`` — is appended as one JSON object per line to a per-run file
under the journal directory (by default ``<runs>/journal`` next to the
RunStore's ``objects/``).  Appends are flushed and fsynced, so after a
``kill -9`` the journal holds a *prefix* of the transitions the broker
acknowledged.

Replay rebuilds queue state from that prefix:

- settled jobs (``done``/``failed`` records) keep their metrics/failure
  and are re-delivered to a re-attaching client without re-execution;
- jobs that were leased but never settled simply have no settling record
  and come back *pending at the same attempt number* — exactly the
  uncharged requeue a lost lease gets on a live broker;
- ``charge`` records restore consumed retry budget, so a job that failed
  twice before the crash still fails fast after it.

The torn tail a crash can leave (a partially written last line) is
tolerated: parsing stops at the first undecodable line, and because any
prefix of a journal is a consistent history, the replayed queue is
always valid (the property ``tests/test_journal.py`` pins).

A run's journal file is deleted when the run is retired (its ``run-done``
was delivered, or it was cancelled and drained), so an always-on broker
garbage-collects its own journal.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, IO, Iterable, List, Optional, Set, Union

#: Journal format version; bump on incompatible record-shape changes.
SCHEMA_VERSION = 1

_SAFE_RUN_ID = re.compile(r"[^A-Za-z0-9._-]+")


def run_file_name(run_id: str) -> str:
    """A filesystem-safe, collision-free file name for a run's journal.

    The readable prefix keeps journals greppable; the digest suffix makes
    hostile or colliding run ids (slashes, unicode, ...) safe.
    """
    digest = hashlib.sha256(run_id.encode("utf-8")).hexdigest()[:12]
    safe = _SAFE_RUN_ID.sub("_", run_id)[:48].strip("._-") or "run"
    return f"{safe}-{digest}.jsonl"


class RunJournal:
    """Append-only record stream for one run (one JSON object per line)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[IO[str]] = open(  # noqa: SIM115 - long-lived
            self.path, "a", encoding="utf-8")

    def append(self, record: Dict[str, object]) -> None:
        """Durably append one record (write + flush + fsync)."""
        if self._handle is None:
            raise ValueError(f"journal {self.path} is closed")
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None


@dataclass
class ReplayedRun:
    """One run's state reconstructed from its journal records."""

    run_id: str
    order: int
    policy: Dict[str, object]
    jobs: List[Dict[str, object]]
    charges: Dict[str, int] = field(default_factory=dict)
    results: Dict[str, Dict[str, float]] = field(default_factory=dict)
    cached: Set[str] = field(default_factory=set)
    failures: Dict[str, Dict[str, object]] = field(default_factory=dict)
    leases: int = 0
    cancelled: bool = False


class JournalDir:
    """A directory of per-run journals with crash-tolerant replay."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, run_id: str) -> Path:
        return self.root / run_file_name(run_id)

    def open_run(self, run_id: str) -> RunJournal:
        """Open (or reopen, appending) the journal for one run."""
        return RunJournal(self.path_for(run_id))

    def discard(self, run_id: str) -> None:
        """Delete a retired run's journal file (missing is fine)."""
        try:
            self.path_for(run_id).unlink()
        except FileNotFoundError:
            pass
        except OSError:
            pass  # a journal we cannot delete is replayed then re-retired

    def run_files(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.jsonl"))

    def replay(self) -> List[ReplayedRun]:
        """Replay every journal in the directory, in submission order."""
        runs = []
        for path in self.run_files():
            state = self.replay_file(path)
            if state is not None:
                runs.append(state)
        runs.sort(key=lambda state: state.order)
        return runs

    def replay_file(self, path: Path) -> Optional[ReplayedRun]:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        return replay_records(parse_lines(text))


def parse_lines(text: str) -> List[Dict[str, object]]:
    """Decode journal lines, stopping at the first torn/corrupt line.

    A crash can only tear the *tail* of an fsynced append stream, so the
    decodable prefix is exactly the acknowledged history.
    """
    records: List[Dict[str, object]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            break  # torn tail (or corruption): trust only the prefix
        if not isinstance(record, dict):
            break
        records.append(record)
    return records


def replay_records(
        records: Iterable[Dict[str, object]]) -> Optional[ReplayedRun]:
    """Fold a record sequence into a run state (``None`` without a submit).

    Any prefix of a valid journal folds to a consistent state: settled
    keys are a subset of submitted keys, charges only grow, and a missing
    settlement simply leaves the job pending.
    """
    state: Optional[ReplayedRun] = None
    for record in records:
        kind = str(record.get("type", ""))
        if kind == "submit":
            if state is not None:
                break  # one run per file; a second submit is corruption
            state = ReplayedRun(
                run_id=str(record.get("run", "")),
                order=int(record.get("order", 0)),  # type: ignore[arg-type]
                policy=dict(record.get("policy") or {}),  # type: ignore[arg-type]
                jobs=[dict(job) for job in record.get("jobs") or []],  # type: ignore[union-attr]
            )
            continue
        if state is None:
            break  # records before the submit: corruption, stop
        key = str(record.get("key", ""))
        if kind == "lease":
            state.leases += 1
        elif kind == "charge":
            attempts = int(record.get("attempts", 0))  # type: ignore[arg-type]
            state.charges[key] = max(state.charges.get(key, 0), attempts)
        elif kind == "done":
            state.results[key] = dict(record.get("metrics") or {})  # type: ignore[arg-type]
            if record.get("cached"):
                state.cached.add(key)
        elif kind == "failed":
            state.failures[key] = dict(record.get("failure") or {})  # type: ignore[arg-type]
        elif kind == "cancel":
            state.cancelled = True
    if state is not None and not state.run_id:
        return None
    return state
