"""repro.distributed — queue-backed distributed execution over raw sockets.

The execution layer (:mod:`repro.scenarios.execution`) was designed for
distribution: unit jobs are pure functions of ``(spec, seed)`` with
content-addressed keys, results merge by key, and the
:class:`~repro.scenarios.execution.ExecutionBackend` contract never cares
*where* a job ran.  This package supplies the missing transport — a
dependency-free broker/worker architecture over length-prefixed JSON
frames on TCP or Unix sockets:

- :mod:`repro.distributed.protocol` — the wire format: 4-byte big-endian
  length prefix, UTF-8 JSON dict payload, plus address parsing
  (``host:port`` / ``unix:/path``).
- :mod:`repro.distributed.broker` — ``repro-broker``: a priority job
  queue with lease-based dispatch, worker heartbeats, and per-(key,
  attempt) accounting that reuses :class:`JobPolicy` retry/backoff
  semantics and the :class:`JobFailure` manifest.  A worker that
  disconnects or misses its heartbeats mid-lease gets the job requeued
  *uncharged*; a reported failure charges one attempt and backs off
  deterministically.
- :mod:`repro.distributed.worker` — ``repro-worker``: pulls seed-pinned
  unit jobs, checks a shared RunStore unit cache first (cross-worker
  dedupe/resume), executes through the existing
  :func:`~repro.scenarios.execution.execute_unit` path (fault-injection
  hooks included) and reports metrics keyed by job key.
- :mod:`repro.distributed.backend` — :class:`DistributedBackend`, an
  :class:`ExecutionBackend` that submits a plan to a broker and merges
  streamed completions; byte-identical to ``SerialBackend`` at any
  worker count.
- :mod:`repro.distributed.service` — ``repro-serve``: the first service
  increment; accepts whole study submissions over the same protocol,
  streams progress events, and serves finished ResultSets by name.
- :mod:`repro.distributed.journal` — the broker's write-ahead journal:
  per-run JSONL transition logs under the RunStore directory, replayed
  on start so a ``kill -9`` mid-run resumes (in-flight leases requeued
  uncharged, settled results re-delivered on client re-attach) and
  deleted when a run retires.

Everything here is transport; no simulation semantics live in this
package, which is why it sits outside the reprolint RL005 purity zone
(wall clocks schedule leases and heartbeats, never metric values).
"""

from repro.distributed.backend import DistributedBackend
from repro.distributed.broker import BrokerQueue, BrokerServer
from repro.distributed.journal import JournalDir, RunJournal
from repro.distributed.protocol import (
    FrameError,
    MAX_FRAME_BYTES,
    parse_address,
    recv_frame,
    send_frame,
    wait_readable,
)
from repro.distributed.worker import Worker

__all__ = [
    "BrokerQueue",
    "BrokerServer",
    "DistributedBackend",
    "FrameError",
    "JournalDir",
    "MAX_FRAME_BYTES",
    "RunJournal",
    "Worker",
    "parse_address",
    "recv_frame",
    "send_frame",
    "wait_readable",
]
