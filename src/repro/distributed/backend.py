""":class:`DistributedBackend` — run an ExecutionPlan through a broker.

The backend is a straight client of the broker protocol: it submits the
plan's pending unit jobs plus the run's
:class:`~repro.scenarios.execution.JobPolicy`, then consumes the event
stream, merging each ``job-done`` by content-addressed job key.  Metrics
ride the wire as JSON, whose float round-trip is exact (shortest-repr),
so the assembled output is byte-identical to :class:`SerialBackend` at
any worker count and any completion order — the same merge-by-key
argument the process-pool backend makes, stretched across hosts.

Failure semantics mirror the in-process supervised backends: retries and
backoff happen broker-side with the same deterministic schedule, a job
that exhausts its budget arrives as a ``job-failed`` event carrying the
:class:`~repro.scenarios.execution.JobFailure`, and ``keep_going``
selects between collecting it into the caller's failure manifest and
aborting with :class:`~repro.scenarios.execution.JobExecutionError`
(closing the connection cancels the run broker-side).

With ``reattach`` enabled (the default), a broker connection lost
mid-run — most importantly a broker that was killed and restarted
against its journal — is ridden out: the backend reconnects with
backoff and re-submits the *same* run id, which re-attaches to the
journaled run; every already-settled event is replayed (duplicates are
dropped by key) and the stream continues.  Against a journal-less
broker the re-submit simply re-enqueues the outstanding jobs, which is
equally byte-identical because unit jobs are pure functions of
``(spec, seed)``.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Callable, Dict, Mapping, Optional, Set

from repro.distributed.broker import policy_to_dict
from repro.distributed.protocol import (
    FrameError,
    connect,
    recv_frame,
    send_frame,
)
from repro.scenarios.execution import (
    ExecutionBackend,
    ExecutionPlan,
    JobExecutionError,
    JobFailure,
    JobPolicy,
    ProgressCallback,
    UnitJob,
)

_RUN_SEQ = itertools.count(1)

#: Seconds between reconnect attempts while re-attaching.
_REATTACH_BACKOFF_S = 0.5


class DistributedBackend(ExecutionBackend):
    """Execute unit jobs on workers attached to a ``repro-broker``.

    ``broker`` is the broker address (``HOST:PORT`` or ``unix:/path``).
    ``run_id`` overrides the auto-derived run identifier (useful for
    tests); it only names the run broker-side and never affects results.
    ``reattach`` rides out a lost broker connection by reconnecting and
    re-submitting the same run id for up to ``reattach_timeout`` seconds
    per outage; ``False`` fails fast on the first stream loss.
    """

    def __init__(self, broker: str, run_id: Optional[str] = None,
                 connect_timeout: float = 10.0,
                 reattach: bool = True,
                 reattach_timeout: float = 60.0) -> None:
        self.broker = broker
        self.run_id = run_id
        self.connect_timeout = connect_timeout
        self.reattach = reattach
        self.reattach_timeout = reattach_timeout

    def execute(
        self,
        plan: ExecutionPlan,
        completed: Optional[Mapping[str, Dict[str, float]]] = None,
        progress: Optional[ProgressCallback] = None,
        on_result: Optional[Callable[[str, Dict[str, float]], None]] = None,
        policy: Optional[JobPolicy] = None,
        failures: Optional[Dict[str, JobFailure]] = None,
    ) -> Dict[str, Dict[str, float]]:
        pending = self.pending_jobs(plan, completed)
        if not pending:
            return {}
        policy = policy or JobPolicy()
        jobs_by_key = {job.key: job for job in pending}
        run_id = self.run_id or (
            f"{plan.name or 'plan'}-{os.getpid()}-{next(_RUN_SEQ)}")
        total = len(plan.jobs)
        base_done = total - len(pending)
        fresh: Dict[str, Dict[str, float]] = {}
        failed_keys: Set[str] = set()
        wire_jobs = [self._wire_job(job) for job in pending]
        submitted_once = False
        deadline: Optional[float] = None

        while True:
            try:
                conn = connect(self.broker, timeout=self.connect_timeout)
            except OSError as error:
                if not self._may_retry(submitted_once, deadline):
                    raise
                deadline = deadline or (
                    time.monotonic() + self.reattach_timeout)
                time.sleep(_REATTACH_BACKOFF_S)
                continue
            try:
                send_frame(conn, {
                    "type": "submit",
                    "run": run_id,
                    "policy": policy_to_dict(policy),
                    "jobs": wire_jobs,
                })
                reply = recv_frame(conn)
                if reply is None or reply.get("type") != "submitted":
                    raise ConnectionError(
                        f"broker {self.broker} rejected run {run_id!r}: "
                        f"{(reply or {}).get('error', 'connection closed')}")
                submitted_once = True
                deadline = None  # each outage gets a fresh retry window
                while True:
                    event = recv_frame(conn)
                    if event is None:
                        raise ConnectionError(
                            f"broker {self.broker} closed the stream "
                            f"mid-run ({base_done + len(fresh) + len(failed_keys)}"
                            f"/{total} jobs done)")
                    kind = event.get("type")
                    if kind == "tick":
                        continue
                    if kind == "job-done":
                        key = str(event["key"])
                        if key in fresh:
                            continue  # re-attach replay: already merged
                        metrics = dict(event.get("metrics") or {})  # type: ignore[arg-type]
                        fresh[key] = metrics
                        if on_result is not None:
                            on_result(key, metrics)
                        if progress is not None:
                            progress(base_done + len(fresh) + len(failed_keys),
                                     total, jobs_by_key.get(key))
                        continue
                    if kind == "job-failed":
                        failure = JobFailure.from_dict(
                            event.get("failure") or {})  # type: ignore[arg-type]
                        if failure.key in failed_keys:
                            continue  # re-attach replay: already counted
                        failed_keys.add(failure.key)
                        if failures is not None:
                            failures[failure.key] = failure
                        if not policy.keep_going:
                            # Closing the connection cancels the run
                            # broker-side.
                            raise JobExecutionError(failure)
                        if progress is not None:
                            progress(base_done + len(fresh) + len(failed_keys),
                                     total, jobs_by_key.get(failure.key))
                        continue
                    if kind == "run-done":
                        return fresh
            except JobExecutionError:
                raise
            except (ConnectionError, FrameError, OSError):
                if not self._may_retry(submitted_once, deadline):
                    raise
                deadline = deadline or (
                    time.monotonic() + self.reattach_timeout)
                time.sleep(_REATTACH_BACKOFF_S)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def _may_retry(self, submitted_once: bool,
                   deadline: Optional[float]) -> bool:
        """Whether a lost connection should be ridden out with a re-attach."""
        if not self.reattach or not submitted_once:
            return False  # fail fast: disabled, or never reached the broker
        return deadline is None or time.monotonic() < deadline

    @staticmethod
    def _wire_job(job: UnitJob) -> Dict[str, object]:
        return {"key": job.key, "spec": job.spec.to_dict(),
                "seed": job.seed, "scenario": job.spec.name}
