"""``repro-worker``: executes leased unit jobs from a broker.

A worker is a thin shell around the existing in-process execution path:
it leases a seed-pinned unit job, rebuilds the
:class:`~repro.scenarios.spec.ScenarioSpec` from the wire, and runs it
through :func:`~repro.scenarios.execution._run_unit_attempt` — the same
code the serial and pool backends use, fault-injection hooks and
wall-clock budget included.  Metrics go back keyed by the job's
content-addressed key, which is all the submitting client needs to merge
byte-identically with a serial run.

Before executing, the worker consults a shared
:class:`~repro.analysis.runstore.RunStore` unit cache when one is
configured (``--runs-dir``): a hit is reported as a (cached) completion
without recomputation, giving cross-worker dedupe and resume for free —
two workers pointed at the same store never run the same ``(spec, seed)``
twice across runs.  Fresh metrics are written back to the cache before
they are reported, so the store is never behind the broker.

While a job runs, a daemon thread heartbeats the lease every
``lease_ttl / 3`` seconds; a worker that dies (or loses its network)
simply stops heartbeating and the broker requeues the job uncharged.

Run as a process::

    repro-worker --broker 127.0.0.1:7480 --runs-dir runs
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
from typing import Dict, List, Optional

from repro.distributed.protocol import FrameError, connect, recv_frame, send_frame
from repro.scenarios.execution import (
    JobTimeoutError,
    UnitJob,
    _describe_error,
    _run_unit_attempt,
)
from repro.scenarios.faults import WORKER_PROCESS_ENV
from repro.scenarios.spec import ScenarioSpec

#: Default seconds one lease request waits for a job before re-polling.
DEFAULT_POLL_S = 5.0

#: Default seconds to keep retrying the initial broker connection.
DEFAULT_CONNECT_TIMEOUT_S = 10.0


class Worker:
    """One worker loop bound to a broker address.

    ``store`` (a :class:`~repro.analysis.runstore.RunStore` or ``None``)
    enables the shared unit-cache check.  ``run()`` leases until the
    broker says ``stop``, the connection drops, ``max_jobs`` is reached,
    or ``stop_event`` is set; it returns the number of jobs executed
    (cache hits included).
    """

    def __init__(self, broker: str, name: Optional[str] = None,
                 store=None, poll_s: float = DEFAULT_POLL_S) -> None:
        self.broker = broker
        self.name = name or f"worker-{os.getpid()}"
        self.store = store
        self.poll_s = poll_s
        self._send_lock = threading.Lock()

    def run(self, stop_event: Optional[threading.Event] = None,
            max_jobs: Optional[int] = None,
            connect_timeout: float = DEFAULT_CONNECT_TIMEOUT_S) -> int:
        conn = self._connect(connect_timeout)
        executed = 0
        try:
            self._send(conn, {"type": "hello", "role": "worker",
                              "worker": self.name})
            while max_jobs is None or executed < max_jobs:
                if stop_event is not None and stop_event.is_set():
                    return executed
                self._send(conn, {"type": "lease", "wait_s": self.poll_s})
                reply = recv_frame(conn)
                if reply is None or reply.get("type") == "stop":
                    return executed
                if reply.get("type") != "job":
                    continue  # idle poll; lease again
                self._execute(conn, reply)
                executed += 1
            return executed
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # -- internals -----------------------------------------------------
    def _connect(self, timeout: float) -> socket.socket:
        """Connect with retries: the broker may still be binding its port."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return connect(self.broker, timeout=5.0)
            except OSError as error:
                if time.monotonic() >= deadline:
                    raise ConnectionError(
                        f"could not reach broker {self.broker}: {error}"
                    ) from error
                time.sleep(0.2)

    def _send(self, conn: socket.socket, message: Dict[str, object]) -> None:
        with self._send_lock:
            send_frame(conn, message)

    def _execute(self, conn: socket.socket, message: Dict[str, object]) -> None:
        lease = str(message["lease"])
        key = str(message["key"])
        attempt = int(message.get("attempt", 1))  # type: ignore[arg-type]
        timeout_s = message.get("timeout_s")
        lease_ttl = float(message.get("lease_ttl", 15.0))  # type: ignore[arg-type]

        if self.store is not None:
            cached = self.store.get_unit(key)
            if cached is not None:
                self._send(conn, {"type": "complete", "lease": lease,
                                  "metrics": cached, "cached": True})
                return

        job = UnitJob(key=key,
                      spec=ScenarioSpec.from_dict(message["spec"]),  # type: ignore[arg-type]
                      seed=int(message["seed"]))  # type: ignore[arg-type]
        done = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(conn, lease, lease_ttl, done),
            name=f"heartbeat-{lease}", daemon=True)
        beat.start()
        try:
            metrics = _run_unit_attempt(
                job, attempt,
                float(timeout_s) if timeout_s else None)  # type: ignore[arg-type]
        except JobTimeoutError as error:
            done.set()
            self._send(conn, {"type": "fail", "lease": lease,
                              "kind": "timeout",
                              "error": _describe_error(error)})
            return
        except Exception as error:  # noqa: BLE001 - reported, not fatal
            done.set()
            self._send(conn, {"type": "fail", "lease": lease,
                              "kind": "exception",
                              "error": _describe_error(error)})
            return
        finally:
            done.set()
        if self.store is not None:
            self.store.put_unit(key, metrics)
        self._send(conn, {"type": "complete", "lease": lease,
                          "metrics": metrics})

    def _heartbeat_loop(self, conn: socket.socket, lease: str,
                        lease_ttl: float, done: threading.Event) -> None:
        interval = max(0.5, lease_ttl / 3.0)
        while not done.wait(interval):
            try:
                self._send(conn, {"type": "heartbeat", "lease": lease})
            except (FrameError, OSError):
                return  # connection gone; the job's report will fail too


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Pull and execute unit jobs from a repro-broker.")
    parser.add_argument("--broker", required=True, metavar="ADDR",
                        help="broker address (HOST:PORT or unix:/path)")
    parser.add_argument("--name", default=None,
                        help="worker name for broker-side accounting "
                             "(default: worker-<pid>)")
    parser.add_argument("--runs-dir", default=None, metavar="PATH",
                        help="shared run store for the unit-cache check "
                             "(cross-worker dedupe/resume); default: none")
    parser.add_argument("--poll", type=float, default=DEFAULT_POLL_S,
                        metavar="S", help="lease poll interval in seconds")
    parser.add_argument("--max-jobs", type=int, default=None, metavar="N",
                        help="exit after executing N jobs (default: serve "
                             "until the broker stops)")
    parser.add_argument("--connect-timeout", type=float,
                        default=DEFAULT_CONNECT_TIMEOUT_S, metavar="S",
                        help="seconds to keep retrying the first connection")
    args = parser.parse_args(argv)

    # Mark this process as a worker so a scripted ``kill`` fault
    # (REPRO_FAULT_PLAN) hard-exits it the way it does pool workers.
    os.environ[WORKER_PROCESS_ENV] = "1"

    store = None
    if args.runs_dir:
        from repro.analysis.runstore import RunStore

        store = RunStore(args.runs_dir)
    worker = Worker(args.broker, name=args.name, store=store,
                    poll_s=args.poll)
    try:
        executed = worker.run(max_jobs=args.max_jobs,
                              connect_timeout=args.connect_timeout)
    except ConnectionError as error:
        print(f"repro-worker: {error}", file=sys.stderr)
        return 1
    except (FrameError, OSError) as error:
        print(f"repro-worker: connection lost: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0
    print(f"repro-worker {worker.name}: {executed} job(s) executed",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
