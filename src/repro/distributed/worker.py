"""``repro-worker``: executes leased unit jobs from a broker.

A worker is a thin shell around the existing in-process execution path:
it leases a seed-pinned unit job, rebuilds the
:class:`~repro.scenarios.spec.ScenarioSpec` from the wire, and runs it
through :func:`~repro.scenarios.execution._run_unit_attempt` — the same
code the serial and pool backends use, fault-injection hooks and
wall-clock budget included.  Metrics go back keyed by the job's
content-addressed key, which is all the submitting client needs to merge
byte-identically with a serial run.

Before executing, the worker consults a shared
:class:`~repro.analysis.runstore.RunStore` unit cache when one is
configured (``--runs-dir``): a hit is reported as a (cached) completion
without recomputation, giving cross-worker dedupe and resume for free —
two workers pointed at the same store never run the same ``(spec, seed)``
twice across runs.  Fresh metrics are written back to the cache before
they are reported, so the store is never behind the broker.

While a job runs, a daemon thread heartbeats the lease every
``lease_ttl / 3`` seconds and the main thread watches the connection for
the broker's ``heartbeat-ack`` replies.  An ack with ``ok=false`` means
the lease was reaped (expired behind a stall, or its run was cancelled):
the worker *abandons* the attempt — a :class:`LeaseRevoked` is injected
into the attempt thread (best-effort; Python threads cannot be killed,
the same caveat :func:`_run_unit_attempt`'s own watchdog carries),
nothing is reported, nothing is written to the cache, and the worker
goes back to leasing instead of finishing a result the broker would
silently drop.  A worker that dies outright simply stops heartbeating
and the broker requeues the job uncharged.

Run as a process::

    repro-worker --broker 127.0.0.1:7480 --runs-dir runs
"""

from __future__ import annotations

import argparse
import ctypes
import os
import socket
import sys
import threading
import time
from typing import Dict, List, Optional

from repro.distributed.protocol import (
    FrameError,
    connect,
    recv_frame,
    send_frame,
    wait_readable,
)
from repro.scenarios.execution import (
    JobTimeoutError,
    UnitJob,
    _describe_error,
    _run_unit_attempt,
)
from repro.scenarios.faults import WORKER_PROCESS_ENV
from repro.scenarios.spec import ScenarioSpec

#: Default seconds one lease request waits for a job before re-polling.
DEFAULT_POLL_S = 5.0

#: Default seconds to keep retrying the initial broker connection.
DEFAULT_CONNECT_TIMEOUT_S = 10.0

#: Seconds between checks of the connection while an attempt runs.
_ACK_POLL_S = 0.2


class LeaseRevoked(BaseException):
    """Injected into an attempt whose lease the broker reaped.

    Derives from :class:`BaseException` so scenario code catching
    ``Exception`` cannot swallow the revocation.
    """


class Worker:
    """One worker loop bound to a broker address.

    ``store`` (a :class:`~repro.analysis.runstore.RunStore` or ``None``)
    enables the shared unit-cache check.  ``run()`` leases until the
    broker says ``stop``, the connection drops, ``max_jobs`` is reached,
    or ``stop_event`` is set; it returns the number of jobs executed
    (cache hits included).  ``abandoned`` counts attempts dropped after
    a ``heartbeat-ack`` reported the lease reaped.
    """

    def __init__(self, broker: str, name: Optional[str] = None,
                 store=None, poll_s: float = DEFAULT_POLL_S) -> None:
        self.broker = broker
        self.name = name or f"worker-{os.getpid()}"
        self.store = store
        self.poll_s = poll_s
        self.abandoned = 0
        self._send_lock = threading.Lock()

    def run(self, stop_event: Optional[threading.Event] = None,
            max_jobs: Optional[int] = None,
            connect_timeout: float = DEFAULT_CONNECT_TIMEOUT_S) -> int:
        conn = self._connect(connect_timeout)
        executed = 0
        try:
            self._send(conn, {"type": "hello", "role": "worker",
                              "worker": self.name})
            while max_jobs is None or executed < max_jobs:
                if stop_event is not None and stop_event.is_set():
                    return executed
                self._send(conn, {"type": "lease", "wait_s": self.poll_s})
                reply = self._recv_reply(conn)
                if reply is None or reply.get("type") == "stop":
                    return executed
                if reply.get("type") != "job":
                    continue  # idle poll; lease again
                self._execute(conn, reply)
                executed += 1
            return executed
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # -- internals -----------------------------------------------------
    def _connect(self, timeout: float) -> socket.socket:
        """Connect with retries: the broker may still be binding its port."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return connect(self.broker, timeout=5.0)
            except OSError as error:
                if time.monotonic() >= deadline:
                    raise ConnectionError(
                        f"could not reach broker {self.broker}: {error}"
                    ) from error
                time.sleep(0.2)

    def _send(self, conn: socket.socket, message: Dict[str, object]) -> None:
        with self._send_lock:
            send_frame(conn, message)

    @staticmethod
    def _recv_reply(conn: socket.socket) -> Optional[Dict[str, object]]:
        """The next non-ack frame (stray heartbeat-acks are skipped)."""
        while True:
            reply = recv_frame(conn)
            if reply is None or reply.get("type") != "heartbeat-ack":
                return reply

    def _execute(self, conn: socket.socket, message: Dict[str, object]) -> None:
        lease = str(message["lease"])
        key = str(message["key"])
        attempt = int(message.get("attempt", 1))  # type: ignore[arg-type]
        timeout_s = message.get("timeout_s")
        lease_ttl = float(message.get("lease_ttl", 15.0))  # type: ignore[arg-type]

        if self.store is not None:
            cached = self.store.get_unit(key)
            if cached is not None:
                self._send(conn, {"type": "complete", "lease": lease,
                                  "metrics": cached, "cached": True})
                return

        job = UnitJob(key=key,
                      spec=ScenarioSpec.from_dict(message["spec"]),  # type: ignore[arg-type]
                      seed=int(message["seed"]))  # type: ignore[arg-type]
        done = threading.Event()
        outcome: Dict[str, object] = {}

        def _attempt() -> None:
            try:
                outcome["metrics"] = _run_unit_attempt(
                    job, attempt,
                    float(timeout_s) if timeout_s else None)  # type: ignore[arg-type]
            except LeaseRevoked:
                pass  # abandoned: the broker already requeued the job
            except JobTimeoutError as error:
                outcome["timeout"] = error
            except Exception as error:  # noqa: BLE001 - reported, not fatal
                outcome["error"] = error

        runner = threading.Thread(target=_attempt, daemon=True,
                                  name=f"attempt-{lease}")
        runner.start()
        beat = threading.Thread(
            target=self._heartbeat_loop, args=(conn, lease, lease_ttl, done),
            name=f"heartbeat-{lease}", daemon=True)
        beat.start()
        try:
            if self._watch_attempt(conn, lease, runner):
                # Lease reaped: abandon the attempt, report nothing.
                self.abandoned += 1
                self._revoke(runner)
                runner.join(timeout=5.0)
                return
        finally:
            done.set()
        if "timeout" in outcome:
            self._send(conn, {"type": "fail", "lease": lease,
                              "kind": "timeout",
                              "error": _describe_error(outcome["timeout"])})
            return
        if "error" in outcome:
            self._send(conn, {"type": "fail", "lease": lease,
                              "kind": "exception",
                              "error": _describe_error(outcome["error"])})
            return
        metrics = outcome.get("metrics")
        if metrics is None:
            return  # revoked raced the finish line; nothing to report
        if self.store is not None:
            self.store.put_unit(key, metrics)
        self._send(conn, {"type": "complete", "lease": lease,
                          "metrics": metrics})

    def _watch_attempt(self, conn: socket.socket, lease: str,
                       runner: threading.Thread) -> bool:
        """Wait out the attempt while reading broker frames.

        Returns ``True`` when a ``heartbeat-ack`` reports the lease
        reaped (the attempt must be abandoned), ``False`` when the
        attempt finished and its outcome should be reported.  A dead
        connection raises: there is no broker left to report to.
        """
        while runner.is_alive():
            if not wait_readable(conn, _ACK_POLL_S):
                continue
            frame = recv_frame(conn)
            if frame is None:
                raise FrameError("broker closed the connection mid-job")
            if (frame.get("type") == "heartbeat-ack"
                    and frame.get("lease") == lease
                    and not frame.get("ok", True)):
                return True
            # ok-acks (and anything unexpected) are just liveness noise.
        return False

    @staticmethod
    def _revoke(runner: threading.Thread) -> None:
        """Best-effort LeaseRevoked injection into the attempt thread.

        CPython delivers the exception at the next bytecode boundary, so
        a pure-Python simulation stops burning CPU promptly; code blocked
        in C keeps the thread alive until it returns (it is a daemon
        thread, the same abandonment :func:`_run_unit_attempt`'s timeout
        watchdog accepts).
        """
        ident = runner.ident
        if ident is None or not runner.is_alive():
            return
        try:
            injected = ctypes.pythonapi.PyThreadState_SetAsyncExc(
                ctypes.c_ulong(ident), ctypes.py_object(LeaseRevoked))
            if injected > 1:  # hit more than one thread state: undo
                ctypes.pythonapi.PyThreadState_SetAsyncExc(
                    ctypes.c_ulong(ident), None)
        except (AttributeError, OSError, ValueError):
            pass  # non-CPython: the daemon thread is simply abandoned

    def _heartbeat_loop(self, conn: socket.socket, lease: str,
                        lease_ttl: float, done: threading.Event) -> None:
        interval = max(0.5, lease_ttl / 3.0)
        while not done.wait(interval):
            try:
                self._send(conn, {"type": "heartbeat", "lease": lease})
            except (FrameError, OSError):
                return  # connection gone; the job's report will fail too


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Pull and execute unit jobs from a repro-broker.")
    parser.add_argument("--broker", required=True, metavar="ADDR",
                        help="broker address (HOST:PORT or unix:/path)")
    parser.add_argument("--name", default=None,
                        help="worker name for broker-side accounting "
                             "(default: worker-<pid>)")
    parser.add_argument("--runs-dir", default=None, metavar="PATH",
                        help="shared run store for the unit-cache check "
                             "(cross-worker dedupe/resume); default: none")
    parser.add_argument("--poll", type=float, default=DEFAULT_POLL_S,
                        metavar="S", help="lease poll interval in seconds")
    parser.add_argument("--max-jobs", type=int, default=None, metavar="N",
                        help="exit after executing N jobs (default: serve "
                             "until the broker stops)")
    parser.add_argument("--connect-timeout", type=float,
                        default=DEFAULT_CONNECT_TIMEOUT_S, metavar="S",
                        help="seconds to keep retrying the first connection")
    args = parser.parse_args(argv)

    # Mark this process as a worker so a scripted ``kill`` fault
    # (REPRO_FAULT_PLAN) hard-exits it the way it does pool workers.
    os.environ[WORKER_PROCESS_ENV] = "1"

    store = None
    if args.runs_dir:
        from repro.analysis.runstore import RunStore

        store = RunStore(args.runs_dir)
    worker = Worker(args.broker, name=args.name, store=store,
                    poll_s=args.poll)
    try:
        executed = worker.run(max_jobs=args.max_jobs,
                              connect_timeout=args.connect_timeout)
    except ConnectionError as error:
        print(f"repro-worker: {error}", file=sys.stderr)
        return 1
    except (FrameError, OSError) as error:
        print(f"repro-worker: connection lost: {error}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0
    print(f"repro-worker {worker.name}: {executed} job(s) executed"
          + (f", {worker.abandoned} abandoned" if worker.abandoned else ""),
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
