"""Chord structured overlay (finger-table routing on a ring).

Chord [6] is the other canonical DHT the paper's Section II-A discusses.
The simulator here is analytical/event-light: the ring and finger tables are
built explicitly, lookups are routed greedily through fingers, and each hop
samples a network delay.  It exists to (a) show the O(log N) hop behaviour
shared by structured overlays, (b) contrast with one-hop overlays in
Experiment E6, and (c) exercise failure behaviour when successor lists are
too short for the churn rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.p2p.identifiers import ID_BITS, ID_SPACE, random_id, ring_distance
from repro.sim.rng import SeededRNG


@dataclass
class ChordLookupResult:
    """Outcome of a single Chord lookup."""

    key: int
    origin: int
    responsible: Optional[int]
    hops: int
    latency: float
    success: bool


class ChordNode:
    """One Chord peer: identifier, finger table and successor list."""

    def __init__(self, node_id: int, successor_list_size: int = 8) -> None:
        self.node_id = node_id
        self.fingers: List[int] = []
        self.successors: List[int] = []
        self.successor_list_size = successor_list_size
        self.online = True

    def closest_preceding(self, key: int, alive: Set[int]) -> Optional[int]:
        """Best known finger that precedes ``key`` and is believed alive."""
        best: Optional[int] = None
        best_distance = ring_distance(self.node_id, key)
        for finger in self.fingers + self.successors:
            if finger not in alive:
                continue
            distance = ring_distance(finger, key)
            if 0 < distance < best_distance or (best is None and finger != self.node_id):
                if distance < best_distance:
                    best = finger
                    best_distance = distance
        return best


class ChordNetwork:
    """A converged Chord ring with configurable hop latency."""

    def __init__(
        self,
        size: int,
        successor_list_size: int = 8,
        hop_latency_mean: float = 0.08,
        seed: int = 0,
    ) -> None:
        if size < 2:
            raise ValueError("a Chord ring needs at least two nodes")
        self.rng = SeededRNG(seed)
        self.hop_latency_mean = hop_latency_mean
        ids: Set[int] = set()
        while len(ids) < size:
            ids.add(random_id(self.rng))
        self.ring: List[int] = sorted(ids)
        self.nodes: Dict[int, ChordNode] = {
            node_id: ChordNode(node_id, successor_list_size) for node_id in self.ring
        }
        self._build_tables()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _successor_of(self, key: int) -> int:
        """The first node clockwise from ``key`` (binary search over the ring)."""
        low, high = 0, len(self.ring)
        while low < high:
            mid = (low + high) // 2
            if self.ring[mid] < key:
                low = mid + 1
            else:
                high = mid
        return self.ring[low % len(self.ring)]

    def _build_tables(self) -> None:
        n = len(self.ring)
        for index, node_id in enumerate(self.ring):
            node = self.nodes[node_id]
            node.successors = [
                self.ring[(index + offset) % n]
                for offset in range(1, node.successor_list_size + 1)
            ]
            node.fingers = []
            for bit in range(ID_BITS):
                start = (node_id + (1 << bit)) % ID_SPACE
                finger = self._successor_of(start)
                if finger != node_id and (not node.fingers or node.fingers[-1] != finger):
                    node.fingers.append(finger)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def responsible_for(self, key: int) -> int:
        """The node responsible for ``key`` (its successor on the ring)."""
        return self._successor_of(key % ID_SPACE)

    def fail_nodes(self, fraction: float) -> List[int]:
        """Mark a random fraction of nodes as failed; returns their identifiers."""
        count = int(len(self.ring) * fraction)
        failed = self.rng.sample(self.ring, count)
        for node_id in failed:
            self.nodes[node_id].online = False
        return failed

    def alive_ids(self) -> Set[int]:
        """Identifiers of nodes currently online."""
        return {node_id for node_id, node in self.nodes.items() if node.online}

    def lookup(self, origin_id: int, key: int, max_hops: int = 64) -> ChordLookupResult:
        """Greedy finger-table routing from ``origin_id`` towards ``key``."""
        alive = self.alive_ids()
        if origin_id not in alive:
            return ChordLookupResult(key, origin_id, None, 0, 0.0, False)
        target = self.responsible_for(key)
        current = origin_id
        hops = 0
        latency = 0.0
        while hops < max_hops:
            if current == target or ring_distance(current, key) == 0:
                return ChordLookupResult(key, origin_id, current, hops, latency, True)
            node = self.nodes[current]
            # Check whether the key falls between us and our first live successor.
            live_successors = [s for s in node.successors if s in alive]
            if live_successors:
                first = live_successors[0]
                if ring_distance(current, key) <= ring_distance(current, first):
                    latency += self._hop_latency()
                    hops += 1
                    return ChordLookupResult(key, origin_id, first, hops, latency, True)
            next_hop = node.closest_preceding(key, alive)
            if next_hop is None or next_hop == current:
                return ChordLookupResult(key, origin_id, None, hops, latency, False)
            latency += self._hop_latency()
            hops += 1
            current = next_hop
        return ChordLookupResult(key, origin_id, None, hops, latency, False)

    def _hop_latency(self) -> float:
        return self.rng.exponential(self.hop_latency_mean)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def average_hops(self, lookups: int = 200) -> float:
        """Mean hop count over random successful lookups."""
        alive = list(self.alive_ids())
        total = 0
        successes = 0
        for _ in range(lookups):
            origin = self.rng.choice(alive)
            key = random_id(self.rng)
            result = self.lookup(origin, key)
            if result.success:
                total += result.hops
                successes += 1
        return total / successes if successes else float("inf")

    def routing_state_per_node(self) -> float:
        """Average number of routing entries (fingers + successors) per node."""
        total = sum(
            len(node.fingers) + len(node.successors) for node in self.nodes.values()
        )
        return total / len(self.nodes)
