"""BitTorrent tit-for-tat swarm model (Experiment E4, second half).

Section II-B, Problem 1: "BitTorrent mitigated the free riding problem by
designing the protocol including incentives (tit-for-tat). If peers do not
contribute, others would not reciprocate.  But again, collaboration is only
enforced during the download process."

The swarm model is round-based (10-second choking rounds, as in the real
protocol): each leecher unchokes the peers that uploaded most to it in the
previous round plus one optimistic unchoke, seeds unchoke round-robin, and
peers leave shortly after completing their download (the enforcement gap the
paper points at).  Experiment E4 uses it to show that (a) contribution and
download speed are strongly coupled while downloading, and (b) the seeding
population collapses once downloads complete, so there is no incentive to
maintain the infrastructure afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.stats import mean
from repro.sim.rng import SeededRNG


@dataclass
class SwarmConfig:
    """Swarm composition and protocol parameters."""

    leechers: int = 60
    seeds: int = 4
    file_pieces: int = 400
    piece_size_kb: float = 256.0
    round_seconds: float = 10.0
    unchoke_slots: int = 4
    optimistic_slots: int = 1
    free_rider_fraction: float = 0.25       # peers that upload nothing
    upload_capacity_pieces: float = 8.0     # pieces/round an average peer can upload
    capacity_heterogeneity: float = 0.6     # lognormal sigma of per-peer capacity
    seed_lingering_rounds: int = 3          # rounds a finished peer stays before leaving
    max_rounds: int = 3000


@dataclass
class PeerState:
    """Per-peer dynamic state tracked across rounds."""

    peer_id: int
    is_seed: bool
    free_rider: bool
    upload_capacity: float
    pieces: float = 0.0
    uploaded: float = 0.0
    downloaded: float = 0.0
    completed_round: Optional[int] = None
    departed: bool = False
    received_from: Dict[int, float] = field(default_factory=dict)


@dataclass
class SwarmResult:
    """Aggregate outcome of a swarm simulation."""

    rounds: int
    completion_rounds: Dict[int, int]
    uploads: Dict[int, float]
    downloads: Dict[int, float]
    free_riders: List[int]
    contributors: List[int]
    seeds_over_time: List[int]

    def mean_completion_time(self, peer_ids: List[int]) -> float:
        """Mean completion round of the given peers (inf if some never finished)."""
        times = [self.completion_rounds.get(pid) for pid in peer_ids]
        if any(value is None for value in times):
            return float("inf")
        return mean([float(value) for value in times if value is not None])

    def free_rider_penalty(self) -> float:
        """How many times longer free riders took to finish than contributors."""
        contributor_time = self.mean_completion_time(self.contributors)
        free_rider_time = self.mean_completion_time(self.free_riders)
        if contributor_time in (0.0, float("inf")):
            return float("inf")
        return free_rider_time / contributor_time

    def post_completion_seed_ratio(self) -> float:
        """Seeds remaining at the end divided by the swarm's peak seed count."""
        if not self.seeds_over_time:
            return 0.0
        peak = max(self.seeds_over_time)
        return self.seeds_over_time[-1] / peak if peak else 0.0


class TitForTatSwarm:
    """Round-based BitTorrent swarm with tit-for-tat choking."""

    def __init__(self, config: Optional[SwarmConfig] = None, seed: int = 0) -> None:
        self.config = config or SwarmConfig()
        self.rng = SeededRNG(seed)
        self.peers: Dict[int, PeerState] = {}
        self._build_swarm()

    def _build_swarm(self) -> None:
        config = self.config
        peer_id = 0
        for _ in range(config.seeds):
            self.peers[peer_id] = PeerState(
                peer_id=peer_id,
                is_seed=True,
                free_rider=False,
                upload_capacity=self._sample_capacity(),
                pieces=float(config.file_pieces),
            )
            peer_id += 1
        free_riders = int(round(config.leechers * config.free_rider_fraction))
        for index in range(config.leechers):
            self.peers[peer_id] = PeerState(
                peer_id=peer_id,
                is_seed=False,
                free_rider=index < free_riders,
                upload_capacity=self._sample_capacity(),
            )
            peer_id += 1

    def _sample_capacity(self) -> float:
        factor = self.rng.lognormal(0.0, self.config.capacity_heterogeneity)
        return max(0.5, self.config.upload_capacity_pieces * factor)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def run(self) -> SwarmResult:
        """Run choking rounds until every leecher finishes (or max rounds)."""
        config = self.config
        seeds_over_time: List[int] = []
        round_index = 0
        while round_index < config.max_rounds:
            round_index += 1
            active = [peer for peer in self.peers.values() if not peer.departed]
            leechers = [peer for peer in active if not self._has_all_pieces(peer)]
            if not leechers:
                seeds_over_time.append(self._count_seeds())
                break
            uploads_this_round: Dict[int, Dict[int, float]] = {}
            for peer in active:
                if peer.free_rider and not peer.is_seed:
                    continue
                targets = self._select_unchoked(peer, leechers)
                if not targets:
                    continue
                budget_per_target = peer.upload_capacity / len(targets)
                for target in targets:
                    uploads_this_round.setdefault(target.peer_id, {})[peer.peer_id] = (
                        budget_per_target
                    )
            self._apply_transfers(uploads_this_round, round_index)
            self._handle_departures(round_index)
            seeds_over_time.append(self._count_seeds())

        uploads = {pid: peer.uploaded for pid, peer in self.peers.items()}
        downloads = {pid: peer.downloaded for pid, peer in self.peers.items()}
        completion = {
            pid: peer.completed_round
            for pid, peer in self.peers.items()
            if peer.completed_round is not None and not peer.is_seed
        }
        free_riders = [pid for pid, peer in self.peers.items() if peer.free_rider]
        contributors = [
            pid for pid, peer in self.peers.items() if not peer.free_rider and not peer.is_seed
        ]
        return SwarmResult(
            rounds=round_index,
            completion_rounds=completion,
            uploads=uploads,
            downloads=downloads,
            free_riders=free_riders,
            contributors=contributors,
            seeds_over_time=seeds_over_time,
        )

    # ------------------------------------------------------------------
    # Protocol mechanics
    # ------------------------------------------------------------------
    def _has_all_pieces(self, peer: PeerState) -> bool:
        return peer.pieces >= self.config.file_pieces

    def _count_seeds(self) -> int:
        return sum(
            1
            for peer in self.peers.values()
            if not peer.departed and self._has_all_pieces(peer)
        )

    def _select_unchoked(self, peer: PeerState, leechers: List[PeerState]) -> List[PeerState]:
        candidates = [other for other in leechers if other.peer_id != peer.peer_id]
        if not candidates:
            return []
        if peer.is_seed or self._has_all_pieces(peer):
            # Seeds rotate: pick random leechers each round.
            count = min(self.config.unchoke_slots, len(candidates))
            return self.rng.sample(candidates, count)
        # Tit-for-tat: prefer peers that uploaded the most to us recently.
        by_reciprocity = sorted(
            candidates,
            key=lambda other: peer.received_from.get(other.peer_id, 0.0),
            reverse=True,
        )
        chosen = by_reciprocity[: self.config.unchoke_slots]
        remaining = [other for other in candidates if other not in chosen]
        for _ in range(self.config.optimistic_slots):
            if remaining:
                optimistic = self.rng.choice(remaining)
                chosen.append(optimistic)
                remaining.remove(optimistic)
        return chosen

    def _apply_transfers(
        self, uploads: Dict[int, Dict[int, float]], round_index: int
    ) -> None:
        for target_id, sources in uploads.items():
            target = self.peers[target_id]
            if target.departed:
                continue
            for source_id, amount in sources.items():
                source = self.peers[source_id]
                missing = self.config.file_pieces - target.pieces
                transferred = min(amount, max(0.0, missing))
                if transferred <= 0:
                    continue
                target.pieces += transferred
                target.downloaded += transferred
                target.received_from[source_id] = (
                    target.received_from.get(source_id, 0.0) * 0.5 + transferred
                )
                source.uploaded += transferred
            if self._has_all_pieces(target) and target.completed_round is None:
                target.completed_round = round_index

    def _handle_departures(self, round_index: int) -> None:
        for peer in self.peers.values():
            if peer.departed or peer.is_seed:
                continue
            if peer.completed_round is None:
                continue
            if round_index - peer.completed_round >= self.config.seed_lingering_rounds:
                peer.departed = True
