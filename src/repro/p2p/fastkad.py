"""Large-N Kademlia fast path over vectorized population state.

:class:`FastKademliaOverlay` answers the same questions as the scalar
:mod:`repro.p2p.lookup` experiment — lookup latency distribution,
failure rate, timeouts and hops under churn and routing-table staleness
— but holds the whole population in the arrays of
:mod:`repro.sim.vecstate` and advances it in *waves*: a batch of
concurrent lookups is driven hop-by-hop with whole-wave array
operations, churn flips cohorts between waves, and maintenance passes
sweep every routing table at once.  That turns the per-event Python
dispatch cost into a handful of numpy kernels per hop and makes a
10^5-node overlay under churn tractable on one core (the scalar
simulator's per-node objects stop being practical around 10^3).

Model, relative to the scalar message-level simulator:

* identifiers are 64-bit (:class:`~repro.sim.vecstate.VecIdSpace`)
  instead of 160 — order-equivalent while n << 2^64;
* a lookup is iterative greedy descent: each hop queries the current
  node's table, moves to the closest *live* contact, and pays one
  jittered round trip plus ``rpc_timeout / alpha`` for every dead or
  stale contact that sits closer than the chosen next hop (those are
  exactly the RPCs an alpha-parallel client would have burned a timeout
  on first); it terminates when no live contact improves the distance;
* success means the lookup reached the node that is *globally*
  XOR-closest to the target among currently-online nodes (computed
  exactly with :func:`~repro.sim.vecstate.xor_closest`), the same
  ground-truth criterion the scalar experiment uses;
* wave membership is frozen while a wave's hops run; churn advances
  between waves, so ``wave_size * lookup_interval`` bounds the
  membership-staleness granularity.

Metrics go through :class:`~repro.sim.metrics.MetricsRegistry`, and the
``metrics`` knob selects exact list-backed samples (default) or the
O(1)-memory streaming sketches — at 10^5+ lookups the streaming mode is
what keeps memory flat over run duration.  The reported summary uses
the same keys as :meth:`repro.p2p.lookup.LookupStats.summary` so
cross-substrate studies can pivot on them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.p2p.kademlia import KademliaConfig
from repro.sim.churn import ChurnModel
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import NetworkParams
from repro.sim.vecstate import (
    EMPTY,
    VecChurn,
    VecIdSpace,
    VecRoutingTable,
    hashed_u64,
    hashed_uniform,
    stream_key,
    xor_closest,
)

_UMAX = np.uint64(0xFFFFFFFFFFFFFFFF)


@dataclass
class FastKademliaConfig:
    """Parameters of a vectorized large-N lookup experiment.

    Mirrors :class:`repro.p2p.lookup.LookupExperimentConfig` (network
    size, lookup workload, client config, churn model, network preset,
    seed) and adds the fast-path knobs:

    wave_size:
        Lookups driven concurrently per batch.  Bigger waves amortize
        the per-hop array operations better; membership is frozen
        within a wave, so ``wave_size * lookup_interval`` is the churn
        granularity.
    metrics:
        ``"exact"`` or ``"streaming"`` —
        :class:`~repro.sim.metrics.MetricsRegistry` mode for the
        latency sample (scenario specs set this via their own
        ``metrics`` field).
    max_hops:
        Safety bound on iterative descent (never reached in practice:
        greedy XOR descent halves the distance every hop).
    """

    network_size: int = 100_000
    lookups: int = 10_000
    lookup_interval: float = 0.05
    kademlia: KademliaConfig = field(default_factory=KademliaConfig)
    churn: Optional[ChurnModel] = None
    network_params: Optional[NetworkParams] = None
    seed: int = 0
    warmup: float = 0.0
    wave_size: int = 1024
    metrics: str = "exact"
    max_hops: int = 64


class FastKademliaOverlay:
    """Runs the wave-based lookup workload over vectorized state."""

    def __init__(self, config: Optional[FastKademliaConfig] = None) -> None:
        self.config = config or FastKademliaConfig()
        cfg = self.config
        kad = cfg.kademlia
        self.space = VecIdSpace(cfg.network_size, seed=cfg.seed)
        self.table = VecRoutingTable(
            self.space,
            k=kad.k,
            seed=cfg.seed,
            stale_fraction=kad.initial_stale_fraction,
        )
        self.churn: Optional[VecChurn] = None
        if cfg.churn is not None:
            self.churn = VecChurn(cfg.network_size, cfg.churn, seed=cfg.seed)
        params = cfg.network_params or NetworkParams()
        # Mean-field link model: a two-region deployment sees in-region
        # latency half the time and cross-region the other half.
        if params.inter_region_latency > 0:
            self._one_way = 0.5 * (params.base_latency + params.inter_region_latency)
        else:
            self._one_way = params.base_latency
        self._jitter = params.latency_jitter
        self.metrics = MetricsRegistry(mode=cfg.metrics)
        self.events_processed = 0
        self._lookups_done = 0
        self._failures = 0
        self._hops = 0
        self._timeouts = 0
        self._now = 0.0
        self._next_refresh = kad.refresh_interval
        self._origin_key = stream_key(cfg.seed, "fastkad-origins")
        self._target_key = stream_key(cfg.seed, "fastkad-targets")
        self._rtt_key = stream_key(cfg.seed, "fastkad-rtt")

    # ------------------------------------------------------------------
    # Time and maintenance
    # ------------------------------------------------------------------
    def _online_mask(self) -> np.ndarray:
        if self.churn is not None:
            return self.churn.online
        return np.ones(self.space.n, dtype=bool)

    def _advance_to(self, t: float) -> None:
        """Advance churn and run maintenance passes up to virtual time ``t``."""
        kad = self.config.kademlia
        while self._next_refresh <= t:
            if self.churn is not None:
                self.events_processed += self.churn.advance(self._next_refresh)
            online = self._online_mask()
            self.events_processed += self.table.evict_offline(
                online, detection=kad.refresh_detection)
            self.events_processed += self.table.refresh(
                online, samples=kad.refresh_samples)
            self._next_refresh += kad.refresh_interval
        if self.churn is not None:
            self.events_processed += self.churn.advance(t)
        self._now = t

    def _rtt(self, wave: int, size: int, hop: int) -> np.ndarray:
        """Jittered per-lookup round-trip times for one hop of a wave.

        Log-normal multiplicative jitter with sigma ``latency_jitter``
        (the same shape the scalar :class:`~repro.sim.network.Network`
        applies per delivery), via Box-Muller over hashed uniforms.
        """
        lanes = np.arange(size, dtype=np.uint64)
        u1 = hashed_uniform(self._rtt_key, lanes, np.uint64(wave),
                            np.uint64(2 * hop))
        u2 = hashed_uniform(self._rtt_key, lanes, np.uint64(wave),
                            np.uint64(2 * hop + 1))
        z = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
        return 2.0 * self._one_way * np.exp(self._jitter * z)

    # ------------------------------------------------------------------
    # Lookup waves
    # ------------------------------------------------------------------
    def _run_wave(self, wave: int, size: int) -> None:
        cfg = self.config
        kad = cfg.kademlia
        ids = self.space.ids
        online = self._online_mask()
        online_idx = np.flatnonzero(online)
        if len(online_idx) < 2:
            # A near-empty overlay: every lookup in the wave fails.
            self._lookups_done += size
            self._failures += size
            return
        lanes = np.arange(size, dtype=np.uint64)
        origin_u = hashed_uniform(self._origin_key, lanes, np.uint64(wave))
        origins = online_idx[np.minimum(
            (origin_u * len(online_idx)).astype(np.int64), len(online_idx) - 1)]
        targets = hashed_u64(self._target_key,
                             np.uint64(self._lookups_done) + lanes)
        # Exact ground truth: the globally closest online node per target.
        _, goal_dist = xor_closest(ids[online_idx], targets)

        cur = origins.astype(np.int64)
        cur_dist = ids[cur] ^ targets
        latency = np.zeros(size)
        hops = np.zeros(size, dtype=np.int64)
        timeouts = np.zeros(size, dtype=np.int64)
        active = np.ones(size, dtype=bool)
        rows = np.arange(size)
        for hop in range(cfg.max_hops):
            contacts = self.table.contacts_of(cur)          # (size, B*k)
            stale = self.table.stale_of(cur)
            valid = contacts != EMPTY
            safe = np.where(valid, contacts, 0)
            dist = ids[safe] ^ targets[:, None]
            dist[~valid] = _UMAX
            alive = valid & online[safe] & ~stale
            dist_alive = np.where(alive, dist, _UMAX)
            pos = np.argmin(dist_alive, axis=1)
            best = dist_alive[rows, pos]
            improved = active & (best < cur_dist)
            # Dead/stale contacts closer than the chosen hop would have
            # been tried first by a real client and burned a timeout
            # each; alpha-way parallelism amortizes the wall-clock cost.
            threshold = np.minimum(best, cur_dist)
            dead_closer = (valid & ~alive) & (dist < threshold[:, None])
            n_dead = dead_closer.sum(axis=1)
            step_cost = self._rtt(wave, size, hop) + n_dead * (
                kad.rpc_timeout / kad.alpha)
            latency += np.where(active, step_cost, 0.0)
            timeouts += np.where(active, n_dead, 0)
            hops += improved.astype(np.int64)
            self.events_processed += int(active.sum()) + int(
                n_dead[active].sum())
            cur = np.where(improved, contacts[rows, pos].astype(np.int64), cur)
            cur_dist = np.where(improved, best, cur_dist)
            active = improved
            if not active.any():
                break
        success = cur_dist == goal_dist
        self._lookups_done += size
        self._failures += int((~success).sum())
        self._hops += int(hops.sum())
        self._timeouts += int(timeouts.sum())
        if success.any():
            self.metrics.sample("lookup_latency_s").extend(latency[success])

    def run(self) -> Dict[str, float]:
        """Run warmup, every lookup wave, and return :meth:`summary`."""
        cfg = self.config
        if cfg.warmup > 0:
            self._advance_to(cfg.warmup)
        issued = 0
        wave = 0
        while issued < cfg.lookups:
            size = min(cfg.wave_size, cfg.lookups - issued)
            self._advance_to(
                cfg.warmup + (issued + size) * cfg.lookup_interval)
            self._run_wave(wave, size)
            issued += size
            wave += 1
        return self.summary()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Headline metrics, keyed like the scalar lookup experiment."""
        latencies = self.metrics.sample("lookup_latency_s")
        count = self._lookups_done
        online = self._online_mask()
        result = {
            "lookups": float(count),
            "median_latency_s": latencies.median(),
            "p90_latency_s": latencies.percentile(90),
            "p99_latency_s": latencies.percentile(99),
            "mean_latency_s": latencies.mean(),
            "failure_rate": self._failures / count if count else 0.0,
            "timeouts_per_lookup": self._timeouts / count if count else 0.0,
            "hops_per_lookup": self._hops / count if count else 0.0,
            "routing_staleness": self.table.staleness(online),
            "fraction_within_5s": latencies.fraction_below(5.0),
            "online_fraction": float(online.mean()),
            "events_processed": float(self.events_processed),
        }
        if self.churn is not None:
            result["churn_rate_per_hour"] = self.churn.churn_rate_per_hour()
        return result
