"""Sybil attacks on open structured overlays (Experiment E3).

Section II-B, Problem 3: "open networks where peers can assign their
identities are prone to Sybil attacks. In a Sybil attack, the idea is to
impersonate thousands of identifiers with a few powerful nodes", and
"massive identity problems were reported in eMule KAD and in BitTorrent
DHTs".

The attack model follows the eclipse-by-identity-placement strategy studied
for KAD (Steiner et al., Wang et al.): an attacker controlling a handful of
physical machines inserts many virtual identities into the overlay.  Because
identifiers are self-assigned, the attacker can either spread identities
uniformly (to intercept a proportional share of all traffic) or target a
specific key region (to eclipse particular content).  A lookup is counted as
*hijacked* when a majority of the k closest identifiers it terminates on are
attacker-controlled — at that point the attacker can return bogus values,
censor content or track requesters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.p2p.identifiers import random_id, xor_distance
from repro.p2p.kademlia import KademliaConfig, KademliaNetwork, KademliaNode, LookupResult
from repro.sim.rng import SeededRNG


@dataclass
class SybilAttackConfig:
    """Attack and measurement parameters."""

    honest_nodes: int = 400
    attacker_machines: int = 4
    identities_per_machine: int = 100
    lookups: int = 150
    targeted_key: Optional[int] = None      # None = spread identities uniformly
    kademlia: KademliaConfig = field(default_factory=KademliaConfig.kad_like)
    seed: int = 0


@dataclass
class SybilAttackResult:
    """Measured impact of the Sybil attack."""

    honest_nodes: int
    sybil_identities: int
    attacker_machines: int
    identity_share: float
    physical_share: float
    hijacked_lookups: int
    total_lookups: int
    mean_sybils_in_result: float

    @property
    def hijack_rate(self) -> float:
        """Fraction of lookups whose closest set is majority attacker-controlled."""
        return self.hijacked_lookups / self.total_lookups if self.total_lookups else 0.0

    @property
    def amplification(self) -> float:
        """Hijack rate divided by the attacker's share of physical machines."""
        return self.hijack_rate / self.physical_share if self.physical_share > 0 else 0.0


def run_sybil_attack(config: Optional[SybilAttackConfig] = None) -> SybilAttackResult:
    """Build an overlay, inject sybil identities, measure lookup hijack rate."""
    config = config or SybilAttackConfig()
    rng = SeededRNG(config.seed)
    total_sybils = config.attacker_machines * config.identities_per_machine
    dht = KademliaNetwork(
        size=config.honest_nodes,
        config=config.kademlia,
        seed=config.seed,
    )

    # The attacker's identifier draws must be independent of the stream that
    # generated the honest population, otherwise they collide with it.
    sybil_ids = _insert_sybil_identities(
        dht, total_sybils, config.targeted_key, rng.fork("sybil-identities")
    )
    total_sybils = len(sybil_ids)

    results: List[LookupResult] = []
    honest_ids = [nid for nid in dht.node_ids() if nid not in sybil_ids]
    issued = {"count": 0}
    sim = dht.sim

    def _issue_next() -> None:
        if issued["count"] >= config.lookups:
            return
        issued["count"] += 1
        origin = rng.choice(honest_ids)
        if config.targeted_key is not None:
            target = config.targeted_key
        else:
            target = random_id(rng)
        dht.lookup(origin, target, results.append)
        sim.schedule(1.0, _issue_next)

    sim.schedule(0.0, _issue_next)
    sim.run(until=sim.now + config.lookups * 1.0 + 100 * config.kademlia.rpc_timeout)

    hijacked = 0
    sybils_in_results = []
    for result in results:
        closest = result.closest[: config.kademlia.k]
        sybil_count = sum(1 for contact in closest if contact in sybil_ids)
        sybils_in_results.append(sybil_count)
        if closest and sybil_count > len(closest) / 2:
            hijacked += 1

    population = config.honest_nodes + total_sybils
    physical_population = config.honest_nodes + config.attacker_machines
    return SybilAttackResult(
        honest_nodes=config.honest_nodes,
        sybil_identities=total_sybils,
        attacker_machines=config.attacker_machines,
        identity_share=total_sybils / population if population else 0.0,
        physical_share=config.attacker_machines / physical_population
        if physical_population
        else 0.0,
        hijacked_lookups=hijacked,
        total_lookups=len(results),
        mean_sybils_in_result=(
            sum(sybils_in_results) / len(sybils_in_results) if sybils_in_results else 0.0
        ),
    )


def _insert_sybil_identities(
    dht: KademliaNetwork,
    count: int,
    targeted_key: Optional[int],
    rng: SeededRNG,
) -> Dict[int, bool]:
    """Add attacker identities as live nodes and seed them into honest routing tables."""
    honest_ids = list(dht.nodes.keys())
    sybil_ids: Dict[int, bool] = {}
    sybil_nodes: List[KademliaNode] = []
    for _ in range(count):
        if targeted_key is not None:
            # Self-assign an identifier adjacent to the target key: flip only
            # low-order bits so the sybil is closer than almost every honest node.
            identity = targeted_key ^ rng.getrandbits(24)
        else:
            identity = random_id(rng)
        if identity in dht.nodes:
            continue
        node = KademliaNode(identity, dht.sim, dht.network, dht.config)
        # Sybils know the whole honest population (the attacker crawls the DHT).
        for honest in honest_ids[:512]:
            node.observe(honest)
        dht.nodes[identity] = node
        sybil_ids[identity] = True
        sybil_nodes.append(node)

    # The attacker's identities collude: each sybil knows every other sybil,
    # so once a lookup touches one of them the reply steers it towards more.
    sybil_list = list(sybil_ids.keys())
    for node in sybil_nodes:
        for other in sybil_list:
            node.observe(other)

    if not sybil_list:
        return sybil_ids

    # Announcement phase (the attacker performs self-lookups / pings, as in
    # the published KAD attacks): each sybil identity is announced to the
    # honest peers whose identifiers are closest to it.  Those peers have
    # sparse low-index buckets for that region of the identifier space, so
    # the self-assigned identity is accepted into their routing tables.
    announce_to = 3 * dht.config.k
    for sybil in sybil_list:
        closest_honest = sorted(
            honest_ids, key=lambda honest: xor_distance(honest, sybil)
        )[:announce_to]
        for honest in closest_honest:
            dht.nodes[honest].observe(sybil)
    return sybil_ids


def sweep_identity_counts(
    identities_per_machine_values: List[int],
    base_config: Optional[SybilAttackConfig] = None,
) -> List[SybilAttackResult]:
    """Run the attack for several identity counts (Experiment E3's sweep)."""
    base_config = base_config or SybilAttackConfig()
    results = []
    for identities in identities_per_machine_values:
        config = SybilAttackConfig(
            honest_nodes=base_config.honest_nodes,
            attacker_machines=base_config.attacker_machines,
            identities_per_machine=identities,
            lookups=base_config.lookups,
            targeted_key=base_config.targeted_key,
            kademlia=base_config.kademlia,
            seed=base_config.seed,
        )
        results.append(run_sybil_attack(config))
    return results
