"""Lookup-latency experiments over the Kademlia simulator (Experiments E2 and E5).

The harness builds a Kademlia network, optionally runs a churn process over
it, issues a stream of lookups from random online peers towards random
targets, and reports the latency/failure statistics that the paper quotes
from Jiménez et al. [20]: "lookups were performed within 5 seconds 90% of
the time in Emule's Kad, but the median lookup time was around a minute in
both BitTorrent DHTs".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.p2p.identifiers import random_id
from repro.p2p.kademlia import KademliaConfig, KademliaNetwork, LookupResult
from repro.sim.churn import ChurnModel, ChurnProcess
from repro.sim.metrics import Sample, make_sample
from repro.sim.network import NetworkParams
from repro.sim.rng import SeededRNG


@dataclass
class LookupExperimentConfig:
    """Parameters of one lookup-latency experiment.

    ``metrics`` selects the latency sample implementation: ``"exact"``
    (default, list-backed — the mode every committed golden used) or
    ``"streaming"`` (O(1)-memory sketch accumulators for long-horizon
    runs); see :func:`repro.sim.metrics.make_sample`.
    """

    network_size: int = 600
    lookups: int = 300
    lookup_interval: float = 2.0
    kademlia: KademliaConfig = field(default_factory=KademliaConfig.kad_like)
    churn: Optional[ChurnModel] = None
    network_params: Optional[NetworkParams] = None
    warmup: float = 0.0
    seed: int = 0
    metrics: str = "exact"

    @classmethod
    def kad_scenario(cls, **overrides) -> "LookupExperimentConfig":
        """eMule-KAD-like scenario: responsive clients, moderate churn."""
        defaults = dict(
            kademlia=KademliaConfig.kad_like(),
            churn=ChurnModel.kad_like(),
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def mainline_scenario(cls, **overrides) -> "LookupExperimentConfig":
        """BitTorrent-Mainline-like scenario: stale tables, conservative timeouts."""
        defaults = dict(
            kademlia=KademliaConfig.mainline_like(),
            churn=ChurnModel.bittorrent_like(),
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class LookupStats:
    """Aggregated outcome of a lookup experiment."""

    latencies: Sample
    failures: int
    lookups: int
    timeouts_per_lookup: float
    hops_per_lookup: float
    routing_staleness: float

    @property
    def failure_rate(self) -> float:
        """Fraction of lookups that did not complete successfully."""
        return self.failures / self.lookups if self.lookups else 0.0

    def summary(self) -> Dict[str, float]:
        """Headline numbers for tables: median/p90 latency, failure rate, hops."""
        return {
            "lookups": float(self.lookups),
            "median_latency_s": self.latencies.median(),
            "p90_latency_s": self.latencies.percentile(90),
            "p99_latency_s": self.latencies.percentile(99),
            "mean_latency_s": self.latencies.mean(),
            "failure_rate": self.failure_rate,
            "timeouts_per_lookup": self.timeouts_per_lookup,
            "hops_per_lookup": self.hops_per_lookup,
            "routing_staleness": self.routing_staleness,
            "fraction_within_5s": self.latencies.fraction_below(5.0),
        }


class LookupExperiment:
    """Builds the network, applies churn and issues the lookup workload."""

    def __init__(self, config: Optional[LookupExperimentConfig] = None) -> None:
        self.config = config or LookupExperimentConfig()
        self.rng = SeededRNG(self.config.seed)
        self.dht = KademliaNetwork(
            size=self.config.network_size,
            config=self.config.kademlia,
            network_params=self.config.network_params,
            seed=self.config.seed,
        )
        self.results: List[LookupResult] = []
        self.churn_process: Optional[ChurnProcess] = None
        if self.config.churn is not None:
            self.churn_process = ChurnProcess(
                self.dht.sim,
                self.dht.node_ids(),
                self.config.churn,
                rng=self.rng.fork("churn"),
                on_join=lambda node_id: self.dht.set_node_online(node_id, True),
                on_leave=lambda node_id: self.dht.set_node_online(node_id, False),
                steady_state_init=True,
            )
            # Reflect the steady-state membership in node availability before
            # any lookups are issued.
            for node_id, online in self.churn_process.online.items():
                self.dht.set_node_online(node_id, online)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self) -> LookupStats:
        """Run the configured number of lookups and return aggregate statistics."""
        sim = self.dht.sim
        if self.churn_process is not None:
            self.churn_process.start()
            # Bring routing tables to their churn equilibrium before measuring.
            self.dht.warm_up(passes=3)
        self.dht.start_maintenance()
        if self.config.warmup > 0:
            sim.run(until=sim.now + self.config.warmup)

        issued = {"count": 0}

        def _issue_next() -> None:
            if issued["count"] >= self.config.lookups:
                return
            issued["count"] += 1
            online = self.dht.online_nodes()
            if online:
                origin = self.rng.choice(online)
                target = random_id(self.rng)
                self.dht.lookup(origin.node_id, target, self.results.append)
            sim.schedule(self.config.lookup_interval, _issue_next)

        sim.schedule(0.0, _issue_next)
        # Allow enough virtual time for every lookup (each can take many
        # timeout rounds) before cutting the run off.
        horizon = (
            self.config.lookups * self.config.lookup_interval
            + 50 * self.config.kademlia.rpc_timeout
            + 600.0
        )
        sim.run(until=sim.now + horizon)
        return self.stats()

    def stats(self) -> LookupStats:
        """Aggregate the lookups completed so far."""
        latencies = make_sample("lookup_latency", self.config.metrics)
        failures = 0
        timeouts = 0
        hops = 0
        for result in self.results:
            if result.success:
                latencies.observe(result.latency)
            else:
                failures += 1
            timeouts += result.timeouts
            hops += result.hops
        count = len(self.results)
        return LookupStats(
            latencies=latencies,
            failures=failures,
            lookups=count,
            timeouts_per_lookup=timeouts / count if count else 0.0,
            hops_per_lookup=hops / count if count else 0.0,
            routing_staleness=self.dht.routing_table_staleness(),
        )
