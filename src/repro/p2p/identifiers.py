"""Identifier space shared by the structured overlays.

All DHTs in the library use a 160-bit identifier space (as Chord, Pastry,
Kademlia and the deployed KAD/Mainline DHTs do).  Identifiers are plain
Python integers; the helpers below provide the two distance metrics the
overlays need (XOR for Kademlia, clockwise ring distance for Chord) and a
deterministic way to derive the identifier of a key or node name.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List

from repro.sim.rng import SeededRNG

#: Number of bits in the identifier space (SHA-1 sized, as in the deployed DHTs).
ID_BITS = 160

#: Size of the identifier space.
ID_SPACE = 1 << ID_BITS


def random_id(rng: SeededRNG) -> int:
    """Uniformly random identifier."""
    return rng.getrandbits(ID_BITS)


def key_for(name: str) -> int:
    """Deterministic identifier for a key or node name (SHA-1 of the name)."""
    digest = hashlib.sha1(name.encode("utf-8")).digest()
    return int.from_bytes(digest, "big")


def xor_distance(a: int, b: int) -> int:
    """Kademlia XOR distance between two identifiers."""
    return a ^ b


def ring_distance(a: int, b: int) -> int:
    """Clockwise distance from ``a`` to ``b`` on the identifier ring (Chord)."""
    return (b - a) % ID_SPACE


def bucket_index(a: int, b: int) -> int:
    """Index of the Kademlia k-bucket in which ``b`` falls as seen from ``a``.

    This is the position of the highest differing bit; identical identifiers
    return -1 (they share no bucket).
    """
    distance = a ^ b
    if distance == 0:
        return -1
    return distance.bit_length() - 1


def closest(ids: Iterable[int], target: int, count: int = 1) -> List[int]:
    """The ``count`` identifiers closest to ``target`` by XOR distance."""
    return sorted(ids, key=lambda identifier: xor_distance(identifier, target))[:count]


def shares_prefix_bits(a: int, b: int, bits: int) -> bool:
    """Whether two identifiers share their ``bits`` most significant bits."""
    if bits <= 0:
        return True
    if bits > ID_BITS:
        raise ValueError("cannot compare more bits than the identifier has")
    shift = ID_BITS - bits
    return (a >> shift) == (b >> shift)
