"""Gnutella-style unstructured overlay with TTL-limited flooding.

Section II of the paper: "Gnutella ... relied on partial flooding for query
messages. Gnutella is considered an unstructured overlay because nodes do
not form any systematic topology ... Gnutella, however, was slow and
inefficient."  The simulator quantifies both halves of that sentence:

* query *recall* (probability of finding an object) as a function of the
  flood TTL and of how many peers actually share content (free riding), and
* the message cost of each query, which grows with the flooded horizon.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.sim.rng import SeededRNG


@dataclass
class GnutellaConfig:
    """Topology and protocol parameters for the flooding overlay."""

    size: int = 1000
    degree: int = 4
    ttl: int = 4
    objects: int = 500
    replicas_per_object: int = 5
    zipf_exponent: float = 0.8
    sharing_fraction: float = 1.0       # fraction of peers that share anything
    hop_latency_mean: float = 0.1


@dataclass
class QueryOutcome:
    """Result of flooding one query through the overlay."""

    object_id: int
    origin: int
    found: bool
    messages: int
    peers_reached: int
    first_hit_hops: Optional[int]
    latency: float


class GnutellaNetwork:
    """Random-graph overlay flooding queries for objects held by sharing peers."""

    def __init__(self, config: Optional[GnutellaConfig] = None, seed: int = 0) -> None:
        self.config = config or GnutellaConfig()
        if self.config.size < 2:
            raise ValueError("overlay needs at least two peers")
        self.rng = SeededRNG(seed)
        self.neighbors: Dict[int, Set[int]] = {peer: set() for peer in range(self.config.size)}
        self._build_topology()
        self.sharers: Set[int] = self._select_sharers()
        self.holdings: Dict[int, Set[int]] = {peer: set() for peer in range(self.config.size)}
        self._place_objects()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_topology(self) -> None:
        """Random regular-ish graph: each peer links to ``degree`` random others."""
        size = self.config.size
        for peer in range(size):
            while len(self.neighbors[peer]) < self.config.degree:
                other = self.rng.randint(0, size - 1)
                if other != peer:
                    self.neighbors[peer].add(other)
                    self.neighbors[other].add(peer)

    def _select_sharers(self) -> Set[int]:
        count = max(1, int(self.config.size * self.config.sharing_fraction))
        return set(self.rng.sample(range(self.config.size), count))

    def _place_objects(self) -> None:
        sharers = list(self.sharers)
        for object_id in range(self.config.objects):
            replicas = min(self.config.replicas_per_object, len(sharers))
            for holder in self.rng.sample(sharers, replicas):
                self.holdings[holder].add(object_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def sample_object(self) -> int:
        """Zipf-popular object identifier (popular objects are queried more)."""
        rank = self.rng.zipf_rank(self.config.objects, self.config.zipf_exponent)
        return rank - 1

    def query(self, origin: int, object_id: Optional[int] = None) -> QueryOutcome:
        """Flood a query with the configured TTL and report the outcome."""
        if object_id is None:
            object_id = self.sample_object()
        visited: Set[int] = {origin}
        frontier = deque([(origin, 0)])
        messages = 0
        first_hit_hops: Optional[int] = None
        while frontier:
            peer, depth = frontier.popleft()
            if object_id in self.holdings.get(peer, ()) and peer != origin:
                if first_hit_hops is None:
                    first_hit_hops = depth
            if depth >= self.config.ttl:
                continue
            for neighbor in self.neighbors[peer]:
                messages += 1
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append((neighbor, depth + 1))
        found = first_hit_hops is not None
        latency = 0.0
        if found:
            for _ in range(first_hit_hops or 0):
                latency += self.rng.exponential(self.config.hop_latency_mean)
        return QueryOutcome(
            object_id=object_id,
            origin=origin,
            found=found,
            messages=messages,
            peers_reached=len(visited),
            first_hit_hops=first_hit_hops,
            latency=latency,
        )

    def run_queries(self, count: int = 200) -> List[QueryOutcome]:
        """Issue ``count`` queries from random peers."""
        outcomes = []
        for _ in range(count):
            origin = self.rng.randint(0, self.config.size - 1)
            outcomes.append(self.query(origin))
        return outcomes

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def recall_and_cost(self, count: int = 200) -> Dict[str, float]:
        """Aggregate query success rate and message cost."""
        outcomes = self.run_queries(count)
        found = [outcome for outcome in outcomes if outcome.found]
        return {
            "queries": float(len(outcomes)),
            "recall": len(found) / len(outcomes) if outcomes else 0.0,
            "mean_messages_per_query": (
                sum(outcome.messages for outcome in outcomes) / len(outcomes)
                if outcomes
                else 0.0
            ),
            "mean_peers_reached": (
                sum(outcome.peers_reached for outcome in outcomes) / len(outcomes)
                if outcomes
                else 0.0
            ),
            "mean_hops_to_hit": (
                sum(outcome.first_hit_hops or 0 for outcome in found) / len(found)
                if found
                else 0.0
            ),
        }
