"""Free riding in open P2P networks (Experiment E4, first half).

Section II-B, Problem 1: "users minimize their time connected until
obtaining what they want ... This is called free riding, an issue that was
extensively reported in the Gnutella overlay [21]".  Adar & Huberman's
measurement found that roughly 70% of Gnutella peers shared no files and
that the top 1% of peers served about 37% of all files (top 25% served ~98%).

:class:`ContributionModel` generates per-peer contribution profiles with a
configurable free-rider fraction and a heavy-tailed (Pareto) distribution of
shared files among contributors, then :func:`analyze_contributions` produces
the same statistics the measurement papers report so Experiment E4 can check
the shape against the published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.economics.concentration import gini_coefficient, top_k_share
from repro.sim.rng import SeededRNG

#: The headline numbers from Adar & Huberman, "Free Riding on Gnutella" (2000),
#: used as the reference shape for Experiment E4.
GNUTELLA_2000_REFERENCE: Dict[str, float] = {
    "free_rider_fraction": 0.70,
    "top_1pct_share_of_files": 0.37,
    "top_25pct_share_of_files": 0.98,
}


@dataclass
class ContributionModel:
    """Generative model of per-peer sharing behaviour in an open overlay.

    Attributes
    ----------
    peers:
        Number of peers in the overlay.
    free_rider_fraction:
        Fraction of peers that share nothing at all.
    pareto_shape:
        Shape of the Pareto distribution of files shared by contributors
        (smaller = heavier tail = more concentration among top sharers).
    mean_files_per_contributor:
        Average number of files shared by a contributing peer.
    altruist_fraction:
        Small fraction of peers that also serve queries/uploads even with no
        direct incentive (the "SETI@home exceptions" the paper mentions).
    """

    peers: int = 10_000
    free_rider_fraction: float = 0.66
    pareto_shape: float = 1.1
    mean_files_per_contributor: float = 340.0
    altruist_fraction: float = 0.01

    def generate(self, seed: int = 0) -> List[float]:
        """Per-peer shared-file counts (0 for free riders)."""
        if not 0.0 <= self.free_rider_fraction <= 1.0:
            raise ValueError("free rider fraction must be in [0, 1]")
        rng = SeededRNG(seed)
        contributions: List[float] = []
        # Pareto with the configured shape, scaled so the mean matches.
        shape = self.pareto_shape
        scale = (
            self.mean_files_per_contributor * (shape - 1.0) / shape
            if shape > 1.0
            else self.mean_files_per_contributor * 0.2
        )
        for _ in range(self.peers):
            if rng.bernoulli(self.free_rider_fraction):
                contributions.append(0.0)
            else:
                contributions.append(rng.pareto(shape, scale))
        return contributions


@dataclass
class FreeRidingReport:
    """Statistics over a contribution distribution."""

    peers: int
    free_rider_fraction: float
    top_1pct_share: float
    top_10pct_share: float
    top_25pct_share: float
    gini: float
    mean_contribution: float

    def matches_reference(
        self,
        reference: Optional[Dict[str, float]] = None,
        tolerance: float = 0.15,
    ) -> bool:
        """Whether this distribution matches the published Gnutella shape."""
        reference = reference or GNUTELLA_2000_REFERENCE
        checks = [
            abs(self.free_rider_fraction - reference["free_rider_fraction"]) <= tolerance,
            self.top_1pct_share >= reference["top_1pct_share_of_files"] - tolerance,
            self.top_25pct_share >= reference["top_25pct_share_of_files"] - tolerance,
        ]
        return all(checks)


def analyze_contributions(contributions: List[float]) -> FreeRidingReport:
    """Compute the free-riding statistics the measurement literature reports."""
    peers = len(contributions)
    if peers == 0:
        raise ValueError("need at least one peer")
    free_riders = sum(1 for value in contributions if value <= 0)
    top1 = max(1, peers // 100)
    top10 = max(1, peers // 10)
    top25 = max(1, peers // 4)
    return FreeRidingReport(
        peers=peers,
        free_rider_fraction=free_riders / peers,
        top_1pct_share=top_k_share(contributions, top1),
        top_10pct_share=top_k_share(contributions, top10),
        top_25pct_share=top_k_share(contributions, top25),
        gini=gini_coefficient(contributions),
        mean_contribution=sum(contributions) / peers,
    )


def incentive_sensitivity(
    incentive_levels: List[float],
    base_free_rider_fraction: float = 0.85,
    elasticity: float = 0.75,
    peers: int = 5000,
    seed: int = 0,
) -> List[FreeRidingReport]:
    """Free-riding as a function of incentive strength.

    ``incentive_levels`` are abstract values in [0, 1]: 0 means no incentive
    to contribute (pure altruism), 1 means contribution is strictly required
    to consume (BitTorrent-during-download-like).  The free-rider fraction
    declines with incentives according to the elasticity; this is the simple
    monotone relation behind the paper's claim that "if the overlay does not
    provide enough incentives, the network can suffer free riding".
    """
    reports = []
    for level in incentive_levels:
        if not 0.0 <= level <= 1.0:
            raise ValueError("incentive levels must be in [0, 1]")
        fraction = base_free_rider_fraction * (1.0 - elasticity * level)
        model = ContributionModel(peers=peers, free_rider_fraction=fraction)
        reports.append(analyze_contributions(model.generate(seed=seed)))
    return reports
