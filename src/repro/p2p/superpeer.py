"""Superpeer (two-tier) overlays, Kazaa/eDonkey/Skype style.

Section II: "Superpeer overlays solved the problem including a layer with
more stable peers that boosted the overall performance. Many systems like
Kazaa, eMule, eDonkey or even Skype relied on such superpeer architecture."

The model captures the essential trade: leaf peers attach to a small set of
stable superpeers that index their content, so queries touch only the
superpeer tier (typically 1–2 hops) instead of flooding the whole overlay.
The cost is that the superpeer tier is a partial re-centralization — which
is exactly the paper's narrative about every scaling fix pulling systems
back towards the centre.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.economics.concentration import nakamoto_coefficient, top_k_share
from repro.sim.rng import SeededRNG


@dataclass
class SuperpeerConfig:
    """Two-tier overlay parameters."""

    leaves: int = 2000
    superpeers: int = 40
    leaves_per_superpeer: int = 100
    superpeer_neighbors: int = 6
    objects: int = 1000
    replicas_per_object: int = 8
    hop_latency_mean: float = 0.08


@dataclass
class SuperpeerQueryResult:
    """Outcome of one query routed through the superpeer tier."""

    found: bool
    hops: int
    latency: float
    superpeers_contacted: int


class SuperpeerNetwork:
    """Leaves attach to superpeers; superpeers flood among themselves only."""

    def __init__(self, config: Optional[SuperpeerConfig] = None, seed: int = 0) -> None:
        self.config = config or SuperpeerConfig()
        if self.config.superpeers < 1:
            raise ValueError("need at least one superpeer")
        self.rng = SeededRNG(seed)
        self.superpeer_ids = list(range(self.config.superpeers))
        self.leaf_ids = list(
            range(self.config.superpeers, self.config.superpeers + self.config.leaves)
        )
        self.attachment: Dict[int, int] = {}
        self._attach_leaves()
        self.superpeer_links: Dict[int, Set[int]] = {sp: set() for sp in self.superpeer_ids}
        self._link_superpeers()
        self.index: Dict[int, Dict[int, Set[int]]] = {sp: {} for sp in self.superpeer_ids}
        self._place_objects()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _attach_leaves(self) -> None:
        loads = {sp: 0 for sp in self.superpeer_ids}
        for leaf in self.leaf_ids:
            candidates = [
                sp for sp in self.superpeer_ids
                if loads[sp] < self.config.leaves_per_superpeer
            ] or self.superpeer_ids
            superpeer = self.rng.choice(candidates)
            self.attachment[leaf] = superpeer
            loads[superpeer] += 1

    def _link_superpeers(self) -> None:
        count = len(self.superpeer_ids)
        neighbors = min(self.config.superpeer_neighbors, count - 1)
        for superpeer in self.superpeer_ids:
            while len(self.superpeer_links[superpeer]) < neighbors:
                other = self.rng.choice(self.superpeer_ids)
                if other != superpeer:
                    self.superpeer_links[superpeer].add(other)
                    self.superpeer_links[other].add(superpeer)

    def _place_objects(self) -> None:
        for object_id in range(self.config.objects):
            holders = self.rng.sample(
                self.leaf_ids, min(self.config.replicas_per_object, len(self.leaf_ids))
            )
            for leaf in holders:
                superpeer = self.attachment[leaf]
                self.index[superpeer].setdefault(object_id, set()).add(leaf)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, leaf: int, object_id: int, ttl: int = 2) -> SuperpeerQueryResult:
        """Leaf asks its superpeer; the superpeer floods its tier up to ``ttl`` hops."""
        home = self.attachment[leaf]
        latency = self.rng.exponential(self.config.hop_latency_mean)
        hops = 1
        visited = {home}
        frontier = [home]
        contacted = 1
        if object_id in self.index[home]:
            return SuperpeerQueryResult(True, hops, latency, contacted)
        for depth in range(ttl):
            next_frontier: List[int] = []
            for superpeer in frontier:
                for neighbor in self.superpeer_links[superpeer]:
                    if neighbor in visited:
                        continue
                    visited.add(neighbor)
                    next_frontier.append(neighbor)
                    contacted += 1
            hops += 1
            latency += self.rng.exponential(self.config.hop_latency_mean)
            if any(object_id in self.index[sp] for sp in next_frontier):
                return SuperpeerQueryResult(True, hops, latency, contacted)
            frontier = next_frontier
            if not frontier:
                break
        return SuperpeerQueryResult(False, hops, latency, contacted)

    def run_queries(self, count: int = 300, ttl: int = 2) -> Dict[str, float]:
        """Issue random queries and aggregate recall/latency/cost."""
        results = []
        for _ in range(count):
            leaf = self.rng.choice(self.leaf_ids)
            object_id = self.rng.randint(0, self.config.objects - 1)
            results.append(self.query(leaf, object_id, ttl=ttl))
        found = [result for result in results if result.found]
        return {
            "recall": len(found) / len(results) if results else 0.0,
            "mean_hops": sum(r.hops for r in results) / len(results) if results else 0.0,
            "mean_latency": sum(r.latency for r in results) / len(results) if results else 0.0,
            "mean_superpeers_contacted": (
                sum(r.superpeers_contacted for r in results) / len(results) if results else 0.0
            ),
        }

    # ------------------------------------------------------------------
    # Centralization of the superpeer tier
    # ------------------------------------------------------------------
    def index_shares(self) -> List[float]:
        """Fraction of the global object index held by each superpeer."""
        totals = [
            sum(len(holders) for holders in self.index[sp].values())
            for sp in self.superpeer_ids
        ]
        overall = sum(totals)
        return [total / overall if overall else 0.0 for total in totals]

    def centralization_report(self) -> Dict[str, float]:
        """How centralized the superpeer tier is compared to the flat overlay."""
        shares = self.index_shares()
        population = self.config.leaves + self.config.superpeers
        return {
            "superpeer_fraction_of_peers": self.config.superpeers / population,
            "index_top_5_share": top_k_share(shares, 5),
            "index_nakamoto": float(nakamoto_coefficient(shares)),
        }
