"""Open peer-to-peer overlays and their failure modes (Section II of the paper).

The subpackage implements the systems the paper's historical review is
about, plus the attack and incentive models behind its "four problems":

* Structured overlays: :mod:`~repro.p2p.kademlia` (Kademlia/KAD/Mainline
  style), :mod:`~repro.p2p.chord` (Chord), and :mod:`~repro.p2p.onehop`
  (full-membership one-hop overlays, Gupta/Liskov style).
* Unstructured overlays: :mod:`~repro.p2p.unstructured` (Gnutella flooding)
  and :mod:`~repro.p2p.superpeer` (Kazaa/eDonkey-style two-tier overlays).
* Problem 1 (free riding / incentives): :mod:`~repro.p2p.freeriding` and
  :mod:`~repro.p2p.bittorrent` (tit-for-tat).
* Problem 2 (churn and performance): :mod:`~repro.p2p.lookup` measures
  lookup latency/failure under the churn models of :mod:`repro.sim.churn`.
* Problem 3 (security of open membership): :mod:`~repro.p2p.sybil`.
"""

from repro.p2p.identifiers import (
    ID_BITS,
    ID_SPACE,
    key_for,
    random_id,
    ring_distance,
    xor_distance,
)
from repro.p2p.kademlia import KademliaConfig, KademliaNetwork, KademliaNode, LookupResult
from repro.p2p.chord import ChordNetwork, ChordNode
from repro.p2p.unstructured import GnutellaConfig, GnutellaNetwork, QueryOutcome
from repro.p2p.superpeer import SuperpeerConfig, SuperpeerNetwork
from repro.p2p.onehop import OneHopConfig, OneHopOverlay, OverlayCostModel
from repro.p2p.sybil import SybilAttackConfig, SybilAttackResult, run_sybil_attack
from repro.p2p.freeriding import (
    ContributionModel,
    FreeRidingReport,
    GNUTELLA_2000_REFERENCE,
    analyze_contributions,
)
from repro.p2p.bittorrent import SwarmConfig, SwarmResult, TitForTatSwarm
from repro.p2p.lookup import LookupExperiment, LookupExperimentConfig, LookupStats

__all__ = [
    "ID_BITS",
    "ID_SPACE",
    "key_for",
    "random_id",
    "ring_distance",
    "xor_distance",
    "KademliaConfig",
    "KademliaNetwork",
    "KademliaNode",
    "LookupResult",
    "ChordNetwork",
    "ChordNode",
    "GnutellaConfig",
    "GnutellaNetwork",
    "QueryOutcome",
    "SuperpeerConfig",
    "SuperpeerNetwork",
    "OneHopConfig",
    "OneHopOverlay",
    "OverlayCostModel",
    "SybilAttackConfig",
    "SybilAttackResult",
    "run_sybil_attack",
    "ContributionModel",
    "FreeRidingReport",
    "GNUTELLA_2000_REFERENCE",
    "analyze_contributions",
    "SwarmConfig",
    "SwarmResult",
    "TitForTatSwarm",
    "LookupExperiment",
    "LookupExperimentConfig",
    "LookupStats",
]
