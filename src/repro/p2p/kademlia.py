"""Message-level Kademlia DHT simulator.

This is the structured overlay behind Experiments E2 (lookup latency in
deployed DHTs), E3 (Sybil attacks) and E5 (performance under churn).  It
models the parts of Kademlia that determine lookup behaviour in the wild:

* per-node routing tables made of k-buckets over a 160-bit XOR metric;
* iterative, parallel (``alpha``-way) FIND_NODE lookups driven by the
  requesting node;
* RPC timeouts — the dominant cost in deployed DHTs, where a large fraction
  of routing-table entries point to peers that already left (Jiménez et al.
  measured median lookup times around a minute on the BitTorrent Mainline
  DHT for exactly this reason, versus a few seconds on eMule's KAD which
  uses tighter timeouts and fresher routing state);
* routing-table staleness injected either by explicit churn (peers going
  offline) or by a configurable initial stale fraction.

Two configuration presets, :meth:`KademliaConfig.kad_like` and
:meth:`KademliaConfig.mainline_like`, capture the client behaviours that the
measurement literature identifies as the cause of the latency gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.p2p.identifiers import ID_BITS, bucket_index, random_id, xor_distance
from repro.sim.engine import Event, Simulator
from repro.sim.metrics import MetricsRegistry
from repro.sim.network import Message, Network, NetworkParams
from repro.sim.node import Node
from repro.sim.rng import SeededRNG


@dataclass
class KademliaConfig:
    """Client behaviour knobs that drive lookup performance.

    Attributes
    ----------
    k:
        Bucket size and size of the closest set returned by lookups.
    alpha:
        Number of FIND_NODE RPCs kept in flight per lookup.
    rpc_timeout:
        Seconds the client waits before declaring an RPC lost.  Deployed
        Mainline clients historically used very conservative timeouts
        (10–20 s); KAD clients use a few seconds.
    initial_stale_fraction:
        Fraction of routing-table entries that point to departed peers at
        the start of a run (models a long-running network under churn).
    refresh_interval:
        How often (seconds) a client performs routing-table maintenance:
        probing suspect contacts, evicting dead ones and learning fresh
        peers.  Aggressive maintenance is what keeps KAD tables usable
        under churn; lazy maintenance is what makes Mainline tables stale.
    refresh_detection:
        Probability that one maintenance pass detects (and evicts) any given
        dead contact.
    refresh_samples:
        Number of fresh live peers a node learns per maintenance pass.
    request_bytes / response_bytes:
        Message sizes used for bandwidth accounting.
    """

    k: int = 8
    alpha: int = 3
    rpc_timeout: float = 3.0
    initial_stale_fraction: float = 0.0
    refresh_interval: float = 300.0
    refresh_detection: float = 0.8
    refresh_samples: int = 4
    request_bytes: int = 100
    response_bytes: int = 500

    @classmethod
    def by_name(cls, spec) -> "KademliaConfig":
        """Resolve a client config from a preset name, dict or instance.

        Declarative hook used by :mod:`repro.scenarios`: ``"kad"`` and
        ``"mainline"`` name the two measurement-calibrated presets, a dict
        gives explicit constructor arguments.
        """
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, str):
            presets = {"kad": cls.kad_like, "mainline": cls.mainline_like}
            name = spec.replace("_", "-").lower()
            if name not in presets:
                raise ValueError(
                    f"unknown overlay client {spec!r}; pick one of {sorted(presets)}"
                )
            return presets[name]()
        if isinstance(spec, dict):
            return cls(**spec)
        raise TypeError(f"cannot build KademliaConfig from {type(spec).__name__}")

    @classmethod
    def kad_like(cls) -> "KademliaConfig":
        """eMule KAD-style client: parallel lookups, short timeouts, fresh tables."""
        return cls(
            k=8,
            alpha=3,
            rpc_timeout=1.5,
            initial_stale_fraction=0.10,
            refresh_interval=60.0,
            refresh_detection=0.9,
            refresh_samples=8,
        )

    @classmethod
    def mainline_like(cls) -> "KademliaConfig":
        """BitTorrent Mainline-style client: serial-ish lookups, long timeouts, stale tables."""
        return cls(
            k=8,
            alpha=1,
            rpc_timeout=8.0,
            initial_stale_fraction=0.20,
            refresh_interval=300.0,
            refresh_detection=0.7,
            refresh_samples=5,
        )


@dataclass
class LookupResult:
    """Outcome of one iterative FIND_NODE lookup."""

    target: int
    origin: int
    success: bool
    latency: float
    hops: int
    rpcs_sent: int
    timeouts: int
    closest: List[int] = field(default_factory=list)

    @property
    def found_target(self) -> bool:
        """Whether the exact target identifier appears in the closest set."""
        return self.target in self.closest


class KademliaNode(Node):
    """A single Kademlia peer with a k-bucket routing table."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        config: KademliaConfig,
        region: str = "default",
    ) -> None:
        super().__init__(node_id, sim, network, region=region)
        self.config = config
        # bucket index -> ordered list of contact ids (least recently seen first)
        self.buckets: Dict[int, List[int]] = {}
        self.rpcs_received = 0

    # ------------------------------------------------------------------
    # Routing table
    # ------------------------------------------------------------------
    def observe(self, contact: int) -> None:
        """Record having heard from ``contact`` (standard k-bucket update)."""
        if contact == self.node_id:
            return
        index = bucket_index(self.node_id, contact)
        bucket = self.buckets.setdefault(index, [])
        if contact in bucket:
            bucket.remove(contact)
            bucket.append(contact)
        elif len(bucket) < self.config.k:
            bucket.append(contact)
        # A full bucket ignores the new contact (Kademlia keeps long-lived
        # peers, which is also what makes stale entries persist).

    def evict(self, contact: int) -> None:
        """Drop a contact that failed to respond."""
        index = bucket_index(self.node_id, contact)
        bucket = self.buckets.get(index)
        if bucket and contact in bucket:
            bucket.remove(contact)

    def contacts(self) -> List[int]:
        """All known contacts."""
        result: List[int] = []
        for bucket in self.buckets.values():
            result.extend(bucket)
        return result

    def closest_contacts(self, target: int, count: Optional[int] = None) -> List[int]:
        """The ``count`` known contacts closest to ``target`` (XOR metric)."""
        count = count or self.config.k
        return sorted(self.contacts(), key=lambda c: xor_distance(c, target))[:count]

    # ------------------------------------------------------------------
    # RPC handling
    # ------------------------------------------------------------------
    def on_find_node(self, message: Message) -> None:
        """Answer a FIND_NODE RPC with our k closest contacts to the target."""
        self.rpcs_received += 1
        target = message.payload["target"]
        self.observe(message.sender)
        reply = {
            "rpc_id": message.payload["rpc_id"],
            "target": target,
            "contacts": self.closest_contacts(target),
        }
        self.send(
            message.sender,
            "find_node_reply",
            reply,
            size_bytes=self.config.response_bytes,
        )

    def on_find_node_reply(self, message: Message) -> None:
        """Route a FIND_NODE response to the lookup that issued it."""
        self.observe(message.sender)
        lookup = _ACTIVE_LOOKUPS.get(message.payload["rpc_id"])
        if lookup is not None:
            lookup.handle_reply(message.sender, message.payload["contacts"])


#: rpc_id -> lookup; module-level so node message handlers can route replies
#: without holding references to every in-flight lookup on every node.
_ACTIVE_LOOKUPS: Dict[int, "IterativeLookup"] = {}


class IterativeLookup:
    """State machine of one iterative, alpha-parallel FIND_NODE lookup."""

    _next_rpc_id = 0

    def __init__(
        self,
        origin: KademliaNode,
        target: int,
        config: KademliaConfig,
        on_complete: Callable[[LookupResult], None],
    ) -> None:
        self.origin = origin
        self.target = target
        self.config = config
        self.on_complete = on_complete
        self.sim = origin.sim
        self.started_at = self.sim.now
        self.shortlist: List[int] = []
        self.queried: Set[int] = set()
        self.failed: Set[int] = set()
        self.in_flight: Dict[int, Tuple[int, object]] = {}  # rpc_id -> (contact, timer)
        self.rpcs_sent = 0
        self.timeouts = 0
        self.hops = 0
        self.finished = False

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Seed the shortlist from the origin's routing table and start querying."""
        self.shortlist = self.origin.closest_contacts(self.target, self.config.k)
        if not self.shortlist:
            self._finish(success=False)
            return
        self._issue_queries()

    def _candidates(self) -> List[int]:
        """Unqueried, non-failed contacts among the current k closest known."""
        best = sorted(self.shortlist, key=lambda c: xor_distance(c, self.target))
        best = [c for c in best if c not in self.failed][: self.config.k]
        return [c for c in best if c not in self.queried]

    def _issue_queries(self) -> None:
        if self.finished:
            return
        candidates = self._candidates()
        while candidates and len(self.in_flight) < self.config.alpha:
            contact = candidates.pop(0)
            self._query(contact)
        if not self.in_flight and not self._candidates():
            self._finish(success=True)

    def _query(self, contact: int) -> None:
        rpc_id = IterativeLookup._next_rpc_id
        IterativeLookup._next_rpc_id += 1
        self.queried.add(contact)
        self.rpcs_sent += 1
        _ACTIVE_LOOKUPS[rpc_id] = self
        payload = {"rpc_id": rpc_id, "target": self.target}
        self.origin.send(
            contact, "find_node", payload, size_bytes=self.config.request_bytes
        )
        timer = self.sim.schedule(self.config.rpc_timeout, self._timeout, rpc_id)
        self.in_flight[rpc_id] = (contact, timer)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def handle_reply(self, responder: int, contacts: List[int]) -> None:
        """Process a FIND_NODE response from ``responder``."""
        if self.finished:
            return
        rpc_id = next(
            (rid for rid, (contact, _) in self.in_flight.items() if contact == responder),
            None,
        )
        if rpc_id is None:
            return
        _, timer = self.in_flight.pop(rpc_id)
        timer.cancel()
        _ACTIVE_LOOKUPS.pop(rpc_id, None)
        self.hops += 1
        for contact in contacts:
            if contact != self.origin.node_id and contact not in self.shortlist:
                self.shortlist.append(contact)
            self.origin.observe(contact)
        self._issue_queries()

    def _timeout(self, rpc_id: int) -> None:
        if rpc_id not in self.in_flight or self.finished:
            return
        contact, _ = self.in_flight.pop(rpc_id)
        _ACTIVE_LOOKUPS.pop(rpc_id, None)
        self.timeouts += 1
        self.failed.add(contact)
        self.origin.evict(contact)
        self._issue_queries()

    def _finish(self, success: bool) -> None:
        if self.finished:
            return
        self.finished = True
        for rpc_id, (_, timer) in self.in_flight.items():
            timer.cancel()
            _ACTIVE_LOOKUPS.pop(rpc_id, None)
        self.in_flight.clear()
        closest = sorted(
            (c for c in self.shortlist if c not in self.failed),
            key=lambda c: xor_distance(c, self.target),
        )[: self.config.k]
        result = LookupResult(
            target=self.target,
            origin=self.origin.node_id,
            success=success and bool(closest),
            latency=self.sim.now - self.started_at,
            hops=self.hops,
            rpcs_sent=self.rpcs_sent,
            timeouts=self.timeouts,
            closest=closest,
        )
        self.on_complete(result)


class KademliaNetwork:
    """A population of Kademlia peers with globally-bootstrapped routing tables."""

    def __init__(
        self,
        size: int,
        config: Optional[KademliaConfig] = None,
        sim: Optional[Simulator] = None,
        network_params: Optional[NetworkParams] = None,
        seed: int = 0,
    ) -> None:
        if size < 2:
            raise ValueError("a DHT needs at least two nodes")
        self.config = config or KademliaConfig()
        self.sim = sim or Simulator()
        self.rng = SeededRNG(seed)
        self.network = Network(self.sim, network_params, rng=self.rng.fork("net"))
        self.metrics = MetricsRegistry()
        self.nodes: Dict[int, KademliaNode] = {}
        while len(self.nodes) < size:
            node_id = random_id(self.rng)
            if node_id in self.nodes:
                continue
            self.nodes[node_id] = KademliaNode(
                node_id, self.sim, self.network, self.config
            )
        self._populate_routing_tables()
        if self.config.initial_stale_fraction > 0:
            self._inject_stale_entries(self.config.initial_stale_fraction)

    # ------------------------------------------------------------------
    # Bootstrapping
    # ------------------------------------------------------------------
    def _populate_routing_tables(self) -> None:
        """Fill every node's k-buckets from global knowledge.

        This stands in for the join protocol: each node learns up to ``k``
        peers per bucket, sampled from the peers that actually fall in that
        bucket, which matches the routing state of a converged network.
        """
        ids = list(self.nodes.keys())
        sample_size = min(len(ids), max(4 * self.config.k * ID_BITS // 8, 256))
        for node in self.nodes.values():
            per_bucket: Dict[int, List[int]] = {}
            candidates = (
                ids if len(ids) <= sample_size else self.rng.sample(ids, sample_size)
            )
            for candidate in candidates:
                if candidate == node.node_id:
                    continue
                index = bucket_index(node.node_id, candidate)
                bucket = per_bucket.setdefault(index, [])
                if len(bucket) < self.config.k:
                    bucket.append(candidate)
            for index, contacts in per_bucket.items():
                node.buckets[index] = list(contacts)

    def _inject_stale_entries(self, fraction: float) -> None:
        """Replace a fraction of routing entries with identifiers of departed peers."""
        for node in self.nodes.values():
            for bucket in node.buckets.values():
                for position, _ in enumerate(bucket):
                    if self.rng.bernoulli(fraction):
                        bucket[position] = random_id(self.rng)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def node_ids(self) -> List[int]:
        """All peer identifiers."""
        return list(self.nodes.keys())

    def online_nodes(self) -> List[KademliaNode]:
        """Peers currently online."""
        return [node for node in self.nodes.values() if node.online]

    def lookup(
        self,
        origin_id: int,
        target: int,
        on_complete: Optional[Callable[[LookupResult], None]] = None,
    ) -> Event:
        """Start an iterative lookup from ``origin_id`` towards ``target``.

        Returns an event triggered with the :class:`LookupResult`.
        """
        origin = self.nodes[origin_id]
        done = self.sim.event(name="lookup")

        def _complete(result: LookupResult) -> None:
            self.metrics.sample("lookup_latency").observe(result.latency)
            self.metrics.sample("lookup_hops").observe(result.hops)
            self.metrics.counter("lookups").increment()
            if not result.success:
                self.metrics.counter("lookup_failures").increment()
            if on_complete is not None:
                on_complete(result)
            if not done.triggered:
                done.succeed(result)

        IterativeLookup(origin, target, self.config, _complete).start()
        return done

    def warm_up(self, passes: int = 3) -> None:
        """Run a few maintenance passes immediately.

        Used to bring routing tables to their churn equilibrium before a
        measurement starts, instead of measuring the artificial transient of
        a freshly-bootstrapped network.
        """
        for _ in range(passes):
            self._maintenance_pass_once()

    def start_maintenance(self) -> None:
        """Begin periodic routing-table maintenance on every peer.

        Each pass models the bucket-refresh/ping behaviour of a client: dead
        contacts are detected (with probability ``refresh_detection``) and
        evicted, and a few fresh live peers are learned.  The interval and
        aggressiveness come from the :class:`KademliaConfig`, which is how
        the KAD-vs-Mainline behavioural gap is expressed.
        """
        if self.config.refresh_interval <= 0:
            return
        self.sim.schedule(self.config.refresh_interval, self._maintenance_pass)

    def _maintenance_pass(self) -> None:
        self._maintenance_pass_once()
        self.sim.schedule(self.config.refresh_interval, self._maintenance_pass)

    def _maintenance_pass_once(self) -> None:
        online_ids = [node.node_id for node in self.nodes.values() if node.online]
        for node in self.nodes.values():
            if not node.online:
                continue
            for contact in list(node.contacts()):
                peer = self.nodes.get(contact)
                if (peer is None or not peer.online) and self.rng.bernoulli(
                    self.config.refresh_detection
                ):
                    node.evict(contact)
            if online_ids:
                samples = min(self.config.refresh_samples, len(online_ids))
                for fresh in self.rng.sample(online_ids, samples):
                    node.observe(fresh)

    def set_node_online(self, node_id: int, online: bool) -> None:
        """Flip a node's availability (used by churn processes)."""
        node = self.nodes[node_id]
        if online:
            node.go_online()
        else:
            node.go_offline()

    def routing_table_staleness(self) -> float:
        """Fraction of routing entries that point to offline or unknown peers."""
        total = 0
        stale = 0
        for node in self.nodes.values():
            for contact in node.contacts():
                total += 1
                peer = self.nodes.get(contact)
                if peer is None or not peer.online:
                    stale += 1
        return stale / total if total else 0.0
