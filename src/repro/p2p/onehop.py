"""One-hop (full membership) overlays and the multi-hop/one-hop trade-off.

Section II-B of the paper: "[24] demonstrated that for networks between 10K
and 100K it is possible to have full membership routing information and
provide one-hop routing. If the overlay is relatively stable like a
corporate network, then O(1) routing and full membership is the right
decision instead of maintaining routing tables and suffering multi-hop
lookups."  (Gupta, Liskov, Rodrigues, HotOS 2003.)

:class:`OverlayCostModel` gives the analytical bandwidth/latency trade-off:
one-hop overlays must propagate every membership change to every node, so
their per-node maintenance bandwidth is ``O(N * churn_rate)``, while a
Kademlia/Chord style overlay pays ``O(log N)`` state and lookup hops but only
``O(log N)`` maintenance.  :class:`OneHopOverlay` is a small event-driven
model that measures the same quantities by simulation, including the routing
staleness window that opens between a membership change and its propagation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.churn import ChurnModel
from repro.sim.rng import SeededRNG


@dataclass
class OneHopConfig:
    """Parameters of the one-hop overlay model."""

    size: int = 10_000
    membership_entry_bytes: int = 40        # ip, port, id, timestamp
    event_notification_bytes: int = 60
    churn: Optional[ChurnModel] = None
    dissemination_fanout: int = 10          # slice/unit leaders, Gupta-style tree
    dissemination_delay: float = 1.0        # seconds for an event to reach everyone
    lookup_timeout: float = 1.0


class OverlayCostModel:
    """Closed-form comparison of one-hop and multi-hop overlay costs.

    All formulas are the standard back-of-envelope models used in the
    one-hop-overlay literature; they are exposed as a class so experiments
    can sweep network size and churn rate and tabulate the crossover.
    """

    def __init__(
        self,
        membership_entry_bytes: int = 40,
        event_notification_bytes: int = 60,
        rpc_bytes: int = 300,
        hop_latency: float = 0.08,
        rpc_timeout: float = 3.0,
        stale_probability: float = 0.15,
    ) -> None:
        self.membership_entry_bytes = membership_entry_bytes
        self.event_notification_bytes = event_notification_bytes
        self.rpc_bytes = rpc_bytes
        self.hop_latency = hop_latency
        self.rpc_timeout = rpc_timeout
        self.stale_probability = stale_probability

    # ------------------------------------------------------------------
    # One-hop overlay
    # ------------------------------------------------------------------
    def onehop_state_bytes(self, size: int) -> float:
        """Full membership table size per node."""
        return float(size * self.membership_entry_bytes)

    def onehop_maintenance_bps(self, size: int, churn_events_per_node_hour: float) -> float:
        """Per-node maintenance bandwidth (bytes/s) to keep full membership fresh.

        Every join/leave anywhere must reach every node, so each node receives
        ``N * churn_rate`` notifications per unit time.
        """
        events_per_second = size * churn_events_per_node_hour / 3600.0
        return events_per_second * self.event_notification_bytes

    def onehop_lookup_latency(self) -> float:
        """Expected lookup latency: one hop, plus a timeout+retry when stale."""
        success = 1.0 - self.stale_probability
        return success * self.hop_latency + self.stale_probability * (
            self.rpc_timeout + 2 * self.hop_latency
        )

    # ------------------------------------------------------------------
    # Multi-hop (Kademlia/Chord-like) overlay
    # ------------------------------------------------------------------
    def multihop_state_bytes(self, size: int, k: int = 8) -> float:
        """Routing state per node: ``k`` contacts per populated bucket."""
        buckets = max(1.0, math.log2(size))
        return buckets * k * self.membership_entry_bytes

    def multihop_maintenance_bps(
        self, size: int, churn_events_per_node_hour: float, k: int = 8
    ) -> float:
        """Per-node maintenance bandwidth: only the O(k log N) neighbours matter."""
        neighbours = max(1.0, math.log2(size)) * k
        fraction_relevant = neighbours / max(1, size)
        events_per_second = size * churn_events_per_node_hour / 3600.0
        # Each relevant event costs a notification plus a probe to refresh.
        return events_per_second * fraction_relevant * (
            self.event_notification_bytes + self.rpc_bytes
        )

    def multihop_lookup_latency(self, size: int) -> float:
        """Expected lookup latency across O(log N) hops with occasional timeouts."""
        hops = max(1.0, 0.5 * math.log2(size))
        per_hop = (1.0 - self.stale_probability) * self.hop_latency + self.stale_probability * (
            self.rpc_timeout + self.hop_latency
        )
        return hops * per_hop

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def compare(self, size: int, churn_events_per_node_hour: float) -> Dict[str, float]:
        """Side-by-side costs for one network size / churn level."""
        return {
            "size": float(size),
            "churn_events_per_node_hour": churn_events_per_node_hour,
            "onehop_state_mb": self.onehop_state_bytes(size) / 1e6,
            "onehop_maintenance_kbps": self.onehop_maintenance_bps(
                size, churn_events_per_node_hour
            ) * 8.0 / 1e3,
            "onehop_lookup_latency_s": self.onehop_lookup_latency(),
            "multihop_state_mb": self.multihop_state_bytes(size) / 1e6,
            "multihop_maintenance_kbps": self.multihop_maintenance_bps(
                size, churn_events_per_node_hour
            ) * 8.0 / 1e3,
            "multihop_lookup_latency_s": self.multihop_lookup_latency(size),
        }

    def onehop_feasible(
        self,
        size: int,
        churn_events_per_node_hour: float,
        bandwidth_budget_kbps: float = 50.0,
        memory_budget_mb: float = 100.0,
    ) -> bool:
        """Whether full membership fits the per-node bandwidth/memory budget."""
        costs = self.compare(size, churn_events_per_node_hour)
        return (
            costs["onehop_maintenance_kbps"] <= bandwidth_budget_kbps
            and costs["onehop_state_mb"] <= memory_budget_mb
        )


class OneHopOverlay:
    """Monte-Carlo model of lookup success/latency in a one-hop overlay under churn."""

    def __init__(self, config: Optional[OneHopConfig] = None, seed: int = 0) -> None:
        self.config = config or OneHopConfig()
        self.rng = SeededRNG(seed)
        self.churn = self.config.churn or ChurnModel.stable()

    def staleness_probability(self) -> float:
        """Probability a membership entry is stale when used.

        An entry is stale if its peer departed within the last
        ``dissemination_delay`` seconds (the notification has not arrived yet).
        With mean session length S, departures happen at rate 1/S per peer, so
        the stale window covers ``dissemination_delay / S`` of the time.
        """
        mean_session = max(self.churn.mean_session, 1e-9)
        return min(1.0, self.config.dissemination_delay / mean_session)

    def lookup_latencies(self, lookups: int = 1000, hop_latency: float = 0.08) -> List[float]:
        """Sampled lookup latencies including timeout+retry on stale entries."""
        stale_p = self.staleness_probability()
        latencies = []
        for _ in range(lookups):
            latency = self.rng.exponential(hop_latency)
            if self.rng.bernoulli(stale_p):
                latency += self.config.lookup_timeout + self.rng.exponential(hop_latency)
            latencies.append(latency)
        return latencies

    def maintenance_bandwidth_bps(self) -> float:
        """Per-node maintenance bandwidth implied by the configured churn model."""
        cycle = self.churn.mean_session + self.churn.mean_downtime
        events_per_node_hour = 2.0 * 3600.0 / cycle if cycle > 0 else 0.0
        model = OverlayCostModel(
            membership_entry_bytes=self.config.membership_entry_bytes,
            event_notification_bytes=self.config.event_notification_bytes,
        )
        return model.onehop_maintenance_bps(self.config.size, events_per_node_hour)
