"""repro — simulation & analysis library reproducing
"Please, do not Decentralize the Internet with (Permissionless) Blockchains!"
(Garcia Lopez, Montresor, Datta — ICDCS 2019).

The library builds, from scratch, every system the paper's argument rests on
and exposes the paper's quantitative claims as runnable experiments:

* :mod:`repro.sim` — deterministic discrete-event simulation kernel.
* :mod:`repro.p2p` — open peer-to-peer overlays (DHTs, flooding, superpeers,
  one-hop), churn, Sybil attacks, free riding and tit-for-tat.
* :mod:`repro.blockchain` — permissionless proof-of-work networks, mining
  pools, selfish mining, double-spend analysis, energy, proof-of-stake and
  the scalability trilemma.
* :mod:`repro.consensus` — PBFT and Raft replication substrates.
* :mod:`repro.permissioned` — a Hyperledger-Fabric-like permissioned
  blockchain (execute-order-validate, channels, MVCC).
* :mod:`repro.edge` — edge-centric topologies, placement and blockchain
  islands.
* :mod:`repro.economics` — market concentration, pricing volatility and
  mining economics.
* :mod:`repro.core` — the architecture comparison harness, the decision
  framework and the claim registry (E1-E16).
* :mod:`repro.scenarios` — the declarative scenario framework: one
  :class:`~repro.scenarios.ScenarioSpec` per experiment, five architecture
  adapters, a named registry and the ``python -m repro.run`` /
  ``repro-run`` CLI.
* :mod:`repro.workloads` — seeded workload generators (payments, lookups,
  object requests, vertical domains) shared by every architecture.

Quickstart::

    from repro.core import compare_architectures
    comparison = compare_architectures()
    for row in comparison.rows():
        print(row)

    from repro.scenarios import run_scenario
    print(run_scenario("pow-baseline").metric("throughput_tps"))
"""

from repro.core import (
    ArchitectureComparison,
    ArchitectureProfile,
    CLAIMS,
    Claim,
    DecisionInput,
    Recommendation,
    claims_by_id,
    compare_architectures,
    recommend_architecture,
)

__version__ = "1.0.0"

__all__ = [
    "ArchitectureComparison",
    "ArchitectureProfile",
    "CLAIMS",
    "Claim",
    "DecisionInput",
    "Recommendation",
    "claims_by_id",
    "compare_architectures",
    "recommend_architecture",
    "__version__",
]
