"""Membership service provider (MSP): organizations and authenticated identities.

"Unlike permissionless ones, permissioned blockchains have means to
authenticate the nodes that control and update the shared state and to
authorize who can issue transactions."  Certificates are modelled as opaque
tokens issued by an organization's CA; what matters behaviourally is that
(a) only enrolled identities can act, (b) identities are bound to an
organization, and (c) revocation takes effect immediately.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass(frozen=True)
class Identity:
    """An enrolled identity (a certificate issued by an organization's CA)."""

    name: str
    organization: str
    role: str = "member"          # "member", "peer", "orderer", "admin", "client"
    certificate: str = ""

    def is_role(self, role: str) -> bool:
        """Whether this identity carries the given role."""
        return self.role == role


@dataclass
class Organization:
    """A consortium member operating peers and issuing identities."""

    name: str
    msp_id: str = ""

    def __post_init__(self) -> None:
        if not self.msp_id:
            self.msp_id = f"{self.name}-msp"


class MembershipService:
    """Issues, validates and revokes identities for a consortium."""

    def __init__(self, organizations: Optional[List[Organization]] = None) -> None:
        self.organizations: Dict[str, Organization] = {}
        self._identities: Dict[str, Identity] = {}
        self._revoked: Set[str] = set()
        self._serial = itertools.count(1)
        for organization in organizations or []:
            self.add_organization(organization)

    # ------------------------------------------------------------------
    # Consortium management
    # ------------------------------------------------------------------
    def add_organization(self, organization: Organization) -> Organization:
        """Admit an organization to the consortium."""
        if organization.name in self.organizations:
            raise ValueError(f"organization {organization.name!r} already exists")
        self.organizations[organization.name] = organization
        return organization

    def organization_names(self) -> List[str]:
        """Names of all consortium members."""
        return list(self.organizations.keys())

    # ------------------------------------------------------------------
    # Identity lifecycle
    # ------------------------------------------------------------------
    def enroll(self, name: str, organization: str, role: str = "member") -> Identity:
        """Issue a certificate for ``name`` under ``organization``."""
        if organization not in self.organizations:
            raise KeyError(f"unknown organization {organization!r}")
        if name in self._identities and name not in self._revoked:
            raise ValueError(f"identity {name!r} already enrolled")
        serial = next(self._serial)
        certificate = hashlib.sha256(
            f"{organization}:{name}:{role}:{serial}".encode("utf-8")
        ).hexdigest()
        identity = Identity(name=name, organization=organization, role=role, certificate=certificate)
        self._identities[name] = identity
        self._revoked.discard(name)
        return identity

    def revoke(self, name: str) -> None:
        """Revoke an identity; it can no longer authenticate."""
        if name not in self._identities:
            raise KeyError(f"unknown identity {name!r}")
        self._revoked.add(name)

    def is_valid(self, identity: Identity) -> bool:
        """Whether the identity is enrolled, unrevoked and unmodified."""
        known = self._identities.get(identity.name)
        if known is None or identity.name in self._revoked:
            return False
        return known.certificate == identity.certificate

    def get(self, name: str) -> Identity:
        """Look up an enrolled identity by name."""
        if name not in self._identities or name in self._revoked:
            raise KeyError(f"unknown or revoked identity {name!r}")
        return self._identities[name]

    def identities_of(self, organization: str, role: Optional[str] = None) -> List[Identity]:
        """All valid identities of an organization (optionally of one role)."""
        result = []
        for name, identity in self._identities.items():
            if name in self._revoked or identity.organization != organization:
                continue
            if role is not None and identity.role != role:
                continue
            result.append(identity)
        return result

    def authorize(self, identity: Identity, required_role: str) -> bool:
        """Authentication plus role check — the permissioning the paper contrasts
        with open membership."""
        return self.is_valid(identity) and identity.role == required_role
