"""Hyperledger-Fabric-like permissioned blockchain (Section IV).

The paper uses Hyperledger Fabric as the reference architecture for
permissioned blockchains: known, authenticated members; no proof-of-work;
pluggable CFT/BFT ordering; channels so that "consensus or replication can
be configured between a subset of the nodes of the network"; and chaincode
executed in sandboxed environments.

The subpackage implements the execute–order–validate pipeline over the
simulation kernel:

* :mod:`~repro.permissioned.identity` — the membership service (MSP):
  organizations, identities, and who is allowed to endorse or order.
* :mod:`~repro.permissioned.ledger` — world state, read/write sets and
  MVCC validation at commit time.
* :mod:`~repro.permissioned.chaincode` — simulated chaincode (smart
  contracts) with execution cost and key-access patterns.
* :mod:`~repro.permissioned.fabric` — peers, the ordering service, channels
  and the end-to-end transaction flow with throughput/latency metrics.
"""

from repro.permissioned.identity import Identity, MembershipService, Organization
from repro.permissioned.ledger import Ledger, ReadWriteSet, ValidationCode, WorldState
from repro.permissioned.chaincode import Chaincode, ChaincodeRegistry, asset_transfer_chaincode
from repro.permissioned.fabric import (
    ChannelConfig,
    EndorsementPolicy,
    FabricMetrics,
    FabricNetwork,
    FabricNetworkConfig,
    OrderingConfig,
)

__all__ = [
    "Identity",
    "MembershipService",
    "Organization",
    "Ledger",
    "ReadWriteSet",
    "ValidationCode",
    "WorldState",
    "Chaincode",
    "ChaincodeRegistry",
    "asset_transfer_chaincode",
    "ChannelConfig",
    "EndorsementPolicy",
    "FabricMetrics",
    "FabricNetwork",
    "FabricNetworkConfig",
    "OrderingConfig",
]
